//! Boundary-healing walkthrough: reproduces the paper's core phenomenon on
//! a single clip — independently optimised tiles disagree where they meet
//! (Fig. 1), and the multigrid-Schwarz flow heals the seams.
//!
//! ```text
//! cargo run --release --example boundary_healing
//! ```

use multigrid_schwarz_ilt::core::flows::{divide_and_conquer, multigrid_schwarz};
use multigrid_schwarz_ilt::core::ExperimentConfig;
use multigrid_schwarz_ilt::layout::suite_of_size;
use multigrid_schwarz_ilt::litho::{LithoBank, ResistModel};
use multigrid_schwarz_ilt::metrics::stitch_loss;
use multigrid_schwarz_ilt::opt::PixelIlt;
use multigrid_schwarz_ilt::tile::{Partition, TileExecutor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default())?;
    let clip = suite_of_size(&config.generator, 3).remove(2);
    let partition = Partition::new(clip.size(), clip.size(), config.partition)?;
    let lines = partition.stitch_lines();
    let executor = TileExecutor::sequential();
    let solver = PixelIlt::new();

    println!(
        "{} stitch lines at core boundaries: {:?}",
        lines.len(),
        lines.iter().map(|l| l.position).collect::<Vec<_>>()
    );

    // Traditional divide-and-conquer: no communication between tiles.
    let dnc = divide_and_conquer(&config, &bank, &clip.target, &solver, &executor)?;
    let dnc_report = stitch_loss(&dnc.mask.threshold(0.5), &lines, &config.stitch);

    // The multigrid-Schwarz flow: coarse global pass, two fine Schwarz
    // stages with weighted-smoothing assembly, multi-colour refine.
    let ours = multigrid_schwarz(&config, &bank, &clip.target, &solver, &executor)?;
    let ours_report = stitch_loss(&ours.mask.threshold(0.5), &lines, &config.stitch);

    println!(
        "divide-and-conquer: stitch loss {:>8.1} over {} crossings",
        dnc_report.total,
        dnc_report.intersections.len()
    );
    println!(
        "multigrid-Schwarz:  stitch loss {:>8.1} over {} crossings",
        ours_report.total,
        ours_report.intersections.len()
    );
    if ours_report.total > 0.0 {
        let factor = dnc_report.total / ours_report.total;
        println!("continuity ratio (divide-and-conquer / ours): {factor:.2}x");
        println!(
            "note: this example runs at the miniature test scale, where boundary \
             mismatch is weak; at the benchmark scale (ILT_SCALE=default in the \
             bench binaries) the ratio averages ~1.9x over 20 clips, and the paper \
             reports >3.15x at production scale"
        );
    }

    // Show the three worst crossings of each flow.
    for (name, report) in [("dnc", &dnc_report), ("ours", &ours_report)] {
        let mut worst: Vec<_> = report.intersections.iter().collect();
        worst.sort_by(|a, b| b.loss.partial_cmp(&a.loss).expect("finite"));
        for i in worst.iter().take(3) {
            println!(
                "  {name}: crossing at ({:3},{:3}) loss {:6.1}",
                i.x, i.y, i.loss
            );
        }
    }
    Ok(())
}

//! Process-window analysis: prints a mask at the dose/defocus corners of
//! Definition 3 and maps where the process-variation band is widest — the
//! manufacturing-robustness view of an optimised mask.
//!
//! ```text
//! cargo run --release --example process_window
//! ```

use multigrid_schwarz_ilt::core::flows::full_chip;
use multigrid_schwarz_ilt::core::ExperimentConfig;
use multigrid_schwarz_ilt::grid::{connected_components, Grid};
use multigrid_schwarz_ilt::layout::suite_of_size;
use multigrid_schwarz_ilt::litho::{Corner, LithoBank, ResistModel};
use multigrid_schwarz_ilt::opt::PixelIlt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default())?;
    let clip = suite_of_size(&config.generator, 1).remove(0);
    let system = bank.system(config.clip, config.inspection_scale())?;

    // Optimise, then print at all three corners.
    let flow = full_chip(&config, &bank, &clip.target, &PixelIlt::new())?;
    let mask = flow.mask.threshold(0.5).to_real();

    let nominal = system.print(&mask, Corner::Nominal)?;
    let pv = system.pvband(&mask)?;
    println!(
        "nominal print: {} px (target {} px)",
        nominal.count_ones(),
        clip.target.count_ones()
    );
    println!(
        "inner corner (defocus, -dose): {} px; outer corner (+dose): {} px",
        pv.inner.count_ones(),
        pv.outer.count_ones()
    );
    println!("PVBand (Definition 3): {} px^2", pv.area);

    // Locate the widest band regions: the process hotspots.
    let band = Grid::from_fn(config.clip, config.clip, |x, y| {
        u8::from(pv.inner.get(x, y) != pv.outer.get(x, y))
    });
    let (_, components) = connected_components(&band);
    println!("{} band segments; the 5 largest:", components.len());
    for c in components.iter().take(5) {
        println!("  {:4} px at {}", c.area, c.bbox);
    }

    // Sanity relationship: the naive mask (target itself) must have a wider
    // band than the optimised mask on average.
    let naive_pv = system.pvband(&clip.target.to_real())?;
    println!(
        "optimised band {} px^2 vs naive-mask band {} px^2",
        pv.area, naive_pv.area
    );
    Ok(())
}

//! Quickstart: optimise one synthetic clip with the multigrid-Schwarz flow
//! and print every Table 1 metric.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Uses the small test-scale configuration so it finishes in seconds; set
//! `ILT_SCALE=default` for the full benchmark scale.

use multigrid_schwarz_ilt::core::experiment::{inspect, Method};
use multigrid_schwarz_ilt::core::{experiment, ExperimentConfig};
use multigrid_schwarz_ilt::layout::suite_of_size;
use multigrid_schwarz_ilt::litho::{LithoBank, ResistModel};
use multigrid_schwarz_ilt::tile::{Partition, TileExecutor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = if std::env::var("ILT_SCALE").as_deref() == Ok("default") {
        ExperimentConfig::paper_default()
    } else {
        ExperimentConfig::test_tiny()
    };
    println!(
        "clip {0}x{0}, tile {1}, overlap {2}, 3x3 tiles",
        config.clip, config.partition.tile, config.partition.overlap
    );

    // One-time setup: TCC construction and SOCS kernel extraction.
    let bank = LithoBank::new(config.optics, ResistModel::m1_default())?;
    let clip = suite_of_size(&config.generator, 1).remove(0);
    let executor = TileExecutor::sequential();

    // The paper's method: coarse-grid ILT -> staged additive-Schwarz fine
    // ILT -> multi-colour multiplicative refine.
    let flow = experiment::run_method(Method::Ours, &config, &bank, &clip.target, &executor)?;
    println!("flow `{}` finished in {:.2}s:", flow.name, flow.tat());
    for stage in &flow.stages {
        println!(
            "  {:<16} {:2} tiles, {:.2}s",
            stage.label,
            stage.tile_seconds.len(),
            stage.total_tile_seconds()
        );
    }

    // Inspect over the whole clip (Eq. (3)) without partitioning.
    let inspection = bank.system(config.clip, config.inspection_scale())?;
    let partition = Partition::new(clip.size(), clip.size(), config.partition)?;
    let metrics = inspect(
        &config,
        &inspection,
        &partition.stitch_lines(),
        &clip.target,
        &flow,
    )?;
    println!(
        "L2 {} px^2, PVBand {} px^2, stitch loss {:.1}, TAT {:.2}s",
        metrics.l2, metrics.pvband, metrics.stitch, metrics.tat
    );
    Ok(())
}

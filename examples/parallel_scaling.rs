//! Parallel-scaling study: runs the multigrid-Schwarz flow, then replays
//! its measured per-tile runtimes through the list-scheduling model of
//! `ilt_core::speedup` for 1..8 workers, with and without the host-staged
//! communication cost the paper's GPU cluster paid.
//!
//! ```text
//! cargo run --release --example parallel_scaling
//! ```

use multigrid_schwarz_ilt::core::flows::multigrid_schwarz;
use multigrid_schwarz_ilt::core::speedup::{speedup_curve, CommModel};
use multigrid_schwarz_ilt::core::ExperimentConfig;
use multigrid_schwarz_ilt::layout::suite_of_size;
use multigrid_schwarz_ilt::litho::{LithoBank, ResistModel};
use multigrid_schwarz_ilt::opt::PixelIlt;
use multigrid_schwarz_ilt::tile::TileExecutor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default())?;
    let clip = suite_of_size(&config.generator, 1).remove(0);
    let executor = TileExecutor::sequential();

    let flow = multigrid_schwarz(&config, &bank, &clip.target, &PixelIlt::new(), &executor)?;
    println!("stage breakdown (measured):");
    for s in &flow.stages {
        println!(
            "  {:<16} {:2} tiles  {:7.3}s compute  {:.4}s assembly",
            s.label,
            s.tile_seconds.len(),
            s.total_tile_seconds(),
            s.assembly_seconds
        );
    }

    let workers = [1usize, 2, 3, 4, 6, 8];
    let ideal = CommModel {
        seconds_per_tile: 0.0,
    };
    let mean_tile = flow.total_tile_seconds()
        / flow
            .stages
            .iter()
            .map(|s| s.tile_seconds.len())
            .sum::<usize>() as f64;
    let staged = CommModel {
        seconds_per_tile: CommModel::from_measured(&flow).seconds_per_tile + 0.1 * mean_tile,
    };

    println!("\nworkers | ideal speedup | host-staged speedup");
    let ideal_curve = speedup_curve(&flow, &workers, ideal);
    let staged_curve = speedup_curve(&flow, &workers, staged);
    for (a, b) in ideal_curve.iter().zip(&staged_curve) {
        println!(
            "{:>7} | {:>13.2}x | {:>18.2}x",
            a.workers, a.speedup, b.speedup
        );
    }
    println!("\npaper: 2.76x on 4 GPUs whose transfers are staged through the host");
    Ok(())
}

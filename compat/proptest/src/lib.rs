//! Offline shim for the subset of `proptest 1.x` this workspace uses:
//! the `proptest!` macro, integer-range strategies, [`Strategy::prop_map`],
//! and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//! See `compat/README.md`.
//!
//! Semantics differ from upstream in two deliberate ways: cases are
//! sampled from a deterministic per-test SplitMix64 stream (no persisted
//! failure seeds), and there is **no shrinking** — a failing case reports
//! the generated arguments as-is.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed (`prop_assert!` and friends).
    Fail(String),
    /// The case was rejected (`prop_assume!`); not a failure.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
        }
    }
}

/// Deterministic per-test random stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream for one named test case index, stable across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

/// Declares property tests. Mirrors `proptest::proptest!` for the form
/// `proptest! { #![proptest_config(...)] #[test] fn name(x in strat, ...) { ... } }`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( $cfg:expr ; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                let args = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest case {case}/{} failed: {msg}\n  inputs: {args}",
                        config.cases
                    ),
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn pow2() -> impl Strategy<Value = usize> {
        (2u32..=6).prop_map(|e| 1usize << e)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in pow2(), k in 0u64..1000, m in 1usize..4) {
            prop_assert!([4, 8, 16, 32, 64].contains(&n));
            prop_assert!(k < 1000, "k out of range: {k}");
            prop_assume!(m != 3);
            prop_assert!(m == 1 || m == 2);
            prop_assert_eq!(n.count_ones(), 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}

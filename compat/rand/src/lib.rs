//! Offline shim for the subset of `rand 0.8` this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_bool`, and `Rng::gen_range` over
//! integer ranges. See `compat/README.md`.
//!
//! The generator is SplitMix64 — deterministic and seed-stable, but a
//! *different* sequence than upstream `rand`'s `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be seeded from a `u64`, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(3usize..=9);
            assert_eq!(x, b.gen_range(3usize..=9));
            assert!((3..=9).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((350..=650).contains(&heads), "suspicious bias: {heads}");
    }
}

//! Offline shim for the subset of `criterion 0.5` this workspace uses:
//! `criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! benchmark groups with [`BenchmarkId`], and [`Bencher::iter`].
//! See `compat/README.md`.
//!
//! Measurement model: each benchmark runs `sample_size` timed samples and
//! reports min/median/mean wall time to stdout. When the binary is *not*
//! invoked by `cargo bench` (no `--bench` argument — e.g. the smoke run
//! `cargo test` performs on `harness = false` bench targets), benchmarks
//! are listed but not executed, so test runs stay fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times a closure over repeated runs.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Runs `f` once per sample and records each duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    execute: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            execute: std::env::args().any(|a| a == "--bench"),
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name}: skipped (run via `cargo bench` to measure)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name}: min {:?}  median {:?}  mean {:?}  ({} samples)",
        sorted[0],
        median,
        mean,
        sorted.len()
    );
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: if self.execute { self.sample_size } else { 0 },
        };
        if self.execute {
            f(&mut b);
        }
        report(name, &b.samples);
    }

    /// Registers and (under `cargo bench`) runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Registers a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&name, &mut |b| f(b, input));
        self
    }

    /// Registers a plain benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, name);
        self.criterion.run_one(&name, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!` (both the list form and the
/// `name`/`config`/`targets` form).
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_without_bench_flag() {
        // Unit tests never pass --bench, so nothing should execute.
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0;
        c.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        assert_eq!(ran, 0);
    }

    #[test]
    fn executes_when_forced() {
        let mut c = Criterion {
            sample_size: 3,
            execute: true,
        };
        let mut ran = 0;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 3);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}

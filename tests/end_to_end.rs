//! End-to-end integration: the Table 1 engine across all crates at the
//! miniature test scale.

use multigrid_schwarz_ilt::core::experiment::{averages, ratios, run_case, Method};
use multigrid_schwarz_ilt::core::ExperimentConfig;
use multigrid_schwarz_ilt::layout::suite_of_size;
use multigrid_schwarz_ilt::litho::{LithoBank, ResistModel};
use multigrid_schwarz_ilt::tile::TileExecutor;

#[test]
fn full_case_produces_all_methods_and_sane_metrics() {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).expect("bank");
    let suite = suite_of_size(&config.generator, 2);
    let executor = TileExecutor::sequential();

    let mut cases = Vec::new();
    for clip in &suite {
        let row = run_case(&config, &bank, clip, &executor).expect("case run");
        assert_eq!(row.methods.len(), 4);
        for m in &row.methods {
            // L2 can never exceed the whole clip; PVB must be positive for
            // real optics; TAT must be measured.
            assert!(m.metrics.l2 < config.clip * config.clip, "{}", m.method);
            assert!(m.metrics.pvband > 0, "{}", m.method);
            assert!(m.metrics.tat > 0.0, "{}", m.method);
            assert!(m.metrics.stitch >= 0.0, "{}", m.method);
        }
        cases.push(row);
    }

    let avgs = averages(&cases);
    assert_eq!(avgs.len(), 4);
    let r = ratios(&avgs, "Ours");
    let ours = r.iter().find(|a| a.method == "Ours").expect("ours row");
    assert!((ours.l2 - 1.0).abs() < 1e-12);
    assert!((ours.tat - 1.0).abs() < 1e-12);
}

#[test]
fn every_method_beats_the_naive_mask() {
    // Sanity: any ILT flow must print closer to the target than using the
    // target itself as the mask.
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).expect("bank");
    let clip = suite_of_size(&config.generator, 1).remove(0);
    let executor = TileExecutor::sequential();
    let inspection = bank
        .system(config.clip, config.inspection_scale())
        .expect("inspection");

    let naive = multigrid_schwarz_ilt::metrics::mask_quality(
        &inspection,
        &clip.target.to_real(),
        &clip.target,
    )
    .expect("naive quality");

    for method in Method::all() {
        let flow = multigrid_schwarz_ilt::core::experiment::run_method(
            method,
            &config,
            &bank,
            &clip.target,
            &executor,
        )
        .expect("flow");
        let binary = flow.mask.threshold(0.5).to_real();
        let quality =
            multigrid_schwarz_ilt::metrics::mask_quality(&inspection, &binary, &clip.target)
                .expect("quality");
        assert!(
            quality.l2 < naive.l2,
            "{}: L2 {} not better than naive {}",
            method.label(),
            quality.l2,
            naive.l2
        );
    }
}

#[test]
fn flows_are_deterministic() {
    // The whole pipeline — including the content-keyed solver perturbation
    // — must be exactly reproducible.
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).expect("bank");
    let clip = suite_of_size(&config.generator, 1).remove(0);
    let executor = TileExecutor::sequential();
    let a = multigrid_schwarz_ilt::core::experiment::run_method(
        Method::Ours,
        &config,
        &bank,
        &clip.target,
        &executor,
    )
    .expect("first run");
    let b = multigrid_schwarz_ilt::core::experiment::run_method(
        Method::Ours,
        &config,
        &bank,
        &clip.target,
        &executor,
    )
    .expect("second run");
    assert_eq!(a.mask, b.mask);
}

#[test]
fn parallel_and_sequential_executors_agree() {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).expect("bank");
    let clip = suite_of_size(&config.generator, 2).remove(1);
    let seq = multigrid_schwarz_ilt::core::experiment::run_method(
        Method::MultiLevelDnc,
        &config,
        &bank,
        &clip.target,
        &TileExecutor::sequential(),
    )
    .expect("sequential");
    let par = multigrid_schwarz_ilt::core::experiment::run_method(
        Method::MultiLevelDnc,
        &config,
        &bank,
        &clip.target,
        &TileExecutor::new(4),
    )
    .expect("parallel");
    assert_eq!(seq.mask, par.mask);
}

//! Integration checks on the extended metrics (MRC, EPE, pattern
//! diversity) against real solver outputs.

use multigrid_schwarz_ilt::core::experiment::{run_method, Method};
use multigrid_schwarz_ilt::core::ExperimentConfig;
use multigrid_schwarz_ilt::layout::{
    generate_via_clip, pattern_diversity, suite_of_size, ViaConfig,
};
use multigrid_schwarz_ilt::litho::{Corner, LithoBank, ResistModel};
use multigrid_schwarz_ilt::metrics::{check_mask, edge_placement_error, EpeConfig, MrcRules};
use multigrid_schwarz_ilt::tile::TileExecutor;

#[test]
fn optimised_masks_have_bounded_epe() {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).expect("bank");
    let clip = suite_of_size(&config.generator, 1).remove(0);
    let executor = TileExecutor::sequential();
    let inspection = bank
        .system(config.clip, config.inspection_scale())
        .expect("inspection");

    let flow = run_method(Method::FullChip, &config, &bank, &clip.target, &executor).expect("flow");
    let printed = inspection
        .print(&flow.mask.threshold(0.5).to_real(), Corner::Nominal)
        .expect("print");
    let epe = edge_placement_error(&clip.target, &printed, &EpeConfig::m1_default());
    assert!(!epe.gauges.is_empty());
    // An optimised mask prints within a few pixels everywhere it prints.
    assert!(epe.mean_abs < 3.0, "mean EPE {}", epe.mean_abs);
}

#[test]
fn target_layouts_are_mrc_clean_masks_are_checked() {
    // The drawn layout obeys the generator's rules, so it must be MRC-clean
    // at mask rules below the design rules.
    let config = ExperimentConfig::test_tiny();
    let clip = suite_of_size(&config.generator, 2).remove(1);
    let rules = MrcRules {
        min_width: 3,
        min_space: 3,
        min_area: 9,
    };
    let report = check_mask(&clip.target, &rules);
    assert!(report.is_clean(), "{} violations", report.count());
}

#[test]
fn ours_produces_fewer_mrc_violations_than_dnc() {
    // The quantitative version of the paper's MRC motivation, checked at
    // the miniature scale.
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).expect("bank");
    let clip = suite_of_size(&config.generator, 1).remove(0);
    let executor = TileExecutor::sequential();
    let rules = MrcRules::m1_default();

    let dnc = run_method(
        Method::MultiLevelDnc,
        &config,
        &bank,
        &clip.target,
        &executor,
    )
    .expect("dnc");
    let ours = run_method(Method::Ours, &config, &bank, &clip.target, &executor).expect("ours");
    let dnc_mrc = check_mask(&dnc.mask.threshold(0.5), &rules).count();
    let ours_mrc = check_mask(&ours.mask.threshold(0.5), &rules).count();
    assert!(
        ours_mrc <= dnc_mrc,
        "ours {ours_mrc} violations vs dnc {dnc_mrc}"
    );
}

#[test]
fn via_layers_are_template_friendly() {
    let vias = generate_via_clip(&ViaConfig::with_size(256), 11);
    let d = pattern_diversity(&vias);
    assert!(d.features > 5);
    assert!(d.template_coverage() > 0.8, "{:?}", d);
}

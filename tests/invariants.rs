//! Property-based cross-crate invariants (proptest).

use multigrid_schwarz_ilt::fft::{spectral, Complex, Fft2d, FftPlan, RfftPlan};
use multigrid_schwarz_ilt::grid::{Grid, RealGrid};
use multigrid_schwarz_ilt::tile::{
    assemble, restrict, weight_map, AssemblyMode, Partition, PartitionConfig,
};
use proptest::prelude::*;

/// Strategy: a power-of-two length between 4 and 64.
fn pow2() -> impl Strategy<Value = usize> {
    (2u32..=6).prop_map(|e| 1usize << e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_roundtrip_recovers_signal(n in pow2(), seed in 0u64..1000) {
        let plan = FftPlan::new(n).expect("plan");
        let data: Vec<Complex> = (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(seed.wrapping_add(7));
                Complex::new(
                    (x % 1000) as f64 / 500.0 - 1.0,
                    ((x / 1000) % 1000) as f64 / 500.0 - 1.0,
                )
            })
            .collect();
        let mut buf = data.clone();
        plan.forward(&mut buf).expect("fft");
        plan.inverse(&mut buf).expect("ifft");
        for (a, b) in data.iter().zip(&buf) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn rfft_matches_complex_fft(e in 3u32..=9, seed in 0u64..1000) {
        // Sizes 8..=512: the real-input plan must agree with the complex
        // plan on the stored half-spectrum for impulse, DC, and random
        // inputs alike (the random stream covers the first two in spirit;
        // dedicated impulse/DC cases live in `ilt-fft`'s unit tests).
        let n = 1usize << e;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let v = (i as u64).wrapping_mul(seed.wrapping_add(11)).wrapping_add(3);
                (v % 2000) as f64 / 1000.0 - 1.0
            })
            .collect();
        let rplan = RfftPlan::new(n).expect("rplan");
        let mut half = vec![Complex::ZERO; rplan.spectrum_len()];
        rplan.forward(&x, &mut half).expect("rfft");

        let plan = FftPlan::new(n).expect("plan");
        let mut full: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
        plan.forward(&mut full).expect("fft");

        // Parity on the stored half, and the implied Hermitian symmetry on
        // the rest. Tolerance scales with the spectrum magnitude (sums of
        // up to n unit-sized terms).
        let tol = 1e-12 * (1.0 + n as f64);
        for k in 0..=n / 2 {
            prop_assert!((half[k] - full[k]).abs() < tol, "bin {} of {}", k, n);
        }
        for k in n / 2 + 1..n {
            prop_assert!((half[n - k].conj() - full[k]).abs() < tol);
        }

        // And the inverse recovers the signal.
        let mut back = vec![0.0f64; n];
        rplan.inverse(&mut half, &mut back).expect("irfft");
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < tol);
        }
    }

    #[test]
    fn fft2_parseval(n in pow2(), seed in 0u64..1000) {
        let fft = Fft2d::new(n, n).expect("plan");
        let data: Vec<Complex> = (0..n * n)
            .map(|i| Complex::from_re(((i as u64).wrapping_mul(seed + 3) % 97) as f64 / 97.0))
            .collect();
        let time: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = data;
        fft.forward(&mut freq).expect("fft");
        let spec: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / (n * n) as f64;
        prop_assert!((time - spec).abs() < 1e-6 * (1.0 + time));
    }

    #[test]
    fn crop_embed_idempotent(n in pow2(), p_frac in 1usize..4) {
        let p = (n / 4 * p_frac).max(1);
        prop_assume!(p <= n);
        let spectrum: Vec<Complex> = (0..n * n)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let block = spectral::crop_lowfreq(&spectrum, n, p).expect("crop");
        let embedded = spectral::embed_lowfreq(&block, p, n).expect("embed");
        // Cropping again recovers the same block exactly.
        let block2 = spectral::crop_lowfreq(&embedded, n, p).expect("crop2");
        prop_assert_eq!(block, block2);
    }

    #[test]
    fn partition_weights_sum_to_one(
        tiles_per_dim in 1usize..4,
        tile_exp in 4u32..6,
        band in 2usize..20,
    ) {
        let tile = 1usize << tile_exp;
        let overlap = tile / 2;
        let stride = tile - overlap;
        let extent = tile + (tiles_per_dim - 1) * stride;
        let partition =
            Partition::new(extent, extent, PartitionConfig { tile, overlap }).expect("partition");
        for mode in [
            AssemblyMode::Restricted,
            AssemblyMode::Weighted { band: band.min(overlap) },
        ] {
            let mut total = RealGrid::new(extent, extent, 0.0);
            for t in partition.tiles() {
                let w = weight_map(&partition, t.index, mode);
                for y in 0..tile {
                    for x in 0..tile {
                        let gx = t.rect.x0 as usize + x;
                        let gy = t.rect.y0 as usize + y;
                        total.set(gx, gy, total.get(gx, gy) + w.get(x, y));
                    }
                }
            }
            for (_, _, &v) in total.iter() {
                prop_assert!((v - 1.0).abs() < 1e-9, "{mode:?}: weight sum {v}");
            }
        }
    }

    #[test]
    fn assembly_reconstructs_any_layout(
        tiles_per_dim in 1usize..4,
        seed in 0u64..500,
        band in 2usize..16,
    ) {
        let tile = 32usize;
        let overlap = 16usize;
        let stride = tile - overlap;
        let extent = tile + (tiles_per_dim - 1) * stride;
        let partition =
            Partition::new(extent, extent, PartitionConfig { tile, overlap }).expect("partition");
        let layout = Grid::from_fn(extent, extent, |x, y| {
            (((x as u64 * 31 + y as u64 * 17).wrapping_mul(seed + 1)) % 11) as f64
        });
        let crops: Vec<RealGrid> = partition.tiles().iter().map(|t| restrict(&layout, t)).collect();
        for mode in [
            AssemblyMode::Restricted,
            AssemblyMode::Weighted { band },
        ] {
            let rebuilt = assemble(&partition, &crops, mode).expect("assemble");
            for y in 0..extent {
                for x in 0..extent {
                    prop_assert!(
                        (rebuilt.get(x, y) - layout.get(x, y)).abs() < 1e-9,
                        "{mode:?} at ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn downsample_upsample_mean_preserved(exp in 3u32..6, s in 1usize..4, seed in 0u64..100) {
        let n = (1usize << exp) * s;
        let img = Grid::from_fn(n, n, |x, y| {
            (((x * 13 + y * 7) as u64).wrapping_mul(seed + 5) % 23) as f64
        });
        let down = multigrid_schwarz_ilt::grid::resample::downsample(&img, s);
        prop_assert!((down.sum() * (s * s) as f64 - img.sum()).abs() < 1e-6 * (1.0 + img.sum()));
        let up = multigrid_schwarz_ilt::grid::resample::upsample_nearest(&down, s);
        prop_assert_eq!(up.width(), img.width());
    }
}

#[test]
fn stitch_loss_is_translation_invariant_along_the_line() {
    // Shifting a crossing along the stitch line must not change its loss
    // (away from clip borders).
    use multigrid_schwarz_ilt::metrics::{stitch_loss, StitchConfig};
    use multigrid_schwarz_ilt::tile::{Orientation, StitchLine};

    let line = StitchLine {
        orientation: Orientation::Vertical,
        position: 64,
        start: 0,
        end: 128,
    };
    let cfg = StitchConfig::paper_default();
    let mut losses = Vec::new();
    for y0 in [40i64, 56, 72] {
        let mut mask: multigrid_schwarz_ilt::grid::BitGrid = Grid::new(128, 128, 0);
        mask.fill_rect(
            multigrid_schwarz_ilt::grid::Rect::new(30, y0, 64, y0 + 10),
            1,
        );
        mask.fill_rect(
            multigrid_schwarz_ilt::grid::Rect::new(64, y0 + 6, 100, y0 + 16),
            1,
        );
        let report = stitch_loss(&mask, &[line], &cfg);
        assert_eq!(report.intersections.len(), 1);
        losses.push(report.total);
    }
    for w in losses.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-9,
            "translation changed the loss: {losses:?}"
        );
    }
}

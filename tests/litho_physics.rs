//! Cross-crate physical consistency checks on the lithography stack.

use multigrid_schwarz_ilt::fft::Complex;
use multigrid_schwarz_ilt::grid::{Grid, Rect};
use multigrid_schwarz_ilt::layout::{generate_clip, GeneratorConfig};
use multigrid_schwarz_ilt::litho::{
    Corner, KernelSet, LithoBank, LithoSimulator, OpticsConfig, ResistModel,
};

fn bank() -> LithoBank {
    LithoBank::new(OpticsConfig::test_small(), ResistModel::m1_default()).expect("bank")
}

#[test]
fn equation3_scaled_simulation_is_consistent_with_tiles() {
    // Simulating a 2N region at scale 2 (Eq. (3)) must agree with the
    // N-sized tile simulation in the tile's interior, away from wrap-around.
    let bank = bank();
    let n = 64;
    let big = bank.system(2 * n, 2).expect("big system");
    let small = bank.system(n, 1).expect("small system");

    let clip = generate_clip(&GeneratorConfig::with_size(2 * n), 9).to_real();
    let big_aerial = big.aerial(&clip, Corner::Nominal).expect("big sim");

    let tile = clip.crop(Rect::new(32, 32, 32 + n as i64, 32 + n as i64));
    let tile_aerial = small.aerial(&tile, Corner::Nominal).expect("tile sim");

    // Compare deep-interior pixels (16 px from the tile edge keeps the
    // tile's circular-convolution halo out).
    let mut worst: f64 = 0.0;
    for y in 16..n - 16 {
        for x in 16..n - 16 {
            let diff = (tile_aerial.get(x, y) - big_aerial.get(32 + x, 32 + y)).abs();
            worst = worst.max(diff);
        }
    }
    assert!(worst < 0.02, "tile/full simulation mismatch {worst}");
}

#[test]
fn kernel_energy_conservation_under_scaling() {
    // Scaling resamples the spectrum on the same physical support; the DC
    // response (clear-field intensity) must be invariant.
    let set = KernelSet::build(&OpticsConfig::test_small(), false).expect("kernels");
    for s in [1usize, 2, 3] {
        let scaled = set.scaled(s).expect("scaled");
        assert!(
            (scaled.clear_field_intensity() - 1.0).abs() < 1e-9,
            "scale {s}"
        );
    }
}

#[test]
fn aerial_image_is_band_limited() {
    // The image spectrum cannot extend beyond twice the shifted-pupil
    // reach; verify the high-frequency half-band of the image is empty.
    let bank = bank();
    let n = 64;
    let system = bank.system(n, 1).expect("system");
    let mut mask = Grid::new(n, n, 0.0);
    // Harsh input: a checkerboard of single pixels (full-spectrum content).
    for y in 0..n {
        for x in 0..n {
            if (x + y) % 2 == 0 {
                mask.set(x, y, 1.0);
            }
        }
    }
    let aerial = system.aerial(&mask, Corner::Nominal).expect("sim");
    let fft = multigrid_schwarz_ilt::fft::Fft2d::new(n, n).expect("plan");
    let mut spec: Vec<Complex> = aerial
        .as_slice()
        .iter()
        .map(|&v| Complex::from_re(v))
        .collect();
    fft.forward(&mut spec).expect("fft");
    // Image band limit: 2 * (1 + sigma_outer) * pupil_radius ~ 21.6 bins
    // for the test_small config; check bins beyond 28 are empty.
    let limit = 28i64;
    let mut leak: f64 = 0.0;
    for r in 0..n {
        for c in 0..n {
            let fr = multigrid_schwarz_ilt::fft::spectral::signed_index(r, n);
            let fc = multigrid_schwarz_ilt::fft::spectral::signed_index(c, n);
            if fr.abs() > limit && fc.abs() > limit {
                leak = leak.max(spec[r * n + c].abs());
            }
        }
    }
    let dc = spec[0].abs().max(1e-12);
    assert!(leak / dc < 1e-10, "out-of-band leakage {leak} vs DC {dc}");
}

#[test]
fn dose_monotonicity_of_prints() {
    // More dose can only grow the printed region (nominal-focus corners).
    let bank = bank();
    let n = 64;
    let system = bank.system(n, 1).expect("system");
    let mut mask = Grid::new(n, n, 0.0);
    mask.fill_rect(Rect::new(12, 16, 30, 48), 1.0);
    mask.fill_rect(Rect::new(38, 20, 52, 30), 1.0);
    let aerial = system.aerial(&mask, Corner::Nominal).expect("sim");
    let resist = system.resist();
    let lo = resist.print_with_dose(&aerial, 0.95);
    let mid = resist.print_with_dose(&aerial, 1.0);
    let hi = resist.print_with_dose(&aerial, 1.05);
    for i in 0..lo.as_slice().len() {
        assert!(lo.as_slice()[i] <= mid.as_slice()[i]);
        assert!(mid.as_slice()[i] <= hi.as_slice()[i]);
    }
}

#[test]
fn simulator_rejects_foreign_state() {
    // Gradient with a state from a different simulator must panic (shape
    // assertion), not silently compute garbage.
    let bank = bank();
    let sys64 = bank.system(64, 1).expect("system");
    let mask = Grid::new(64, 64, 0.5);
    let state = sys64.simulate(&mask).expect("sim");
    let sim_other = LithoSimulator::new(
        64,
        KernelSet::build(&OpticsConfig::test_small(), true).expect("k"),
    )
    .expect("sim");
    // Same kernel count and shape: the gradient is well-defined (no panic);
    // this documents that state compatibility is by shape, not identity.
    let dldi = Grid::new(64, 64, 1.0);
    let grad = sim_other.gradient(&state, &dldi).expect("gradient");
    assert_eq!(grad.width(), 64);
}

//! Round-trip IO for non-square M×N grids. The incremental (ECO) subsystem
//! hashes and spills rectangular tile crops, so width≠height must survive
//! every serialisation path bit-for-bit (CSV) or value-for-value (PGM).

use ilt_grid::io::{read_csv, read_pgm_from, write_csv, write_pgm_to};
use ilt_grid::{Grid, RealGrid};

fn nonsquare(width: usize, height: usize) -> RealGrid {
    // Values already in [0, 255] with both endpoints present, so the PGM
    // range mapping is the identity and the round-trip is exact.
    Grid::from_fn(width, height, |x, y| {
        if (x, y) == (0, 0) {
            0.0
        } else if (x, y) == (1, 0) {
            255.0
        } else {
            ((x * 37 + y * 101) % 256) as f64
        }
    })
}

#[test]
fn wide_pgm_round_trips_exactly() {
    let img = nonsquare(13, 5);
    let mut buf = Vec::new();
    write_pgm_to(&mut buf, &img).unwrap();
    let back = read_pgm_from(buf.as_slice()).unwrap();
    assert_eq!(back.width(), 13);
    assert_eq!(back.height(), 5);
    assert_eq!(back.as_slice(), img.as_slice());
}

#[test]
fn tall_pgm_round_trips_exactly() {
    let img = nonsquare(3, 17);
    let mut buf = Vec::new();
    write_pgm_to(&mut buf, &img).unwrap();
    let back = read_pgm_from(buf.as_slice()).unwrap();
    assert_eq!((back.width(), back.height()), (3, 17));
    assert_eq!(back.as_slice(), img.as_slice());
}

#[test]
fn pgm_header_dimensions_are_width_then_height() {
    // A transposition bug would swap these for any non-square grid.
    let img = nonsquare(7, 2);
    let mut buf = Vec::new();
    write_pgm_to(&mut buf, &img).unwrap();
    let text = String::from_utf8_lossy(&buf[..12]);
    assert!(text.contains("7 2"), "header: {text:?}");
}

#[test]
fn nonsquare_csv_round_trips() {
    let img = nonsquare(6, 4);
    let header: Vec<&str> = (0..img.width()).map(|_| "c").collect();
    let rows: Vec<Vec<String>> = (0..img.height())
        .map(|y| {
            (0..img.width())
                .map(|x| img.get(x, y).to_string())
                .collect()
        })
        .collect();
    let dir = std::env::temp_dir().join(format!("ilt-grid-nonsquare-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("grid.csv");
    write_csv(&path, &header, &rows).unwrap();
    let (got_header, got_rows) = read_csv(&path).unwrap();
    assert_eq!(got_header.len(), 6);
    assert_eq!(got_rows.len(), 4);
    for (y, row) in got_rows.iter().enumerate() {
        assert_eq!(row.len(), 6, "row {y}");
        for (x, cell) in row.iter().enumerate() {
            assert_eq!(cell.parse::<f64>().unwrap(), img.get(x, y));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Fault-injected IO behaviour. Lives in its own integration binary
//! because arming the process-global fault registry must not race the
//! crate's other test binaries; within this binary the single test owns
//! the registry for its whole duration.

use ilt_fault::{points, FaultSpec};
use ilt_grid::io::{read_pgm_from, write_pgm_to};
use ilt_grid::Grid;

#[test]
fn injected_pgm_truncation_is_a_typed_error_and_deterministic() {
    let img = Grid::from_fn(8, 8, |x, y| (x * 8 + y) as f64);
    let mut buf = Vec::new();
    write_pgm_to(&mut buf, &img).unwrap();

    // Uninjected read works.
    assert!(read_pgm_from(&buf[..]).is_ok());

    // At rate 1.0 every read sees a truncated payload and must return a
    // typed InvalidData error, never panic.
    ilt_fault::configure(vec![FaultSpec::always(points::GRID_PGM_TRUNCATE, 42)]);
    for _ in 0..4 {
        let err = read_pgm_from(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("payload"), "{err}");
    }
    assert_eq!(ilt_fault::fired_count(points::GRID_PGM_TRUNCATE), 4);

    // At rate 0.5 the fire pattern is a pure function of the seed.
    let pattern = |seed: u64| -> Vec<bool> {
        ilt_fault::configure(vec![FaultSpec {
            rate: 0.5,
            ..FaultSpec::always(points::GRID_PGM_TRUNCATE, seed)
        }]);
        (0..16).map(|_| read_pgm_from(&buf[..]).is_err()).collect()
    };
    let a = pattern(7);
    let b = pattern(7);
    assert_eq!(a, b, "same seed, same corruption pattern");
    assert!(a.iter().any(|e| *e) && !a.iter().all(|e| *e));

    ilt_fault::clear();
    assert!(read_pgm_from(&buf[..]).is_ok(), "disarmed reads recover");
}

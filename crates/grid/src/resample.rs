//! Spatial resampling: the `Downsample(..., factor = s)` of Algorithm 1 and
//! the corresponding upsampling used when a coarse-grid solution initialises
//! the fine grid.

use crate::grid::RealGrid;

/// Downsamples by integer factor `s` using `s x s` block averaging.
///
/// Block averaging (rather than decimation) is what "downsample the mask to
/// fit a single GPU" means physically: each coarse pixel carries the mean
/// transmission of the fine pixels it covers, which keeps the low-frequency
/// spectrum — the only part the optics sees — nearly unchanged.
///
/// # Panics
///
/// Panics if `s == 0` or the grid dimensions are not divisible by `s`.
pub fn downsample(img: &RealGrid, s: usize) -> RealGrid {
    assert!(s > 0, "downsample factor must be nonzero");
    if s == 1 {
        return img.clone();
    }
    let (w, h) = (img.width(), img.height());
    assert!(
        w % s == 0 && h % s == 0,
        "grid {w}x{h} is not divisible by factor {s}"
    );
    let norm = 1.0 / (s * s) as f64;
    RealGrid::from_fn(w / s, h / s, |x, y| {
        let mut acc = 0.0;
        for dy in 0..s {
            for dx in 0..s {
                acc += img.get(x * s + dx, y * s + dy);
            }
        }
        acc * norm
    })
}

/// Downsamples by taking every `s`-th pixel (pure decimation). Provided for
/// comparison with [`downsample`]; aliasing makes it a worse choice for
/// masks with fine SRAFs.
///
/// # Panics
///
/// Panics if `s == 0` or the grid dimensions are not divisible by `s`.
pub fn decimate(img: &RealGrid, s: usize) -> RealGrid {
    assert!(s > 0, "decimation factor must be nonzero");
    if s == 1 {
        return img.clone();
    }
    let (w, h) = (img.width(), img.height());
    assert!(
        w % s == 0 && h % s == 0,
        "grid {w}x{h} is not divisible by factor {s}"
    );
    RealGrid::from_fn(w / s, h / s, |x, y| img.get(x * s, y * s))
}

/// Upsamples by integer factor `s` with nearest-neighbour replication.
///
/// # Panics
///
/// Panics if `s == 0`.
pub fn upsample_nearest(img: &RealGrid, s: usize) -> RealGrid {
    assert!(s > 0, "upsample factor must be nonzero");
    if s == 1 {
        return img.clone();
    }
    RealGrid::from_fn(img.width() * s, img.height() * s, |x, y| {
        img.get(x / s, y / s)
    })
}

/// Upsamples by integer factor `s` with bilinear interpolation; used to
/// promote a coarse-grid ILT solution onto the fine grid without introducing
/// blocky jumps that the fine solver would then have to undo.
///
/// # Panics
///
/// Panics if `s == 0`.
pub fn upsample_bilinear(img: &RealGrid, s: usize) -> RealGrid {
    assert!(s > 0, "upsample factor must be nonzero");
    if s == 1 {
        return img.clone();
    }
    let (w, h) = (img.width(), img.height());
    RealGrid::from_fn(w * s, h * s, |x, y| {
        // Coarse pixel centers sit at (i + 0.5) * s - 0.5 on the fine grid.
        let fx = (x as f64 + 0.5) / s as f64 - 0.5;
        let fy = (y as f64 + 0.5) / s as f64 - 0.5;
        let x0 = fx.floor().max(0.0) as usize;
        let y0 = fy.floor().max(0.0) as usize;
        let x1 = (x0 + 1).min(w - 1);
        let y1 = (y0 + 1).min(h - 1);
        let dx = (fx - x0 as f64).clamp(0.0, 1.0);
        let dy = (fy - y0 as f64).clamp(0.0, 1.0);
        img.get(x0, y0) * (1.0 - dx) * (1.0 - dy)
            + img.get(x1, y0) * dx * (1.0 - dy)
            + img.get(x0, y1) * (1.0 - dx) * dy
            + img.get(x1, y1) * dx * dy
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    #[test]
    fn block_average_is_exact_mean() {
        let img = Grid::from_vec(4, 2, vec![1.0, 3.0, 5.0, 7.0, 2.0, 4.0, 6.0, 8.0]);
        let d = downsample(&img, 2);
        assert_eq!(d.width(), 2);
        assert_eq!(d.height(), 1);
        assert_eq!(d.get(0, 0), 2.5);
        assert_eq!(d.get(1, 0), 6.5);
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let img = Grid::from_fn(4, 4, |x, y| (x * y) as f64);
        assert_eq!(downsample(&img, 1), img);
        assert_eq!(decimate(&img, 1), img);
        assert_eq!(upsample_nearest(&img, 1), img);
        assert_eq!(upsample_bilinear(&img, 1), img);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn downsample_rejects_indivisible() {
        let img = Grid::new(5, 4, 0.0);
        let _ = downsample(&img, 2);
    }

    #[test]
    fn downsample_preserves_mean() {
        let img = Grid::from_fn(8, 8, |x, y| ((x * 31 + y * 17) % 7) as f64);
        let d = downsample(&img, 4);
        let mean_full = img.sum() / img.len() as f64;
        let mean_down = d.sum() / d.len() as f64;
        assert!((mean_full - mean_down).abs() < 1e-12);
    }

    #[test]
    fn decimate_picks_corner_samples() {
        let img = Grid::from_fn(4, 4, |x, y| (y * 4 + x) as f64);
        let d = decimate(&img, 2);
        assert_eq!(d.as_slice(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn nearest_upsample_replicates_blocks() {
        let img = Grid::from_vec(2, 1, vec![1.0, 2.0]);
        let u = upsample_nearest(&img, 2);
        assert_eq!(u.as_slice(), &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn downsample_of_nearest_upsample_is_identity() {
        let img = Grid::from_fn(4, 4, |x, y| ((x + 2 * y) % 5) as f64);
        for s in [2usize, 3] {
            let u = upsample_nearest(&img, s);
            let d = downsample(&u, s);
            assert_eq!(d, img, "s={s}");
        }
    }

    #[test]
    fn bilinear_preserves_constant_images() {
        let img = Grid::new(3, 3, 0.4);
        let u = upsample_bilinear(&img, 4);
        for (_, _, &v) in u.iter() {
            assert!((v - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn bilinear_interpolates_between_pixels() {
        let img = Grid::from_vec(2, 1, vec![0.0, 1.0]);
        let u = upsample_bilinear(&img, 2);
        // Fine pixels at fractional source positions -0.25, 0.25, 0.75, 1.25.
        assert_eq!(u.get(0, 0), 0.0);
        assert!((u.get(1, 0) - 0.25).abs() < 1e-12);
        assert!((u.get(2, 0) - 0.75).abs() < 1e-12);
        assert_eq!(u.get(3, 0), 1.0);
    }

    #[test]
    fn bilinear_is_smoother_than_nearest() {
        // Total variation of the bilinear result never exceeds nearest.
        let img = Grid::from_vec(4, 1, vec![0.0, 1.0, 0.0, 1.0]);
        let tv = |g: &RealGrid| -> f64 {
            (1..g.width())
                .map(|x| (g.get(x, 0) - g.get(x - 1, 0)).abs())
                .sum()
        };
        let un = upsample_nearest(&img, 4);
        let ub = upsample_bilinear(&img, 4);
        assert!(tv(&ub) <= tv(&un) + 1e-12);
    }
}

//! Binary morphology and connected-component labelling.
//!
//! Used by the layout generator (design-rule spacing checks), the stitch
//! metric (intersection clustering), and the manufacturability analysis of
//! stitched masks.

use crate::grid::BitGrid;
use crate::rect::Rect;

/// Dilates a binary grid with a `(2r+1) x (2r+1)` square structuring
/// element.
pub fn dilate(img: &BitGrid, r: usize) -> BitGrid {
    if r == 0 {
        return img.clone();
    }
    // Separable: horizontal run-max then vertical run-max.
    let horizontal = directional_max(img, r as i64, true);
    directional_max(&horizontal, r as i64, false)
}

/// Erodes a binary grid with a `(2r+1) x (2r+1)` square structuring element.
pub fn erode(img: &BitGrid, r: usize) -> BitGrid {
    if r == 0 {
        return img.clone();
    }
    let horizontal = directional_min(img, r as i64, true);
    directional_min(&horizontal, r as i64, false)
}

/// Morphological opening (erode then dilate): removes features thinner than
/// the structuring element.
pub fn open(img: &BitGrid, r: usize) -> BitGrid {
    dilate(&erode(img, r), r)
}

/// Morphological closing (dilate then erode): fills gaps narrower than the
/// structuring element.
pub fn close(img: &BitGrid, r: usize) -> BitGrid {
    erode(&dilate(img, r), r)
}

fn directional_max(img: &BitGrid, r: i64, horizontal: bool) -> BitGrid {
    let (w, h) = (img.width(), img.height());
    BitGrid::from_fn(w, h, |x, y| {
        for off in -r..=r {
            let (sx, sy) = if horizontal {
                (x as i64 + off, y as i64)
            } else {
                (x as i64, y as i64 + off)
            };
            if sx >= 0
                && sy >= 0
                && (sx as usize) < w
                && (sy as usize) < h
                && img.get(sx as usize, sy as usize) != 0
            {
                return 1;
            }
        }
        0
    })
}

fn directional_min(img: &BitGrid, r: i64, horizontal: bool) -> BitGrid {
    let (w, h) = (img.width(), img.height());
    BitGrid::from_fn(w, h, |x, y| {
        for off in -r..=r {
            let (sx, sy) = if horizontal {
                (x as i64 + off, y as i64)
            } else {
                (x as i64, y as i64 + off)
            };
            // Outside the grid counts as background, eroding the border.
            if sx < 0
                || sy < 0
                || sx as usize >= w
                || sy as usize >= h
                || img.get(sx as usize, sy as usize) == 0
            {
                return 0;
            }
        }
        1
    })
}

/// A 4-connected component of set pixels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Component label (1-based, matching the label grid).
    pub label: u32,
    /// Number of pixels in the component.
    pub area: usize,
    /// Tight bounding box.
    pub bbox: Rect,
}

/// Labels 4-connected components; returns the label grid (0 = background)
/// and per-component statistics sorted by descending area.
pub fn connected_components(img: &BitGrid) -> (Vec<u32>, Vec<Component>) {
    let (w, h) = (img.width(), img.height());
    let mut labels = vec![0u32; w * h];
    let mut components = Vec::new();
    let mut next = 1u32;
    let mut stack = Vec::new();

    for y in 0..h {
        for x in 0..w {
            if img.get(x, y) == 0 || labels[y * w + x] != 0 {
                continue;
            }
            let label = next;
            next += 1;
            let mut area = 0usize;
            let mut bbox = Rect::new(x as i64, y as i64, x as i64 + 1, y as i64 + 1);
            stack.push((x, y));
            labels[y * w + x] = label;
            while let Some((cx, cy)) = stack.pop() {
                area += 1;
                bbox = bbox.union_bounds(Rect::new(
                    cx as i64,
                    cy as i64,
                    cx as i64 + 1,
                    cy as i64 + 1,
                ));
                let mut push = |nx: usize, ny: usize, labels: &mut Vec<u32>| {
                    if img.get(nx, ny) != 0 && labels[ny * w + nx] == 0 {
                        labels[ny * w + nx] = label;
                        stack.push((nx, ny));
                    }
                };
                if cx > 0 {
                    push(cx - 1, cy, &mut labels);
                }
                if cx + 1 < w {
                    push(cx + 1, cy, &mut labels);
                }
                if cy > 0 {
                    push(cx, cy - 1, &mut labels);
                }
                if cy + 1 < h {
                    push(cx, cy + 1, &mut labels);
                }
            }
            components.push(Component { label, area, bbox });
        }
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.area));
    (labels, components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    fn cross(n: usize) -> BitGrid {
        // A plus-shaped figure centered in an n x n grid.
        let c = n / 2;
        Grid::from_fn(n, n, |x, y| u8::from(x == c || y == c))
    }

    #[test]
    fn dilate_grows_area() {
        let mut img = Grid::new(9, 9, 0u8);
        img.set(4, 4, 1);
        let d = dilate(&img, 1);
        assert_eq!(d.count_ones(), 9);
        let d2 = dilate(&img, 2);
        assert_eq!(d2.count_ones(), 25);
    }

    #[test]
    fn erode_shrinks_area() {
        let mut img = Grid::new(9, 9, 0u8);
        img.fill_rect(Rect::new(2, 2, 7, 7), 1);
        let e = erode(&img, 1);
        assert_eq!(e.count_ones(), 9); // 5x5 -> 3x3
        let e2 = erode(&img, 2);
        assert_eq!(e2.count_ones(), 1);
        let e3 = erode(&img, 3);
        assert_eq!(e3.count_ones(), 0);
    }

    #[test]
    fn zero_radius_is_identity() {
        let img = cross(7);
        assert_eq!(dilate(&img, 0), img);
        assert_eq!(erode(&img, 0), img);
    }

    #[test]
    fn erode_is_dual_of_dilate_on_border_free_shapes() {
        // For shapes away from the border, erode(img) == !dilate(!img).
        let mut img = Grid::new(16, 16, 0u8);
        img.fill_rect(Rect::new(5, 5, 11, 11), 1);
        let e = erode(&img, 1);
        let complement = img.map(|&v| 1 - v);
        let d = dilate(&complement, 1);
        let dual = d.map(|&v| 1 - v);
        assert_eq!(e, dual);
    }

    #[test]
    fn open_removes_thin_features() {
        let mut img = Grid::new(16, 16, 0u8);
        img.fill_rect(Rect::new(2, 2, 12, 12), 1); // 10x10 block survives
        img.fill_rect(Rect::new(2, 14, 14, 15), 1); // 1-wide line dies
        let o = open(&img, 1);
        assert_eq!(o.count_ones(), 100);
    }

    #[test]
    fn close_fills_small_gaps() {
        let mut img = Grid::new(16, 8, 0u8);
        img.fill_rect(Rect::new(1, 2, 7, 6), 1);
        img.fill_rect(Rect::new(8, 2, 14, 6), 1); // 1-wide slit at x=7
        let c = close(&img, 1);
        assert_eq!(c.get(7, 3), 1);
    }

    #[test]
    fn components_counts_and_labels() {
        let mut img = Grid::new(10, 10, 0u8);
        img.fill_rect(Rect::new(0, 0, 3, 3), 1);
        img.fill_rect(Rect::new(6, 6, 10, 10), 1);
        img.set(5, 0, 1); // isolated pixel
        let (labels, comps) = connected_components(&img);
        assert_eq!(comps.len(), 3);
        // Sorted by area descending.
        assert_eq!(comps[0].area, 16);
        assert_eq!(comps[1].area, 9);
        assert_eq!(comps[2].area, 1);
        assert_eq!(comps[2].bbox, Rect::new(5, 0, 6, 1));
        // Label grid consistent with areas.
        let count = labels.iter().filter(|&&l| l == comps[0].label).count();
        assert_eq!(count, 16);
    }

    #[test]
    fn diagonal_pixels_are_separate_components() {
        let mut img = Grid::new(4, 4, 0u8);
        img.set(0, 0, 1);
        img.set(1, 1, 1);
        let (_, comps) = connected_components(&img);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn empty_image_has_no_components() {
        let img: BitGrid = Grid::new(5, 5, 0);
        let (labels, comps) = connected_components(&img);
        assert!(comps.is_empty());
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn component_bbox_is_tight() {
        let img = cross(9);
        let (_, comps) = connected_components(&img);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].bbox, Rect::new(0, 0, 9, 9));
        assert_eq!(comps[0].area, 17);
    }
}

//! The core 2-D raster container used for masks, aerial images, and wafer
//! images throughout the workspace.

use std::ops::{Index, IndexMut};

use crate::rect::Rect;

/// A dense row-major 2-D grid.
///
/// Coordinates follow image conventions: `x` indexes columns (left to
/// right), `y` indexes rows (top to bottom). `Grid<f64>` carries continuous
/// mask/intensity values, `Grid<u8>` carries binary images (0 or 1).
///
/// # Examples
///
/// ```
/// use ilt_grid::Grid;
///
/// let mut g = Grid::new(4, 3, 0.0_f64);
/// g.set(2, 1, 5.0);
/// assert_eq!(g.get(2, 1), 5.0);
/// assert_eq!(g[(1, 2)], 5.0); // (row, col) indexing
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

/// A grid of continuous values (masks before binarisation, aerial images).
pub type RealGrid = Grid<f64>;
/// A grid of binary values: every element is 0 or 1.
pub type BitGrid = Grid<u8>;

impl<T: Clone> Grid<T> {
    /// Creates a grid filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, value: T) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be nonzero");
        Grid {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Builds a grid by evaluating `f(x, y)` at every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn<F: FnMut(usize, usize) -> T>(width: usize, height: usize, mut f: F) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be nonzero");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Grid {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be nonzero");
        assert_eq!(data.len(), width * height, "buffer does not match shape");
        Grid {
            width,
            height,
            data,
        }
    }

    /// Grid width (number of columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (number of rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: grids are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The full-grid bounding rectangle.
    #[inline]
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width as i64, self.height as i64)
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        assert!(
            x < self.width && y < self.height,
            "grid index out of bounds"
        );
        self.data[y * self.width + x].clone()
    }

    /// Reference to the value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get_ref(&self, x: usize, y: usize) -> &T {
        assert!(
            x < self.width && y < self.height,
            "grid index out of bounds"
        );
        &self.data[y * self.width + x]
    }

    /// Sets the value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: T) {
        assert!(
            x < self.width && y < self.height,
            "grid index out of bounds"
        );
        self.data[y * self.width + x] = value;
    }

    /// Borrow of the row-major backing store.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable borrow of the row-major backing store.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid and returns the backing store.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= self.height()`.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        assert!(y < self.height, "row index out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Copies the sub-rectangle `rect` (clipped to the grid) into a new grid.
    ///
    /// # Panics
    ///
    /// Panics if `rect` does not intersect the grid at all.
    pub fn crop(&self, rect: Rect) -> Grid<T> {
        let clipped = rect
            .intersect(self.bounds())
            .expect("crop rectangle lies outside the grid");
        let (w, h) = (clipped.width() as usize, clipped.height() as usize);
        let (x0, y0) = (clipped.x0 as usize, clipped.y0 as usize);
        Grid::from_fn(w, h, |x, y| self.get(x0 + x, y0 + y))
    }

    /// Pastes `src` into this grid with its top-left corner at `(x0, y0)`;
    /// parts of `src` falling outside the grid are ignored.
    pub fn paste(&mut self, src: &Grid<T>, x0: i64, y0: i64) {
        for sy in 0..src.height {
            let dy = y0 + sy as i64;
            if dy < 0 || dy >= self.height as i64 {
                continue;
            }
            for sx in 0..src.width {
                let dx = x0 + sx as i64;
                if dx < 0 || dx >= self.width as i64 {
                    continue;
                }
                self.set(dx as usize, dy as usize, src.get(sx, sy));
            }
        }
    }

    /// Applies `f` to every value, producing a new grid.
    pub fn map<U: Clone, F: FnMut(&T) -> U>(&self, f: F) -> Grid<U> {
        Grid {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Iterates over `(x, y, &value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (i % w, i / w, v))
    }

    /// Fills the (clipped) rectangle with `value`.
    pub fn fill_rect(&mut self, rect: Rect, value: T) {
        if let Some(clipped) = rect.intersect(self.bounds()) {
            for y in clipped.y0 as usize..clipped.y1 as usize {
                for x in clipped.x0 as usize..clipped.x1 as usize {
                    self.set(x, y, value.clone());
                }
            }
        }
    }
}

impl RealGrid {
    /// Sum of all values.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest value (or `-inf` is impossible: grids are non-empty).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest value.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Sum of squared differences against another grid of the same shape
    /// (the L2 metric of Definition 2 when both grids are binary).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sq_diff(&self, other: &RealGrid) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "grids must have identical shapes"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Converts to a binary grid: 1 where `value >= threshold`.
    pub fn threshold(&self, threshold: f64) -> BitGrid {
        self.map(|&v| u8::from(v >= threshold))
    }
}

impl BitGrid {
    /// Number of set pixels.
    pub fn count_ones(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }

    /// Number of pixels where the two binary grids disagree (the XOR area).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn xor_count(&self, other: &BitGrid) -> usize {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "grids must have identical shapes"
        );
        self.data
            .iter()
            .zip(&other.data)
            .filter(|(a, b)| (**a != 0) != (**b != 0))
            .count()
    }

    /// Converts to a real grid of 0.0/1.0 values.
    pub fn to_real(&self) -> RealGrid {
        self.map(|&v| if v != 0 { 1.0 } else { 0.0 })
    }
}

impl<T: Clone> Index<(usize, usize)> for Grid<T> {
    type Output = T;

    /// Indexes by `(row, col)`, i.e. `(y, x)`.
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(
            col < self.width && row < self.height,
            "grid index out of bounds"
        );
        &self.data[row * self.width + col]
    }
}

impl<T: Clone> IndexMut<(usize, usize)> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(
            col < self.width && row < self.height,
            "grid index out of bounds"
        );
        &mut self.data[row * self.width + col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let g: Grid<f64> = Grid::new(3, 2, 1.5);
        assert_eq!(g.width(), 3);
        assert_eq!(g.height(), 2);
        assert_eq!(g.len(), 6);
        assert!(!g.is_empty());
        assert_eq!(g.get(2, 1), 1.5);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_panics() {
        let _: Grid<f64> = Grid::new(0, 4, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let g: Grid<u8> = Grid::new(2, 2, 0);
        let _ = g.get(2, 0);
    }

    #[test]
    fn from_fn_row_major_layout() {
        let g = Grid::from_fn(3, 2, |x, y| (y * 10 + x) as f64);
        assert_eq!(g.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(g.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_vec_and_into_vec_roundtrip() {
        let data = vec![1u8, 2, 3, 4, 5, 6];
        let g = Grid::from_vec(2, 3, data.clone());
        assert_eq!(g.get(1, 2), 6);
        assert_eq!(g.into_vec(), data);
    }

    #[test]
    #[should_panic(expected = "buffer does not match shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Grid::from_vec(2, 2, vec![0u8; 3]);
    }

    #[test]
    fn index_by_row_col() {
        let mut g = Grid::new(4, 3, 0.0);
        g[(2, 3)] = 7.0; // row 2, col 3
        assert_eq!(g.get(3, 2), 7.0);
    }

    #[test]
    fn crop_extracts_subgrid() {
        let g = Grid::from_fn(4, 4, |x, y| (y * 4 + x) as f64);
        let c = g.crop(Rect::new(1, 2, 3, 4));
        assert_eq!(c.width(), 2);
        assert_eq!(c.height(), 2);
        assert_eq!(c.get(0, 0), 9.0);
        assert_eq!(c.get(1, 1), 14.0);
    }

    #[test]
    fn crop_clips_to_bounds() {
        let g = Grid::from_fn(4, 4, |x, y| (y * 4 + x) as f64);
        let c = g.crop(Rect::new(2, 2, 10, 10));
        assert_eq!(c.width(), 2);
        assert_eq!(c.height(), 2);
        assert_eq!(c.get(0, 0), 10.0);
    }

    #[test]
    #[should_panic(expected = "outside the grid")]
    fn crop_outside_panics() {
        let g: Grid<u8> = Grid::new(2, 2, 0);
        let _ = g.crop(Rect::new(5, 5, 8, 8));
    }

    #[test]
    fn paste_with_clipping() {
        let mut g = Grid::new(4, 4, 0u8);
        let src = Grid::new(2, 2, 1u8);
        g.paste(&src, 3, 3); // only (3,3) lands inside
        assert_eq!(g.get(3, 3), 1);
        assert_eq!(g.count_ones(), 1);
        g.paste(&src, -1, -1); // only (0,0) lands inside
        assert_eq!(g.get(0, 0), 1);
        assert_eq!(g.count_ones(), 2);
    }

    #[test]
    fn paste_then_crop_roundtrip() {
        let src = Grid::from_fn(3, 3, |x, y| (10 + y * 3 + x) as f64);
        let mut g = Grid::new(8, 8, 0.0);
        g.paste(&src, 2, 4);
        let back = g.crop(Rect::new(2, 4, 5, 7));
        assert_eq!(back, src);
    }

    #[test]
    fn map_and_iter() {
        let g = Grid::from_fn(2, 2, |x, y| (x + y) as f64);
        let doubled = g.map(|v| v * 2.0);
        assert_eq!(doubled.get(1, 1), 4.0);
        let coords: Vec<(usize, usize)> = g.iter().map(|(x, y, _)| (x, y)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn fill_rect_clips() {
        let mut g = Grid::new(4, 4, 0u8);
        g.fill_rect(Rect::new(2, 2, 8, 8), 1);
        assert_eq!(g.count_ones(), 4);
        g.fill_rect(Rect::new(-5, -5, 1, 1), 1);
        assert_eq!(g.count_ones(), 5);
        g.fill_rect(Rect::new(10, 10, 12, 12), 1); // fully outside: no-op
        assert_eq!(g.count_ones(), 5);
    }

    #[test]
    fn real_grid_statistics() {
        let g = Grid::from_vec(2, 2, vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(g.sum(), 2.5);
        assert_eq!(g.max(), 3.0);
        assert_eq!(g.min(), -2.0);
    }

    #[test]
    fn sq_diff_matches_hand_computation() {
        let a = Grid::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Grid::from_vec(2, 1, vec![0.0, 4.0]);
        assert_eq!(a.sq_diff(&b), 1.0 + 4.0);
    }

    #[test]
    fn threshold_and_bit_ops() {
        let g = Grid::from_vec(2, 2, vec![0.2, 0.6, 0.5, 0.4]);
        let b = g.threshold(0.5);
        assert_eq!(b.as_slice(), &[0, 1, 1, 0]);
        assert_eq!(b.count_ones(), 2);
        let c = Grid::from_vec(2, 2, vec![0u8, 1, 0, 1]);
        assert_eq!(b.xor_count(&c), 2);
        let r = b.to_real();
        assert_eq!(r.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn bounds_rect() {
        let g: Grid<u8> = Grid::new(5, 3, 0);
        let b = g.bounds();
        assert_eq!((b.x0, b.y0, b.x1, b.y1), (0, 0, 5, 3));
    }
}

//! # ilt-grid
//!
//! 2-D raster infrastructure for the multigrid-Schwarz ILT workspace:
//! grids, rectangles, Gaussian filtering, binary morphology, resampling, and
//! simple image/CSV output.
//!
//! Everything the pipeline manipulates — target layouts, continuous masks,
//! aerial images, wafer images — is a [`Grid`]. Tiles, cores, and margins
//! (Fig. 2 of the paper) are [`Rect`]s. The Stitch-Loss metric's "multiple
//! iterations of Gaussian lowpass filtering" is [`GaussianFilter`], and the
//! `Downsample(..., factor = s)` of Algorithm 1 is [`resample::downsample`].
//!
//! # Examples
//!
//! ```
//! use ilt_grid::{Grid, Rect};
//!
//! // Rasterise a rectangle into a binary layout and crop a tile from it.
//! let mut layout = Grid::new(64, 64, 0u8);
//! layout.fill_rect(Rect::new(10, 10, 30, 20), 1);
//! let tile = layout.crop(Rect::new(0, 0, 32, 32));
//! assert_eq!(tile.count_ones(), 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod filter;
mod grid;
pub mod io;
pub mod morph;
mod rect;
pub mod resample;

pub use filter::{box_blur, GaussianFilter};
pub use grid::{BitGrid, Grid, RealGrid};
pub use morph::{close, connected_components, dilate, erode, open, Component};
pub use rect::Rect;

//! Separable Gaussian low-pass filtering.
//!
//! The paper's Stitch-Loss metric (Definition 1) smooths mask contours with
//! "multiple iterations of Gaussian lowpass filtering"; the weighted
//! smoothing study of Fig. 6 also relies on a low-pass reference. Borders are
//! handled by mirror reflection, which avoids the artificial darkening a
//! zero-padded border would introduce right where stitch lines meet the clip
//! edge.

use crate::grid::RealGrid;

/// A separable Gaussian filter with a precomputed, normalised kernel.
///
/// # Examples
///
/// ```
/// use ilt_grid::{GaussianFilter, Grid};
///
/// let f = GaussianFilter::new(1.0);
/// let mut img = Grid::new(9, 9, 0.0);
/// img.set(4, 4, 1.0);
/// let out = f.apply(&img);
/// // Smoothing conserves total mass.
/// assert!((out.sum() - 1.0).abs() < 1e-12);
/// // And spreads the impulse.
/// assert!(out.get(4, 4) < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianFilter {
    sigma: f64,
    kernel: Vec<f64>,
    radius: usize,
}

impl GaussianFilter {
    /// Creates a filter with standard deviation `sigma` and radius
    /// `ceil(3 sigma)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not finite and positive.
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "sigma must be finite and positive"
        );
        let radius = (3.0 * sigma).ceil() as usize;
        let mut kernel = Vec::with_capacity(2 * radius + 1);
        for i in 0..=2 * radius {
            let d = i as f64 - radius as f64;
            kernel.push((-d * d / (2.0 * sigma * sigma)).exp());
        }
        let total: f64 = kernel.iter().sum();
        for k in &mut kernel {
            *k /= total;
        }
        GaussianFilter {
            sigma,
            kernel,
            radius,
        }
    }

    /// The standard deviation this filter was built with.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Kernel radius in pixels.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Applies the filter once (horizontal then vertical pass).
    pub fn apply(&self, img: &RealGrid) -> RealGrid {
        let horizontal = self.pass(img, true);
        self.pass(&horizontal, false)
    }

    /// Applies the filter `iterations` times, as Definition 1 requires.
    pub fn apply_iterated(&self, img: &RealGrid, iterations: usize) -> RealGrid {
        let mut out = img.clone();
        for _ in 0..iterations {
            out = self.apply(&out);
        }
        out
    }

    /// One separable pass; `horizontal` selects the axis.
    fn pass(&self, img: &RealGrid, horizontal: bool) -> RealGrid {
        let (w, h) = (img.width(), img.height());
        let r = self.radius as i64;
        RealGrid::from_fn(w, h, |x, y| {
            let mut acc = 0.0;
            for (i, &k) in self.kernel.iter().enumerate() {
                let off = i as i64 - r;
                let (sx, sy) = if horizontal {
                    (reflect(x as i64 + off, w as i64), y as i64)
                } else {
                    (x as i64, reflect(y as i64 + off, h as i64))
                };
                acc += k * img.get(sx as usize, sy as usize);
            }
            acc
        })
    }
}

/// Mirror-reflects an index into `[0, n)`.
fn reflect(i: i64, n: i64) -> i64 {
    debug_assert!(n > 0);
    let period = 2 * n;
    let mut i = i.rem_euclid(period);
    if i >= n {
        i = period - 1 - i;
    }
    i
}

/// Simple `size x size` box blur used for quick tests and coarse previews.
///
/// # Panics
///
/// Panics if `size` is zero or even.
pub fn box_blur(img: &RealGrid, size: usize) -> RealGrid {
    assert!(
        size % 2 == 1 && size > 0,
        "box size must be odd and nonzero"
    );
    let r = (size / 2) as i64;
    let (w, h) = (img.width(), img.height());
    let norm = 1.0 / (size * size) as f64;
    RealGrid::from_fn(w, h, |x, y| {
        let mut acc = 0.0;
        for dy in -r..=r {
            for dx in -r..=r {
                let sx = reflect(x as i64 + dx, w as i64);
                let sy = reflect(y as i64 + dy, h as i64);
                acc += img.get(sx as usize, sy as usize);
            }
        }
        acc * norm
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    #[test]
    #[should_panic(expected = "sigma")]
    fn rejects_bad_sigma() {
        let _ = GaussianFilter::new(0.0);
    }

    #[test]
    fn kernel_is_normalised_and_symmetric() {
        let f = GaussianFilter::new(1.7);
        let sum: f64 = f.kernel.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let n = f.kernel.len();
        for i in 0..n / 2 {
            assert!((f.kernel[i] - f.kernel[n - 1 - i]).abs() < 1e-15);
        }
        assert_eq!(f.radius(), (3.0 * 1.7f64).ceil() as usize);
        assert_eq!(f.sigma(), 1.7);
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let f = GaussianFilter::new(2.0);
        let img = Grid::new(16, 16, 0.7);
        let out = f.apply(&img);
        for (_, _, &v) in out.iter() {
            assert!((v - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_conserved_for_interior_impulse() {
        let f = GaussianFilter::new(1.0);
        let mut img = Grid::new(21, 21, 0.0);
        img.set(10, 10, 1.0);
        let out = f.apply(&img);
        assert!((out.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_reduces_maximum() {
        let f = GaussianFilter::new(1.0);
        let mut img = Grid::new(15, 15, 0.0);
        img.set(7, 7, 1.0);
        let once = f.apply(&img);
        let twice = f.apply_iterated(&img, 2);
        assert!(once.max() < 1.0);
        assert!(twice.max() < once.max());
    }

    #[test]
    fn iterated_zero_times_is_identity() {
        let f = GaussianFilter::new(1.0);
        let img = Grid::from_fn(8, 8, |x, y| (x * y) as f64);
        assert_eq!(f.apply_iterated(&img, 0), img);
    }

    #[test]
    fn smoothing_is_monotone_on_step_edge() {
        // A step edge must stay monotone after smoothing (no ringing).
        let f = GaussianFilter::new(1.5);
        let img = Grid::from_fn(32, 8, |x, _| if x < 16 { 1.0 } else { 0.0 });
        let out = f.apply(&img);
        for x in 1..32 {
            assert!(out.get(x, 4) <= out.get(x - 1, 4) + 1e-12);
        }
    }

    #[test]
    fn reflection_keeps_edges_bright() {
        // Mirror handling: an all-ones image must stay all ones at borders.
        let f = GaussianFilter::new(2.0);
        let img = Grid::new(10, 10, 1.0);
        let out = f.apply(&img);
        assert!((out.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((out.get(9, 9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reflect_index_math() {
        assert_eq!(reflect(0, 5), 0);
        assert_eq!(reflect(4, 5), 4);
        assert_eq!(reflect(5, 5), 4);
        assert_eq!(reflect(-1, 5), 0);
        assert_eq!(reflect(-2, 5), 1);
        assert_eq!(reflect(9, 5), 0);
    }

    #[test]
    fn box_blur_averages() {
        let img = Grid::from_fn(3, 3, |x, y| (y * 3 + x) as f64);
        let out = box_blur(&img, 3);
        // Center pixel is the mean of all nine values (reflection unused).
        assert!((out.get(1, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn box_blur_rejects_even_size() {
        let img = Grid::new(4, 4, 0.0);
        let _ = box_blur(&img, 2);
    }
}

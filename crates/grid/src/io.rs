//! Plain-text and binary image output for inspecting masks and wafer images.
//!
//! The experiment binaries dump PGM images (viewable everywhere) and CSV
//! tables (consumed by EXPERIMENTS.md).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::grid::{BitGrid, RealGrid};

/// Writes a real grid as an 8-bit binary PGM (P5), linearly mapping
/// `[min, max]` to `[0, 255]`.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_pgm<P: AsRef<Path>>(path: P, img: &RealGrid) -> io::Result<()> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    write_pgm_to(&mut out, img)
}

/// Writes a real grid as PGM to any writer (pass `&mut w` to keep ownership).
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_pgm_to<W: Write>(mut w: W, img: &RealGrid) -> io::Result<()> {
    let (lo, hi) = (img.min(), img.max());
    let span = if hi > lo { hi - lo } else { 1.0 };
    writeln!(w, "P5")?;
    writeln!(w, "{} {}", img.width(), img.height())?;
    writeln!(w, "255")?;
    let bytes: Vec<u8> = img
        .as_slice()
        .iter()
        .map(|&v| (((v - lo) / span) * 255.0).round().clamp(0.0, 255.0) as u8)
        .collect();
    w.write_all(&bytes)
}

/// Writes a binary grid as a black/white PGM.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_bit_pgm<P: AsRef<Path>>(path: P, img: &BitGrid) -> io::Result<()> {
    write_pgm(path, &img.to_real())
}

/// Writes rows of named columns as CSV. All rows must have the same arity as
/// the header.
///
/// # Errors
///
/// Propagates I/O errors.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn write_csv<P: AsRef<Path>>(path: P, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "{}", header.join(","))?;
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row arity mismatch");
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    #[test]
    fn pgm_header_and_payload() {
        let img = Grid::from_vec(2, 2, vec![0.0, 1.0, 0.5, 1.0]);
        let mut buf = Vec::new();
        write_pgm_to(&mut buf, &img).unwrap();
        let text = String::from_utf8_lossy(&buf[..12]);
        assert!(text.starts_with("P5\n2 2\n255\n"));
        let pixels = &buf[buf.len() - 4..];
        assert_eq!(pixels[0], 0);
        assert_eq!(pixels[1], 255);
        assert_eq!(pixels[2], 128);
        assert_eq!(pixels[3], 255);
    }

    #[test]
    fn constant_image_does_not_divide_by_zero() {
        let img = Grid::new(3, 3, 0.7);
        let mut buf = Vec::new();
        write_pgm_to(&mut buf, &img).unwrap();
        assert_eq!(buf.len(), "P5\n3 3\n255\n".len() + 9);
    }

    #[test]
    fn files_roundtrip_through_tempdir() {
        let dir = std::env::temp_dir().join("ilt_grid_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let img = Grid::from_fn(4, 4, |x, y| (x + y) as f64);
        let p = dir.join("img.pgm");
        write_pgm(&p, &img).unwrap();
        assert!(p.exists());
        let bit = img.threshold(3.0);
        let pb = dir.join("bit.pgm");
        write_bit_pgm(&pb, &bit).unwrap();
        assert!(pb.exists());
        let pc = dir.join("table.csv");
        write_csv(
            &pc,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&pc).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn csv_rejects_ragged_rows() {
        let dir = std::env::temp_dir();
        let _ = write_csv(dir.join("ragged.csv"), &["a", "b"], &[vec!["1".into()]]);
    }
}

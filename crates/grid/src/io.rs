//! Plain-text and binary image output for inspecting masks and wafer images.
//!
//! The experiment binaries dump PGM images (viewable everywhere) and CSV
//! tables (consumed by EXPERIMENTS.md).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::grid::{BitGrid, RealGrid};

/// Writes a real grid as an 8-bit binary PGM (P5), linearly mapping
/// `[min, max]` to `[0, 255]`.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_pgm<P: AsRef<Path>>(path: P, img: &RealGrid) -> io::Result<()> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    write_pgm_to(&mut out, img)
}

/// Writes a real grid as PGM to any writer (pass `&mut w` to keep ownership).
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_pgm_to<W: Write>(mut w: W, img: &RealGrid) -> io::Result<()> {
    let (lo, hi) = (img.min(), img.max());
    let span = if hi > lo { hi - lo } else { 1.0 };
    writeln!(w, "P5")?;
    writeln!(w, "{} {}", img.width(), img.height())?;
    writeln!(w, "255")?;
    let bytes: Vec<u8> = img
        .as_slice()
        .iter()
        .map(|&v| (((v - lo) / span) * 255.0).round().clamp(0.0, 255.0) as u8)
        .collect();
    w.write_all(&bytes)
}

/// Reads an 8-bit binary PGM (P5) back into a real grid with values in
/// `[0, 255]` — the inverse of [`write_pgm`] up to the linear range
/// mapping (a grid already valued in `[0, 255]` with both endpoints
/// present round-trips exactly).
///
/// # Errors
///
/// Propagates I/O errors; returns [`io::ErrorKind::InvalidData`] for a
/// malformed header, a maxval other than 1–255, or a truncated payload.
pub fn read_pgm<P: AsRef<Path>>(path: P) -> io::Result<RealGrid> {
    read_pgm_from(BufReader::new(File::open(path)?))
}

/// Reads a P5 PGM from any reader (see [`read_pgm`]).
///
/// # Errors
///
/// Propagates I/O errors and malformed-PGM parse failures.
pub fn read_pgm_from<R: Read>(mut r: R) -> io::Result<RealGrid> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    // Fault drill: simulate a payload cut short on the wire/disk; the
    // size check below must turn it into a typed error, never a panic.
    if ilt_fault::should_fire(ilt_fault::points::GRID_PGM_TRUNCATE) {
        bytes.pop();
    }
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("bad PGM: {msg}"));
    let mut pos = 0usize;
    // Reads the next whitespace-delimited header token, skipping `#`
    // comment lines, and leaves `pos` one byte past the token.
    let mut token = |bytes: &[u8]| -> io::Result<String> {
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
                continue;
            }
            break;
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad PGM: truncated header",
            ));
        }
        Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
    };
    if token(&bytes)? != "P5" {
        return Err(bad("not a P5 file"));
    }
    let parse = |t: String| t.parse::<usize>().map_err(|_| bad("non-numeric header"));
    let width = parse(token(&bytes)?)?;
    let height = parse(token(&bytes)?)?;
    let maxval = parse(token(&bytes)?)?;
    if width == 0 || height == 0 {
        return Err(bad("zero dimension"));
    }
    if maxval == 0 || maxval > 255 {
        return Err(bad("unsupported maxval"));
    }
    // Exactly one whitespace byte separates the header from the payload.
    if pos >= bytes.len() || !bytes[pos].is_ascii_whitespace() {
        return Err(bad("missing header terminator"));
    }
    pos += 1;
    let payload = &bytes[pos..];
    if payload.len() != width * height {
        return Err(bad("payload size does not match dimensions"));
    }
    let data: Vec<f64> = payload.iter().map(|&b| f64::from(b)).collect();
    Ok(RealGrid::from_vec(width, height, data))
}

/// Writes a binary grid as a black/white PGM.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_bit_pgm<P: AsRef<Path>>(path: P, img: &BitGrid) -> io::Result<()> {
    write_pgm(path, &img.to_real())
}

/// Writes rows of named columns as CSV. All rows must have the same arity as
/// the header.
///
/// # Errors
///
/// Propagates I/O errors; returns [`io::ErrorKind::InvalidInput`] when a
/// row's length differs from the header's (checked before any bytes are
/// written, so a rejected table never leaves a half-written file).
pub fn write_csv<P: AsRef<Path>>(path: P, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    for (i, row) in rows.iter().enumerate() {
        if row.len() != header.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "CSV row arity mismatch: row {i} has {} cells, header has {}",
                    row.len(),
                    header.len()
                ),
            ));
        }
    }
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "{}", header.join(","))?;
    for row in rows {
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Reads a CSV written by [`write_csv`] back into a header plus rows.
/// Cells are split on plain commas (no quoting, matching the writer).
///
/// # Errors
///
/// Propagates I/O errors; returns [`io::ErrorKind::InvalidData`] for an
/// empty file or a row whose arity differs from the header's.
pub fn read_csv<P: AsRef<Path>>(path: P) -> io::Result<(Vec<String>, Vec<Vec<String>>)> {
    read_csv_from(BufReader::new(File::open(path)?))
}

/// Reads CSV from any reader (see [`read_csv`]).
///
/// # Errors
///
/// Propagates I/O errors and malformed-CSV parse failures.
pub fn read_csv_from<R: Read>(mut r: R) -> io::Result<(Vec<String>, Vec<Vec<String>>)> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut lines = text.lines();
    let header: Vec<String> = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad CSV: empty file"))?
        .split(',')
        .map(str::to_string)
        .collect();
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let row: Vec<String> = line.split(',').map(str::to_string).collect();
        if row.len() != header.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "bad CSV: row {i} has {} cells, header has {}",
                    row.len(),
                    header.len()
                ),
            ));
        }
        rows.push(row);
    }
    Ok((header, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    #[test]
    fn pgm_header_and_payload() {
        let img = Grid::from_vec(2, 2, vec![0.0, 1.0, 0.5, 1.0]);
        let mut buf = Vec::new();
        write_pgm_to(&mut buf, &img).unwrap();
        let text = String::from_utf8_lossy(&buf[..12]);
        assert!(text.starts_with("P5\n2 2\n255\n"));
        let pixels = &buf[buf.len() - 4..];
        assert_eq!(pixels[0], 0);
        assert_eq!(pixels[1], 255);
        assert_eq!(pixels[2], 128);
        assert_eq!(pixels[3], 255);
    }

    #[test]
    fn constant_image_does_not_divide_by_zero() {
        let img = Grid::new(3, 3, 0.7);
        let mut buf = Vec::new();
        write_pgm_to(&mut buf, &img).unwrap();
        assert_eq!(buf.len(), "P5\n3 3\n255\n".len() + 9);
    }

    #[test]
    fn files_roundtrip_through_tempdir() {
        let dir = std::env::temp_dir().join("ilt_grid_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let img = Grid::from_fn(4, 4, |x, y| (x + y) as f64);
        let p = dir.join("img.pgm");
        write_pgm(&p, &img).unwrap();
        assert!(p.exists());
        let bit = img.threshold(3.0);
        let pb = dir.join("bit.pgm");
        write_bit_pgm(&pb, &bit).unwrap();
        assert!(pb.exists());
        let pc = dir.join("table.csv");
        write_csv(
            &pc,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&pc).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_rejects_ragged_rows_without_writing() {
        let dir = std::env::temp_dir().join("ilt_grid_io_ragged");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.csv");
        let err = write_csv(&path, &["a", "b"], &[vec!["1".into()]]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("arity"), "{err}");
        assert!(!path.exists(), "rejected table must not leave a file");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_round_trips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join("ilt_grid_io_csv_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.csv");
        let rows = vec![
            vec!["1".to_string(), "2".to_string()],
            vec!["3".to_string(), "4".to_string()],
        ];
        write_csv(&path, &["a", "b"], &rows).unwrap();
        let (header, back) = read_csv(&path).unwrap();
        assert_eq!(header, vec!["a", "b"]);
        assert_eq!(back, rows);

        // Corrupt the file: drop a cell from the last row.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("3,4", "3")).unwrap();
        let err = read_csv(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("row 1"), "{err}");

        // An empty file is typed, not a panic or a silent empty table.
        std::fs::write(&path, "").unwrap();
        let err = read_csv(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_pgm_payload_is_a_typed_error() {
        let img = Grid::from_fn(8, 8, |x, y| (x * 8 + y) as f64);
        let mut buf = Vec::new();
        write_pgm_to(&mut buf, &img).unwrap();
        for cut in [1, 7, buf.len() - 12] {
            let short = &buf[..buf.len() - cut];
            let err = read_pgm_from(short).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut {cut}");
        }
    }

    #[test]
    fn pgm_round_trip_is_bitwise_identical() {
        // A grid valued in [0, 255] with both endpoints present is a fixed
        // point of the write mapping, so write → read → write must produce
        // byte-identical files.
        let img = Grid::from_fn(16, 16, |x, y| ((x * 16 + y) % 256) as f64);
        let mut first = Vec::new();
        write_pgm_to(&mut first, &img).unwrap();
        let back = read_pgm_from(&first[..]).unwrap();
        assert_eq!(back, img);
        let mut second = Vec::new();
        write_pgm_to(&mut second, &back).unwrap();
        assert_eq!(first, second, "round-trip changed the bytes");
    }

    #[test]
    fn pgm_round_trip_preserves_non_square_shape() {
        // Regression: width and height must not be swapped for w != h.
        let img = Grid::from_fn(7, 3, |x, y| ((x + 10 * y) % 256) as f64);
        let mut buf = Vec::new();
        write_pgm_to(&mut buf, &img).unwrap();
        let back = read_pgm_from(&buf[..]).unwrap();
        assert_eq!((back.width(), back.height()), (7, 3));
        // The payload is row-major: pixel (6, 0) precedes pixel (0, 1).
        let lo = img.min();
        let span = img.max() - lo;
        for y in 0..3 {
            for x in 0..7 {
                let expect = (((img.get(x, y) - lo) / span) * 255.0).round();
                assert_eq!(back.get(x, y), expect, "pixel ({x}, {y})");
            }
        }
    }

    #[test]
    fn pgm_reader_skips_comments() {
        let mut bytes = b"P5\n# a comment\n2 1\n# another\n255\n".to_vec();
        bytes.extend_from_slice(&[0, 255]);
        let img = read_pgm_from(&bytes[..]).unwrap();
        assert_eq!((img.width(), img.height()), (2, 1));
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(1, 0), 255.0);
    }

    #[test]
    fn pgm_reader_rejects_malformed_input() {
        for case in [
            &b"P6\n2 2\n255\nxxxx"[..],   // wrong magic
            &b"P5\n2 2\n255\nxxx"[..],    // truncated payload
            &b"P5\n2 2\n65535\nxxxx"[..], // 16-bit maxval unsupported
            &b"P5\n2\n255\nxx"[..],       // missing height
            &b"P5\nx 2\n255\nxx"[..],     // non-numeric width
        ] {
            let err = read_pgm_from(case).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{case:?}");
        }
    }

    #[test]
    fn bit_pgm_round_trips_through_threshold() {
        let bit = Grid::from_fn(5, 4, |x, y| u8::from((x + y) % 2 == 0));
        let mut buf = Vec::new();
        write_pgm_to(&mut buf, &bit.to_real()).unwrap();
        let back = read_pgm_from(&buf[..]).unwrap().threshold(127.0);
        assert_eq!(back, bit);
    }
}

//! Axis-aligned integer rectangles used for tiles, cores, margins, and
//! layout geometry.

use std::fmt;

/// A half-open axis-aligned rectangle: `x0 <= x < x1`, `y0 <= y < y1`.
///
/// Coordinates are signed so that constructions like "tile minus margin" can
/// temporarily go negative before being clipped against a grid.
///
/// # Examples
///
/// ```
/// use ilt_grid::Rect;
///
/// let a = Rect::new(0, 0, 4, 4);
/// let b = Rect::new(2, 2, 6, 6);
/// assert_eq!(a.intersect(b), Some(Rect::new(2, 2, 4, 4)));
/// assert_eq!(a.area(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: i64,
    /// Top edge (inclusive).
    pub y0: i64,
    /// Right edge (exclusive).
    pub x1: i64,
    /// Bottom edge (exclusive).
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle from its corners.
    ///
    /// # Panics
    ///
    /// Panics if `x1 < x0` or `y1 < y0` (empty rectangles with equal edges
    /// are allowed).
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        assert!(x1 >= x0 && y1 >= y0, "rectangle edges are inverted");
        Rect { x0, y0, x1, y1 }
    }

    /// Creates a rectangle from origin and size.
    pub fn from_origin_size(x0: i64, y0: i64, width: i64, height: i64) -> Self {
        assert!(width >= 0 && height >= 0, "size must be non-negative");
        Rect::new(x0, y0, x0 + width, y0 + height)
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> i64 {
        self.x1 - self.x0
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> i64 {
        self.y1 - self.y0
    }

    /// Area in pixels.
    #[inline]
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Returns `true` if the rectangle contains no pixels.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// Returns `true` if the point `(x, y)` lies inside.
    #[inline]
    pub fn contains(&self, x: i64, y: i64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Returns `true` if `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: Rect) -> bool {
        other.x0 >= self.x0 && other.x1 <= self.x1 && other.y0 >= self.y0 && other.y1 <= self.y1
    }

    /// Intersection with another rectangle, or `None` if they do not
    /// overlap in any pixel.
    pub fn intersect(&self, other: Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1.min(other.x1);
        let y1 = self.y1.min(other.y1);
        if x0 < x1 && y0 < y1 {
            Some(Rect::new(x0, y0, x1, y1))
        } else {
            None
        }
    }

    /// Returns `true` if the rectangles share at least one pixel.
    pub fn overlaps(&self, other: Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// Smallest rectangle containing both operands.
    pub fn union_bounds(&self, other: Rect) -> Rect {
        Rect::new(
            self.x0.min(other.x0),
            self.y0.min(other.y0),
            self.x1.max(other.x1),
            self.y1.max(other.y1),
        )
    }

    /// Shrinks every edge inward by `d` (clamped so edges never cross).
    pub fn inset(&self, d: i64) -> Rect {
        let cx = (self.x0 + self.x1) / 2;
        let cy = (self.y0 + self.y1) / 2;
        Rect::new(
            (self.x0 + d).min(cx),
            (self.y0 + d).min(cy),
            (self.x1 - d).max(cx),
            (self.y1 - d).max(cy),
        )
    }

    /// Grows every edge outward by `d`.
    pub fn outset(&self, d: i64) -> Rect {
        Rect::new(self.x0 - d, self.y0 - d, self.x1 + d, self.y1 + d)
    }

    /// Translates by `(dx, dy)`.
    pub fn translate(&self, dx: i64, dy: i64) -> Rect {
        Rect::new(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)
    }

    /// Iterates over all `(x, y)` pixels inside.
    pub fn pixels(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        let (x0, x1) = (self.x0, self.x1);
        (self.y0..self.y1).flat_map(move |y| (x0..x1).map(move |x| (x, y)))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{})x[{},{})", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let r = Rect::new(1, 2, 5, 7);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 5);
        assert_eq!(r.area(), 20);
        let s = Rect::from_origin_size(1, 2, 4, 5);
        assert_eq!(r, s);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_edges_panic() {
        let _ = Rect::new(5, 0, 1, 4);
    }

    #[test]
    fn degenerate_rect_allowed() {
        let r = Rect::new(3, 3, 3, 8);
        assert!(r.is_degenerate());
        assert_eq!(r.area(), 0);
    }

    #[test]
    fn containment() {
        let r = Rect::new(0, 0, 4, 4);
        assert!(r.contains(0, 0));
        assert!(r.contains(3, 3));
        assert!(!r.contains(4, 0));
        assert!(!r.contains(-1, 2));
        assert!(r.contains_rect(Rect::new(1, 1, 3, 3)));
        assert!(r.contains_rect(r));
        assert!(!r.contains_rect(Rect::new(1, 1, 5, 3)));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 0, 4, 4);
        assert_eq!(
            a.intersect(Rect::new(2, 2, 6, 6)),
            Some(Rect::new(2, 2, 4, 4))
        );
        assert_eq!(a.intersect(Rect::new(4, 0, 8, 4)), None); // edge touch
        assert_eq!(a.intersect(Rect::new(10, 10, 12, 12)), None);
        assert!(a.overlaps(Rect::new(3, 3, 10, 10)));
        assert!(!a.overlaps(Rect::new(4, 4, 10, 10)));
    }

    #[test]
    fn union_bounds_covers_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(5, 1, 6, 7);
        let u = a.union_bounds(b);
        assert!(u.contains_rect(a) && u.contains_rect(b));
        assert_eq!(u, Rect::new(0, 0, 6, 7));
    }

    #[test]
    fn inset_outset_translate() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.inset(2), Rect::new(2, 2, 8, 8));
        assert_eq!(r.outset(1), Rect::new(-1, -1, 11, 11));
        assert_eq!(r.translate(3, -2), Rect::new(3, -2, 13, 8));
        // Inset larger than half collapses to the center without panicking.
        let tiny = r.inset(7);
        assert!(tiny.is_degenerate() || tiny.area() >= 0);
    }

    #[test]
    fn pixel_iteration_order_and_count() {
        let r = Rect::new(1, 1, 3, 3);
        let px: Vec<(i64, i64)> = r.pixels().collect();
        assert_eq!(px, vec![(1, 1), (2, 1), (1, 2), (2, 2)]);
        assert_eq!(px.len() as i64, r.area());
    }

    #[test]
    fn display() {
        assert_eq!(Rect::new(0, 1, 2, 3).to_string(), "[0,2)x[1,3)");
    }
}

//! # ilt-prof
//!
//! Continuous, in-process resource profiling for the multigrid-Schwarz
//! ILT stack. Std-only, like `ilt-par` and `ilt-fault`. Four parts:
//!
//! * [`cpu`] — a sampling CPU profiler. A timer thread walks the live
//!   open-span stacks every recording thread publishes through
//!   [`ilt_telemetry::sample_stacks`], charging each tick to the thread's
//!   span path. Exports collapsed-stack (flamegraph-ready) text and a
//!   top-N self-time table. `ILT_PROF_HZ` sets the rate.
//! * [`alloc`] — a tracking global allocator ([`TrackingAlloc`])
//!   attributing bytes allocated/freed/peak-live to the ambient
//!   trace and the current pipeline stage ([`stage_scope`], propagated
//!   by the tile executor like trace ids and deadlines). Opt-in via
//!   `ILT_PROF_ALLOC`; off, it costs one relaxed load per allocation.
//! * [`rss`] — `/proc/self/status` `VmRSS`/`VmHWM` sampling with a
//!   resettable window high-water mark for per-run peak-RSS
//!   trajectories.
//! * [`residency`] — a high-water counter of solved-tile-mask bytes a
//!   flow holds between solve and assembly, the quantity streaming
//!   assembly bounds (the `fullchip` bench gates on it).
//!
//! Results surface through `ilt-report/v2` `profile`/`memory` sections,
//! `ilt-serve`'s `/debug/profile` and `/debug/memory`, and the
//! `memprofile` bench bin.
//!
//! ## Environment
//!
//! | Variable | Meaning |
//! |---|---|
//! | `ILT_PROF_HZ` | Sampler rate in Hz; `0` or `off` disables. Binaries that profile by default (serve, `memprofile`) use [`DEFAULT_HZ`] when unset; others only sample when set. |
//! | `ILT_PROF_ALLOC` | `1`/`true`/`on`/`yes` enables allocation counting (requires the binary to install [`TrackingAlloc`]). |

#![warn(missing_docs)]
// `alloc` implements `GlobalAlloc`, which is an unsafe trait; everything
// else in the crate is safe code.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod cpu;
pub mod residency;
pub mod rss;

pub use alloc::{
    current_stage, stage_scope, AllocStats, Stage, StageAlloc, StageScope, TrackingAlloc,
    STAGE_COUNT,
};
pub use cpu::{collapsed, sample_now, sampler_hz, sampler_running, start_sampler, stop_sampler};
pub use rss::RssSample;

/// Default sampler rate for binaries that profile by default. A prime
/// rate (97 Hz) avoids lock-step aliasing with millisecond-periodic work.
pub const DEFAULT_HZ: f64 = 97.0;

/// Parses `ILT_PROF_HZ`: `None` when unset or unparseable, `Some(0.0)`
/// for an explicit `0`/`off`, `Some(hz)` otherwise.
pub fn env_hz() -> Option<f64> {
    let v = std::env::var("ILT_PROF_HZ").ok()?;
    let v = v.trim().to_ascii_lowercase();
    if v == "off" {
        return Some(0.0);
    }
    match v.parse::<f64>() {
        Ok(hz) if hz.is_finite() && hz >= 0.0 => Some(hz),
        _ => None,
    }
}

/// Whether `ILT_PROF_ALLOC` asks for allocation counting.
pub fn env_alloc() -> bool {
    std::env::var("ILT_PROF_ALLOC")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            matches!(v.as_str(), "1" | "true" | "on" | "yes")
        })
        .unwrap_or(false)
}

/// Applies the environment: enables allocation counting when
/// `ILT_PROF_ALLOC` asks for it, and starts the sampler when
/// `ILT_PROF_HZ` is set to a positive rate. `default_on` binaries
/// (serve, `memprofile`) start the sampler at [`DEFAULT_HZ`] even when
/// the variable is unset; an explicit `ILT_PROF_HZ=0`/`off` always wins.
/// Returns whether the sampler is running afterwards.
pub fn init_from_env(default_on: bool) -> bool {
    if env_alloc() {
        alloc::set_enabled(true);
    }
    match env_hz() {
        Some(hz) if hz > 0.0 => {
            cpu::start_sampler(hz);
        }
        Some(_) => {} // explicit off
        None => {
            if default_on {
                cpu::start_sampler(DEFAULT_HZ);
            }
        }
    }
    cpu::sampler_running()
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_hz_grammar() {
        // Uses set_var/remove_var only in this single-threaded-unsafe way
        // inside one test to avoid cross-test env races.
        std::env::set_var("ILT_PROF_HZ", "250");
        assert_eq!(super::env_hz(), Some(250.0));
        std::env::set_var("ILT_PROF_HZ", "off");
        assert_eq!(super::env_hz(), Some(0.0));
        std::env::set_var("ILT_PROF_HZ", "0");
        assert_eq!(super::env_hz(), Some(0.0));
        std::env::set_var("ILT_PROF_HZ", "not-a-rate");
        assert_eq!(super::env_hz(), None);
        std::env::remove_var("ILT_PROF_HZ");
        assert_eq!(super::env_hz(), None);
    }

    #[test]
    fn env_alloc_grammar() {
        std::env::remove_var("ILT_PROF_ALLOC");
        assert!(!super::env_alloc());
        std::env::set_var("ILT_PROF_ALLOC", "yes");
        assert!(super::env_alloc());
        std::env::set_var("ILT_PROF_ALLOC", "0");
        assert!(!super::env_alloc());
        std::env::remove_var("ILT_PROF_ALLOC");
    }
}

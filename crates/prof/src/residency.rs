//! High-water tracking of solved-tile masks a flow holds between solve
//! and assembly.
//!
//! The allocator's whole-process peak ([`crate::alloc`]) cannot see the
//! streaming-assembly win at bench scales: per-tile solver scratch
//! (extended-tile FFT buffers, gradient grids) dominates the process
//! high-water mark and is identical whether tiles are folded band by
//! band or held until a batch assemble. This module tracks the one
//! quantity streaming actually bounds — the bytes of *solved tile masks
//! resident at once* — at the point where flows hold them, so the
//! `fullchip` gate measures real code behaviour: a regression that
//! re-collects every tile before folding trips it regardless of what
//! the allocator peak does.
//!
//! Flows call [`acquire`] when a batch of solved masks materialises and
//! [`release`] when it is folded into the assembler and dropped. The
//! counters are process-global like the rest of `ilt-prof`; benches
//! [`reset`] around a measured run.

use std::sync::atomic::{AtomicI64, Ordering};

static RESIDENT_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

/// Zeroes the resident count and the high-water mark. Call before a
/// measured run; flows always acquire/release in balanced pairs, so the
/// resident count is already zero between runs.
pub fn reset() {
    RESIDENT_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
}

/// Records `bytes` of solved tile masks becoming resident and folds the
/// new level into the high-water mark.
pub fn acquire(bytes: usize) {
    let now = RESIDENT_BYTES.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
}

/// Records `bytes` of solved tile masks being folded and dropped.
pub fn release(bytes: usize) {
    RESIDENT_BYTES.fetch_sub(bytes as i64, Ordering::Relaxed);
}

/// Bytes of solved tile masks resident right now.
pub fn resident_bytes() -> i64 {
    RESIDENT_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of resident solved-tile-mask bytes since [`reset`].
pub fn peak_bytes() -> i64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_the_high_water_mark() {
        reset();
        assert_eq!(peak_bytes(), 0);
        acquire(100);
        acquire(50);
        release(100);
        acquire(20);
        assert_eq!(resident_bytes(), 70);
        assert_eq!(peak_bytes(), 150, "peak was the moment both were live");
        release(70);
        assert_eq!(resident_bytes(), 0);
        assert_eq!(peak_bytes(), 150, "release never lowers the peak");
        reset();
        assert_eq!(peak_bytes(), 0);
    }
}

//! A tracking global allocator: bytes allocated/freed/live, attributed to
//! the ambient trace and the current pipeline stage.
//!
//! [`TrackingAlloc`] wraps [`std::alloc::System`] and is meant to be
//! installed as the binary's `#[global_allocator]`. Counting is **opt-in**
//! (`ILT_PROF_ALLOC`, see [`crate::init_from_env`]): when disabled, every
//! hook is a single relaxed atomic load on top of the system allocator, so
//! the wrapper is safe to leave installed in production binaries.
//!
//! Attribution has two axes:
//!
//! * **Stage** — a thread-local tag ([`stage_scope`]) naming the pipeline
//!   phase the thread is working in (`kernel_build`, `coarse`, `fine`,
//!   `refine`, `assembly`, `inspect`). The tile executor propagates the
//!   submitting thread's tag to its workers the same way it propagates
//!   the trace id and deadline. Bytes allocated with no tag in scope land
//!   in `untagged`.
//! * **Trace** — the ambient [`ilt_telemetry`] trace id, read through the
//!   non-panicking [`ilt_telemetry::current_trace_raw`], accumulated in a
//!   fixed lock-free table so `/debug/memory` can answer "which job
//!   allocated the most".
//!
//! Caveat (documented, deliberate): *frees* are counted globally but not
//! attributed per stage — a buffer allocated in `coarse` is routinely
//! freed in `assembly`, so per-stage net-live numbers would mislead. Per
//! stage we report bytes and call counts *allocated*; live/peak bytes are
//! process-wide.
//!
//! Every hook is allocation-free and non-panicking: counting uses only
//! relaxed atomics and `try_with` thread-local reads, so it is safe from
//! any allocation context, including TLS teardown.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Number of attribution stages (including `untagged`).
pub const STAGE_COUNT: usize = 7;

/// Pipeline stage an allocation is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// No stage tag in scope.
    Untagged = 0,
    /// SOCS kernel-bank or inspection-system construction.
    KernelBuild = 1,
    /// Multigrid coarse-level stages.
    Coarse = 2,
    /// Fine additive-Schwarz stages.
    Fine = 3,
    /// Multi-color multiplicative-Schwarz refinement.
    Refine = 4,
    /// Sequential tile assembly.
    Assembly = 5,
    /// Full-clip mask inspection.
    Inspect = 6,
}

impl Stage {
    /// All stages, in counter-index order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Untagged,
        Stage::KernelBuild,
        Stage::Coarse,
        Stage::Fine,
        Stage::Refine,
        Stage::Assembly,
        Stage::Inspect,
    ];

    /// Stable snake_case name, used in reports and debug endpoints.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Untagged => "untagged",
            Stage::KernelBuild => "kernel_build",
            Stage::Coarse => "coarse",
            Stage::Fine => "fine",
            Stage::Refine => "refine",
            Stage::Assembly => "assembly",
            Stage::Inspect => "inspect",
        }
    }

    /// Maps a flow stage label (`"coarse s=4"`, `"fine stage 1"`,
    /// `"refine color 0"`) to its attribution stage.
    pub fn from_label(label: &str) -> Stage {
        if label.starts_with("coarse") {
            Stage::Coarse
        } else if label.starts_with("fine") {
            Stage::Fine
        } else if label.starts_with("refine") {
            Stage::Refine
        } else {
            Stage::Untagged
        }
    }

    fn from_index(idx: u8) -> Stage {
        Stage::ALL
            .get(idx as usize)
            .copied()
            .unwrap_or(Stage::Untagged)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static FREE_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE: AtomicI64 = AtomicI64::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);
static STAGE_BYTES: [AtomicU64; STAGE_COUNT] = [ZERO_U64; STAGE_COUNT];
static STAGE_CALLS: [AtomicU64; STAGE_COUNT] = [ZERO_U64; STAGE_COUNT];

/// Fixed-size per-trace accumulation table (open addressing, linear
/// probing, CAS-claimed slots). Traces past capacity are dropped and
/// counted, never blocked on.
const TRACE_SLOTS: usize = 256;

struct TraceSlot {
    trace: AtomicU64,
    bytes: AtomicU64,
    calls: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: TraceSlot = TraceSlot {
    trace: AtomicU64::new(0),
    bytes: AtomicU64::new(0),
    calls: AtomicU64::new(0),
};
static TRACE_TABLE: [TraceSlot; TRACE_SLOTS] = [EMPTY_SLOT; TRACE_SLOTS];
static TRACE_DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static STAGE: Cell<u8> = const { Cell::new(0) };
}

/// Enables or disables counting. Prefer `ILT_PROF_ALLOC` via
/// [`crate::init_from_env`] in binaries; this entry point exists for tests
/// and measurement harnesses.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation counting is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The calling thread's current attribution stage.
pub fn current_stage() -> Stage {
    Stage::from_index(STAGE.try_with(Cell::get).unwrap_or(0))
}

/// Installs `stage` as the calling thread's attribution stage until the
/// returned guard drops. Scopes nest; the innermost wins. The tile
/// executor re-applies the submitting thread's stage on its workers, like
/// trace ids and deadlines.
#[must_use = "the stage tag is restored when the scope guard drops"]
pub fn stage_scope(stage: Stage) -> StageScope {
    let previous = STAGE
        .try_with(|cell| cell.replace(stage as u8))
        .unwrap_or(0);
    StageScope {
        previous,
        _not_send: PhantomData,
    }
}

/// Guard restoring the thread's previous attribution stage (see
/// [`stage_scope`]).
#[derive(Debug)]
pub struct StageScope {
    previous: u8,
    /// Must drop on the installing thread (thread-local slot).
    _not_send: PhantomData<*const ()>,
}

impl Drop for StageScope {
    fn drop(&mut self) {
        let _ = STAGE.try_with(|cell| cell.set(self.previous));
    }
}

#[inline]
fn note_alloc(size: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let size = size as u64;
    ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK_LIVE.fetch_max(live, Ordering::Relaxed);
    let stage = STAGE.try_with(Cell::get).unwrap_or(0) as usize % STAGE_COUNT;
    STAGE_BYTES[stage].fetch_add(size, Ordering::Relaxed);
    STAGE_CALLS[stage].fetch_add(1, Ordering::Relaxed);
    let trace = ilt_telemetry::current_trace_raw();
    if trace != 0 {
        note_trace(trace, size);
    }
}

#[inline]
fn note_free(size: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    FREE_CALLS.fetch_add(1, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
}

fn note_trace(trace: u64, size: u64) {
    let start = (trace as usize).wrapping_mul(0x9e37_79b9_7f4a_7c15_u64 as usize) % TRACE_SLOTS;
    for probe in 0..TRACE_SLOTS {
        let slot = &TRACE_TABLE[(start + probe) % TRACE_SLOTS];
        let owner = slot.trace.load(Ordering::Relaxed);
        if owner == trace {
            slot.bytes.fetch_add(size, Ordering::Relaxed);
            slot.calls.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if owner == 0 {
            match slot
                .trace
                .compare_exchange(0, trace, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    slot.bytes.fetch_add(size, Ordering::Relaxed);
                    slot.calls.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(owner) if owner == trace => {
                    slot.bytes.fetch_add(size, Ordering::Relaxed);
                    slot.calls.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(_) => continue,
            }
        }
    }
    TRACE_DROPPED.fetch_add(1, Ordering::Relaxed);
}

/// Per-stage allocation totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageAlloc {
    /// The stage.
    pub stage: Stage,
    /// Bytes allocated while the stage tag was in scope.
    pub bytes: u64,
    /// Allocation calls while the stage tag was in scope.
    pub calls: u64,
}

/// A snapshot of the tracking allocator's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocStats {
    /// Whether counting was on when the snapshot was taken.
    pub enabled: bool,
    /// Total bytes allocated since counting started.
    pub allocated_bytes: u64,
    /// Total allocation calls (alloc, alloc_zeroed, and the allocating
    /// half of realloc).
    pub allocation_calls: u64,
    /// Total bytes freed.
    pub freed_bytes: u64,
    /// Total free calls.
    pub free_calls: u64,
    /// Bytes currently live (allocated minus freed). Signed: frees of
    /// blocks allocated before counting started can drive it negative.
    pub live_bytes: i64,
    /// High-water mark of [`AllocStats::live_bytes`] since the last
    /// [`reset_peak`].
    pub peak_live_bytes: i64,
    /// Per-stage allocated bytes/calls, in [`Stage::ALL`] order.
    pub stages: [StageAlloc; STAGE_COUNT],
}

/// Takes a snapshot of all counters. Counters are cumulative; measurement
/// windows are computed by differencing two snapshots.
pub fn stats() -> AllocStats {
    let mut stages = [StageAlloc {
        stage: Stage::Untagged,
        bytes: 0,
        calls: 0,
    }; STAGE_COUNT];
    for (i, stage) in Stage::ALL.iter().enumerate() {
        stages[i] = StageAlloc {
            stage: *stage,
            bytes: STAGE_BYTES[i].load(Ordering::Relaxed),
            calls: STAGE_CALLS[i].load(Ordering::Relaxed),
        };
    }
    AllocStats {
        enabled: enabled(),
        allocated_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        allocation_calls: ALLOC_CALLS.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        free_calls: FREE_CALLS.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE.load(Ordering::Relaxed),
        stages,
    }
}

/// Re-arms the live-bytes high-water mark to the current live level, so a
/// measurement window sees only its own peak.
pub fn reset_peak() {
    PEAK_LIVE.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Bytes and allocation calls attributed to `trace` (zeroes for unknown
/// traces).
pub fn trace_bytes(trace: u64) -> (u64, u64) {
    if trace == 0 {
        return (0, 0);
    }
    for slot in &TRACE_TABLE {
        if slot.trace.load(Ordering::Relaxed) == trace {
            return (
                slot.bytes.load(Ordering::Relaxed),
                slot.calls.load(Ordering::Relaxed),
            );
        }
    }
    (0, 0)
}

/// The `n` traces with the most attributed bytes, as
/// `(trace, bytes, calls)`, descending by bytes.
pub fn trace_top(n: usize) -> Vec<(u64, u64, u64)> {
    let mut entries: Vec<(u64, u64, u64)> = TRACE_TABLE
        .iter()
        .filter_map(|slot| {
            let trace = slot.trace.load(Ordering::Relaxed);
            if trace == 0 {
                None
            } else {
                Some((
                    trace,
                    slot.bytes.load(Ordering::Relaxed),
                    slot.calls.load(Ordering::Relaxed),
                ))
            }
        })
        .collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.truncate(n);
    entries
}

/// Allocations dropped from per-trace attribution because the trace table
/// was full.
pub fn trace_attribution_dropped() -> u64 {
    TRACE_DROPPED.load(Ordering::Relaxed)
}

/// The tracking allocator. Install as the binary's global allocator:
///
/// ```ignore
/// #[global_allocator]
/// static GLOBAL: ilt_prof::TrackingAlloc = ilt_prof::TrackingAlloc::new();
/// ```
///
/// Counting stays off (one relaxed load per hook) until
/// `ILT_PROF_ALLOC=1` ([`crate::init_from_env`]) or [`set_enabled`].
#[derive(Debug, Default)]
pub struct TrackingAlloc;

impl TrackingAlloc {
    /// A new tracking allocator (stateless; all counters are global).
    pub const fn new() -> Self {
        TrackingAlloc
    }
}

// SAFETY: every method delegates verbatim to `System` and only adds
// allocation-free, non-panicking relaxed-atomic bookkeeping.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same contract as ours; delegated verbatim.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same contract as ours; delegated verbatim.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as ours; delegated verbatim.
        unsafe { System.dealloc(ptr, layout) };
        note_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: same contract as ours; delegated verbatim.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            note_free(layout.size());
            note_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle [`set_enabled`] and assert exact
    /// global counter deltas.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn stage_scopes_nest_and_restore() {
        assert_eq!(current_stage(), Stage::Untagged);
        {
            let _outer = stage_scope(Stage::Coarse);
            assert_eq!(current_stage(), Stage::Coarse);
            {
                let _inner = stage_scope(Stage::Assembly);
                assert_eq!(current_stage(), Stage::Assembly);
            }
            assert_eq!(current_stage(), Stage::Coarse);
        }
        assert_eq!(current_stage(), Stage::Untagged);
    }

    #[test]
    fn stage_tags_are_thread_local() {
        let _scope = stage_scope(Stage::Fine);
        std::thread::spawn(|| {
            assert_eq!(current_stage(), Stage::Untagged);
        })
        .join()
        .unwrap();
        assert_eq!(current_stage(), Stage::Fine);
    }

    #[test]
    fn label_mapping_covers_flow_stages() {
        assert_eq!(Stage::from_label("coarse s=4"), Stage::Coarse);
        assert_eq!(Stage::from_label("fine stage 1"), Stage::Fine);
        assert_eq!(Stage::from_label("refine color 2"), Stage::Refine);
        assert_eq!(Stage::from_label("anything else"), Stage::Untagged);
    }

    #[test]
    fn manual_hook_calls_count_bytes_and_stages() {
        // Drive the counting hooks directly (the test binary's global
        // allocator is the system one) and check attribution.
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let before = stats();
        {
            let _tag = stage_scope(Stage::Refine);
            note_alloc(1024);
            note_alloc(512);
            note_free(512);
        }
        let after = stats();
        set_enabled(false);
        assert_eq!(after.allocated_bytes - before.allocated_bytes, 1536);
        assert_eq!(after.allocation_calls - before.allocation_calls, 2);
        assert_eq!(after.freed_bytes - before.freed_bytes, 512);
        assert_eq!(after.live_bytes - before.live_bytes, 1024);
        let idx = Stage::Refine as usize;
        assert_eq!(after.stages[idx].bytes - before.stages[idx].bytes, 1536);
        assert_eq!(after.stages[idx].calls - before.stages[idx].calls, 2);
        assert!(after.peak_live_bytes >= before.live_bytes + 1536);
    }

    #[test]
    fn trace_attribution_accumulates_per_trace() {
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let (id, _scope) = ilt_telemetry::new_trace_scope();
        let before = trace_bytes(id.0);
        note_alloc(2048);
        note_alloc(64);
        let after = trace_bytes(id.0);
        set_enabled(false);
        assert_eq!(after.0 - before.0, 2112);
        assert_eq!(after.1 - before.1, 2);
        let top = trace_top(TRACE_SLOTS);
        assert!(top.iter().any(|(t, _, _)| *t == id.0));
    }
}

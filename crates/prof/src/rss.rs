//! Process resident-set-size sampling from `/proc/self/status`.
//!
//! Two numbers per read: `VmRSS` (current resident bytes) and `VmHWM`
//! (the kernel's monotonic process-lifetime high-water mark). For
//! per-window trajectories (one peak per tile-grid size in `memprofile`)
//! the kernel HWM is useless after the first window, so this module also
//! keeps a resettable *window* high-water mark fed by
//! [`note_window_sample`] — which the CPU sampler calls on every tick,
//! and harnesses may call directly.
//!
//! On non-Linux targets [`read`] returns `None` and the window peak
//! stays zero; everything downstream treats RSS as optional.

use std::sync::atomic::{AtomicU64, Ordering};

/// One resident-set reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RssSample {
    /// Current resident set (`VmRSS`), bytes.
    pub current_bytes: u64,
    /// Kernel lifetime high-water mark (`VmHWM`), bytes.
    pub peak_bytes: u64,
}

static WINDOW_PEAK: AtomicU64 = AtomicU64::new(0);

/// Reads the current process RSS. Returns `None` where `/proc` is
/// unavailable (non-Linux) or unparseable.
pub fn read() -> Option<RssSample> {
    read_impl()
}

#[cfg(target_os = "linux")]
fn read_impl() -> Option<RssSample> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status(&status)
}

#[cfg(not(target_os = "linux"))]
fn read_impl() -> Option<RssSample> {
    None
}

/// Parses `VmRSS`/`VmHWM` lines (`VmRSS:     1234 kB`) out of a
/// `/proc/self/status` body.
fn parse_status(status: &str) -> Option<RssSample> {
    let mut current = None;
    let mut peak = None;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            current = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            peak = parse_kb(rest);
        }
    }
    Some(RssSample {
        current_bytes: current?,
        peak_bytes: peak?,
    })
}

fn parse_kb(rest: &str) -> Option<u64> {
    let rest = rest.trim();
    let number = rest.strip_suffix("kB").unwrap_or(rest).trim();
    number.parse::<u64>().ok().map(|kb| kb * 1024)
}

/// Samples RSS once and folds it into the window high-water mark.
/// Returns the reading.
pub fn note_window_sample() -> Option<RssSample> {
    let sample = read()?;
    WINDOW_PEAK.fetch_max(sample.current_bytes, Ordering::Relaxed);
    Some(sample)
}

/// The highest `VmRSS` seen by [`note_window_sample`] since the last
/// [`reset_window`] (`0` if never sampled).
pub fn window_peak() -> u64 {
    WINDOW_PEAK.load(Ordering::Relaxed)
}

/// Re-arms the window high-water mark to the current RSS (or zero where
/// RSS is unavailable), then returns the new mark.
pub fn reset_window() -> u64 {
    let now = read().map_or(0, |s| s.current_bytes);
    WINDOW_PEAK.store(now, Ordering::Relaxed);
    now
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_fields() {
        let body = "Name:\tilt\nVmHWM:\t  204800 kB\nVmRSS:\t  102400 kB\nThreads:\t4\n";
        let sample = parse_status(body).unwrap();
        assert_eq!(sample.current_bytes, 102400 * 1024);
        assert_eq!(sample.peak_bytes, 204800 * 1024);
        assert!(parse_status("Name:\tilt\n").is_none());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_read_reports_nonzero_rss() {
        let sample = read().expect("/proc/self/status readable on linux");
        assert!(sample.current_bytes > 0);
        assert!(sample.peak_bytes >= sample.current_bytes);
        let peak = note_window_sample().unwrap();
        assert!(window_peak() >= peak.current_bytes);
        let rearmed = reset_window();
        // `>=`, not `==`: a concurrently running sampler (other tests)
        // may fold in a fresh reading right after the re-arm.
        assert!(window_peak() >= rearmed);
    }
}

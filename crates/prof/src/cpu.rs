//! The sampling CPU profiler: a timer thread over live span stacks.
//!
//! Every tick (at `ILT_PROF_HZ`, default [`crate::DEFAULT_HZ`]) the
//! sampler walks [`ilt_telemetry::sample_stacks`] — the open-span stack
//! of every live recording thread — and charges one sample to each
//! thread's span path. Paths accumulate into a collapsed-stack profile:
//! the standard flamegraph input format, one line per distinct path,
//! `frame;frame;frame count`. Frames are `name` or `name:detail`
//! (`stage:coarse_s=4`), with spaces and semicolons sanitized so the
//! output stays line-oriented.
//!
//! This profiles *span-attributed wall time*, not true CPU time: a thread
//! blocked inside an open span still accrues samples. For this workspace
//! that is the useful number — span paths are exactly the flow → stage →
//! tile → solve decomposition the latency budget uses, and worker threads
//! sit in spans only while working. Threads with no open span (idle serve
//! workers, the listener) are not charged.
//!
//! The sampler also feeds the RSS window high-water mark
//! ([`crate::rss::window_peak`]) on every tick, so any run with the
//! sampler on gets a peak-RSS trajectory for free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::rss;

#[derive(Default)]
struct Profile {
    /// Collapsed path -> sample count.
    paths: BTreeMap<String, u64>,
    /// Total samples charged (one per thread with an open span, per tick).
    samples: u64,
    /// Sampler wakeups.
    ticks: u64,
}

static PROFILE: Mutex<Option<Profile>> = Mutex::new(None);
static RUNNING: AtomicBool = AtomicBool::new(false);
/// Sampling interval in microseconds (for [`sampler_hz`] reporting).
static INTERVAL_US: AtomicU64 = AtomicU64::new(0);
static HANDLE: Mutex<Option<std::thread::JoinHandle<()>>> = Mutex::new(None);

fn with_profile<R>(f: impl FnOnce(&mut Profile) -> R) -> R {
    let mut guard = PROFILE.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Profile::default))
}

/// Sanitizes one frame label for the collapsed format: `;` separates
/// frames, space separates path from count, so neither may appear inside
/// a frame.
fn frame_label(frame: &ilt_telemetry::LiveFrame) -> String {
    let mut label = match &frame.detail {
        Some(detail) => format!("{}:{}", frame.name, detail),
        None => frame.name.to_string(),
    };
    label = label.replace(' ', "_").replace(';', ",");
    label
}

/// Takes one sample synchronously: charges every live span stack and the
/// RSS window. The sampler thread calls this on every tick; tests and
/// harnesses may call it directly for deterministic profiles.
pub fn sample_now() {
    let stacks = ilt_telemetry::sample_stacks();
    rss::note_window_sample();
    with_profile(|p| {
        p.ticks += 1;
        for (_thread, frames) in &stacks {
            let path = frames.iter().map(frame_label).collect::<Vec<_>>().join(";");
            *p.paths.entry(path).or_insert(0) += 1;
            p.samples += 1;
        }
    });
}

/// Starts the sampler thread at `hz` samples per second. Returns `false`
/// (and does nothing) if `hz` is not positive-finite or a sampler is
/// already running.
pub fn start_sampler(hz: f64) -> bool {
    if !(hz.is_finite() && hz > 0.0) {
        return false;
    }
    if RUNNING.swap(true, Ordering::SeqCst) {
        return false;
    }
    let interval = Duration::from_secs_f64((1.0 / hz).clamp(1e-4, 10.0));
    INTERVAL_US.store(interval.as_micros() as u64, Ordering::Relaxed);
    let handle = std::thread::Builder::new()
        .name("ilt-prof-sampler".to_string())
        .spawn(move || {
            while RUNNING.load(Ordering::Relaxed) {
                sample_now();
                std::thread::sleep(interval);
            }
        });
    match handle {
        Ok(h) => {
            *HANDLE.lock().unwrap_or_else(|e| e.into_inner()) = Some(h);
            true
        }
        Err(_) => {
            RUNNING.store(false, Ordering::SeqCst);
            false
        }
    }
}

/// Stops the sampler thread (joining it) if one is running.
pub fn stop_sampler() {
    RUNNING.store(false, Ordering::SeqCst);
    let handle = HANDLE.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(h) = handle {
        let _ = h.join();
    }
}

/// Whether a sampler thread is currently running.
pub fn sampler_running() -> bool {
    RUNNING.load(Ordering::Relaxed)
}

/// The running sampler's rate in Hz (`0.0` when no sampler has started).
pub fn sampler_hz() -> f64 {
    let us = INTERVAL_US.load(Ordering::Relaxed);
    if us == 0 {
        0.0
    } else {
        1e6 / us as f64
    }
}

/// Discards all accumulated samples (the sampler, if running, keeps
/// going). Measurement windows reset before and export after.
pub fn reset_profile() {
    with_profile(|p| *p = Profile::default());
}

/// `(samples charged, sampler ticks)` so far.
pub fn sample_counts() -> (u64, u64) {
    with_profile(|p| (p.samples, p.ticks))
}

/// The accumulated profile in collapsed-stack (flamegraph) format: one
/// `path count` line per distinct span path, sorted by path.
pub fn collapsed() -> String {
    with_profile(|p| {
        let mut out = String::new();
        for (path, count) in &p.paths {
            out.push_str(path);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    })
}

/// The `n` leaf frames with the most self-time samples, descending, as
/// `(leaf frame, samples)`. A path's samples are the leaf's *self* time:
/// ticks where that frame was innermost.
pub fn top_self(n: usize) -> Vec<(String, u64)> {
    let mut by_leaf: BTreeMap<String, u64> = BTreeMap::new();
    with_profile(|p| {
        for (path, count) in &p.paths {
            let leaf = path.rsplit(';').next().unwrap_or(path).to_string();
            *by_leaf.entry(leaf).or_insert(0) += count;
        }
    });
    let mut entries: Vec<(String, u64)> = by_leaf.into_iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.truncate(n);
    entries
}

/// Per-stage sample counts: paths are bucketed by their outermost `stage`
/// frame's attribution stage (see [`crate::Stage::from_label`]); paths
/// with no stage frame land in `untagged`.
pub fn samples_per_stage() -> BTreeMap<&'static str, u64> {
    let mut out = BTreeMap::new();
    with_profile(|p| {
        for (path, count) in &p.paths {
            let stage = path
                .split(';')
                .find_map(|frame| {
                    frame
                        .strip_prefix("stage:")
                        .map(|label| crate::Stage::from_label(&label.replace('_', " ")).name())
                })
                .unwrap_or("untagged");
            *out.entry(stage).or_insert(0) += count;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that reset the shared profile.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn manual_samples_accumulate_collapsed_paths() {
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_profile();
        {
            let mut flow = ilt_telemetry::span(ilt_telemetry::names::FLOW);
            flow.add_field("name", "profile test");
            let mut stage = ilt_telemetry::span(ilt_telemetry::names::STAGE);
            stage.add_field("label", "coarse s=2");
            sample_now();
            sample_now();
        }
        let text = collapsed();
        let line = text
            .lines()
            .find(|l| l.contains("flow:profile_test"))
            .expect("own path sampled");
        assert!(
            line.starts_with("flow:profile_test;stage:coarse_s=2 "),
            "unexpected collapsed line: {line}"
        );
        let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count >= 2);
        let (samples, ticks) = sample_counts();
        assert!(samples >= 2);
        assert!(ticks >= 2);
        let top = top_self(10);
        assert!(top.iter().any(|(leaf, _)| leaf == "stage:coarse_s=2"));
        let per_stage = samples_per_stage();
        assert!(*per_stage.get("coarse").unwrap_or(&0) >= 2);
        reset_profile();
    }

    #[test]
    fn sampler_thread_starts_and_stops() {
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(start_sampler(200.0));
        assert!(sampler_running());
        assert!(!start_sampler(200.0), "second start must be refused");
        assert!((sampler_hz() - 200.0).abs() < 1.0);
        let _span = ilt_telemetry::span(ilt_telemetry::names::SOLVE);
        std::thread::sleep(Duration::from_millis(50));
        stop_sampler();
        assert!(!sampler_running());
        let (samples, ticks) = sample_counts();
        assert!(ticks > 0, "sampler must have ticked");
        assert!(samples > 0, "open span must have been sampled");
        reset_profile();
    }

    #[test]
    fn rejects_bad_rates() {
        assert!(!start_sampler(0.0));
        assert!(!start_sampler(-5.0));
        assert!(!start_sampler(f64::NAN));
    }
}

//! Mask rule checking (MRC) for optimised masks.
//!
//! The paper's Section 2.3 motivates the stitch problem with
//! manufacturability: "discontinuities can violate the manufacturability
//! rule check (MRC)". This module measures exactly that — minimum feature
//! width, minimum spacing, and minimum area of the *mask* shapes (not the
//! printed wafer), so flows can be compared on how manufacturable their
//! masks are, and where the violations sit relative to stitch lines.

use ilt_grid::{connected_components, dilate, erode, BitGrid, Rect};
use ilt_tile::{Orientation, StitchLine};

/// Mask manufacturing rules, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrcRules {
    /// Minimum drawn width of any mask feature.
    pub min_width: usize,
    /// Minimum space between distinct mask features.
    pub min_space: usize,
    /// Minimum feature area.
    pub min_area: usize,
}

impl MrcRules {
    /// Rules matched to the default benchmark scale (16-pixel main
    /// features): SRAFs down to 3 px wide are legal, slivers below are not.
    pub fn m1_default() -> Self {
        MrcRules {
            min_width: 3,
            min_space: 3,
            min_area: 12,
        }
    }
}

impl Default for MrcRules {
    fn default() -> Self {
        MrcRules::m1_default()
    }
}

/// One MRC violation with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrcViolation {
    /// Which rule was violated.
    pub kind: MrcKind,
    /// Bounding box of the offending region.
    pub bbox: Rect,
    /// Number of offending pixels (width/space) or the feature area (area).
    pub extent: usize,
}

/// The rule classes of [`MrcRules`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MrcKind {
    /// A feature thinner than the minimum width.
    Width,
    /// Two features closer than the minimum space.
    Space,
    /// A feature smaller than the minimum area.
    Area,
}

/// Result of checking a mask.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MrcReport {
    /// Every violation found.
    pub violations: Vec<MrcViolation>,
}

impl MrcReport {
    /// Total number of violations.
    pub fn count(&self) -> usize {
        self.violations.len()
    }

    /// Returns `true` if the mask is manufacturable under the rules.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations whose bounding box comes within `distance` pixels of any
    /// of the given stitch lines — the paper's hypothesis is that
    /// stitching concentrates violations there.
    pub fn near_lines(&self, lines: &[StitchLine], distance: usize) -> Vec<&MrcViolation> {
        self.violations
            .iter()
            .filter(|v| {
                lines.iter().any(|line| {
                    let (lo, hi) = match line.orientation {
                        Orientation::Vertical => (v.bbox.x0, v.bbox.x1),
                        Orientation::Horizontal => (v.bbox.y0, v.bbox.y1),
                    };
                    let p = line.position as i64;
                    p + distance as i64 >= lo && p - (distance as i64) < hi
                })
            })
            .collect()
    }
}

/// Checks a binary mask against the rules.
pub fn check_mask(mask: &BitGrid, rules: &MrcRules) -> MrcReport {
    let mut violations = Vec::new();

    // Width: pixels removed by an opening that preserves min_width features.
    let r = rules.min_width.saturating_sub(1) / 2;
    if r > 0 {
        let opened = dilate(&erode(mask, r), r);
        let slivers: BitGrid = mask.map(|&v| v).into_sliver(&opened);
        let (_, comps) = connected_components(&slivers);
        for c in comps {
            violations.push(MrcViolation {
                kind: MrcKind::Width,
                bbox: c.bbox,
                extent: c.area,
            });
        }
    }

    // Space: background gaps narrower than min_space between two features.
    // Close the mask with a radius that bridges illegal gaps; newly-filled
    // background pixels mark the violating gap regions.
    let close_r = rules.min_space / 2;
    if close_r > 0 {
        let closed = erode(&dilate(mask, close_r), close_r);
        let gaps: BitGrid = closed.map(|&v| v).into_sliver(mask);
        let (_, comps) = connected_components(&gaps);
        for c in comps {
            // Filter out closing artifacts at concave corners of a single
            // feature: a real spacing violation has some extent.
            if c.area >= 2 {
                violations.push(MrcViolation {
                    kind: MrcKind::Space,
                    bbox: c.bbox,
                    extent: c.area,
                });
            }
        }
    }

    // Area.
    let (_, comps) = connected_components(mask);
    for c in comps {
        if c.area < rules.min_area {
            violations.push(MrcViolation {
                kind: MrcKind::Area,
                bbox: c.bbox,
                extent: c.area,
            });
        }
    }

    MrcReport { violations }
}

/// Helper trait: pixels set in `self` but not in `other`.
trait Sliver {
    fn into_sliver(self, other: &BitGrid) -> BitGrid;
}

impl Sliver for BitGrid {
    fn into_sliver(self, other: &BitGrid) -> BitGrid {
        let (w, h) = (self.width(), self.height());
        BitGrid::from_fn(w, h, |x, y| {
            u8::from(self.get(x, y) != 0 && other.get(x, y) == 0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Grid;

    fn rules() -> MrcRules {
        MrcRules {
            min_width: 3,
            min_space: 3,
            min_area: 12,
        }
    }

    #[test]
    fn clean_mask_passes() {
        let mut mask = Grid::new(64, 64, 0u8);
        mask.fill_rect(Rect::new(8, 8, 24, 24), 1);
        mask.fill_rect(Rect::new(32, 8, 48, 24), 1); // 8 px away
        let report = check_mask(&mask, &rules());
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn thin_sliver_is_width_violation() {
        let mut mask = Grid::new(64, 64, 0u8);
        mask.fill_rect(Rect::new(8, 8, 40, 9), 1); // 1 px tall
        let report = check_mask(&mask, &rules());
        assert!(report.violations.iter().any(|v| v.kind == MrcKind::Width));
    }

    #[test]
    fn narrow_gap_is_space_violation() {
        let mut mask = Grid::new(64, 64, 0u8);
        mask.fill_rect(Rect::new(8, 8, 24, 40), 1);
        mask.fill_rect(Rect::new(25, 8, 40, 40), 1); // 1 px gap
        let report = check_mask(&mask, &rules());
        assert!(report.violations.iter().any(|v| v.kind == MrcKind::Space));
    }

    #[test]
    fn tiny_island_is_area_violation() {
        let mut mask = Grid::new(64, 64, 0u8);
        mask.fill_rect(Rect::new(8, 8, 11, 11), 1); // 9 px < 12
        let report = check_mask(&mask, &rules());
        assert!(report.violations.iter().any(|v| v.kind == MrcKind::Area));
    }

    #[test]
    fn near_lines_filters_by_distance() {
        let v = |x0: i64| MrcViolation {
            kind: MrcKind::Area,
            bbox: Rect::new(x0, 10, x0 + 2, 12),
            extent: 4,
        };
        let report = MrcReport {
            violations: vec![v(62), v(10)],
        };
        let line = StitchLine {
            orientation: Orientation::Vertical,
            position: 64,
            start: 0,
            end: 128,
        };
        let near = report.near_lines(&[line], 4);
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].bbox.x0, 62);
    }

    #[test]
    fn report_accessors() {
        let report = MrcReport::default();
        assert!(report.is_clean());
        assert_eq!(report.count(), 0);
    }
}

//! # ilt-metrics
//!
//! The evaluation metrics of the paper's Section 2.3:
//!
//! * [`l2_loss`] — Definition 2, `||Z - Z_t||^2` of the nominal print;
//! * [`mask_quality`] — L2 plus the PVBand of Definition 3 (inner/outer
//!   process-corner XOR area), evaluated on the full region without
//!   partitioning, as the paper's inspection protocol requires;
//! * [`stitch_loss`] — Definition 1: Gaussian-smoothing-based continuity of
//!   graphics crossing stitch lines, with per-intersection windows and the
//!   `errors_above` localisation used by Fig. 8;
//! * [`check_mask`] — mask rule checking (the MRC the paper's Section 2.3
//!   says stitching discontinuities violate);
//! * [`edge_placement_error`] — per-gauge EPE, the standard OPC accuracy
//!   metric complementing the global L2.
//!
//! # Examples
//!
//! ```
//! use ilt_grid::{Grid, Rect};
//! use ilt_metrics::{stitch_loss, StitchConfig};
//! use ilt_tile::{Orientation, StitchLine};
//!
//! let mut mask = Grid::new(128, 128, 0u8);
//! mask.fill_rect(Rect::new(20, 60, 108, 68), 1); // clean crossing
//! let line = StitchLine {
//!     orientation: Orientation::Vertical,
//!     position: 64,
//!     start: 0,
//!     end: 128,
//! };
//! let report = stitch_loss(&mask, &[line], &StitchConfig::default());
//! assert_eq!(report.intersections.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epe;
mod mrc;
mod quality;
mod stitch;

pub use epe::{edge_placement_error, EpeConfig, EpeReport, EpeSegment, Gauge};
pub use mrc::{check_mask, MrcKind, MrcReport, MrcRules, MrcViolation};
pub use quality::{l2_loss, mask_quality, MaskQuality};
pub use stitch::{stitch_loss, ContinuityComparison, Intersection, StitchConfig, StitchReport};

//! Edge placement error (EPE): the industry-standard per-gauge accuracy
//! metric for OPC/ILT results.
//!
//! For every horizontal and vertical edge segment of the target layout,
//! measurement gauges are dropped at a fixed spacing; each gauge measures
//! how far the printed contour sits from the intended edge (positive =
//! printed feature extends beyond the target). The summary reports the
//! mean/max absolute EPE and the count of gauges beyond a tolerance —
//! complementary to the global L2 of Definition 2, which cannot tell one
//! large excursion from many small ones.

use ilt_grid::BitGrid;

/// Configuration of the EPE measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpeConfig {
    /// Spacing between gauges along an edge, in pixels.
    pub gauge_spacing: usize,
    /// Maximum search distance for the printed contour, in pixels.
    pub search_range: usize,
    /// |EPE| above this is counted as a violation.
    pub tolerance: usize,
}

impl EpeConfig {
    /// Defaults matched to the benchmark scale (16-pixel features).
    pub fn m1_default() -> Self {
        EpeConfig {
            gauge_spacing: 8,
            search_range: 12,
            tolerance: 2,
        }
    }
}

impl Default for EpeConfig {
    fn default() -> Self {
        EpeConfig::m1_default()
    }
}

/// One measurement gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge {
    /// Gauge position on the target edge.
    pub x: usize,
    /// Gauge position on the target edge.
    pub y: usize,
    /// Outward normal of the target edge at the gauge.
    pub normal: (i32, i32),
    /// Signed displacement of the printed contour along the normal, or
    /// `None` if no contour was found within the search range (a missing
    /// or bridged feature — the worst kind of error).
    pub epe: Option<i32>,
}

/// One straight edge segment of the target: a maximal run of gauges that
/// share an edge line (same outward normal, same edge coordinate) at
/// consecutive gauge spacings. Segment-level results localise error to a
/// nameable piece of geometry instead of burying it in the clip mean.
#[derive(Debug, Clone, PartialEq)]
pub struct EpeSegment {
    /// Outward normal shared by every gauge of the segment.
    pub normal: (i32, i32),
    /// Indices into [`EpeReport::gauges`], ordered along the edge.
    pub gauges: Vec<usize>,
    /// Gauges that found a contour.
    pub found: usize,
    /// Sum of |EPE| over found gauges (the fold carrier for the mean).
    pub sum_abs: f64,
    /// Maximum |EPE| over found gauges.
    pub max_abs: usize,
    /// Gauges beyond the tolerance plus gauges with no contour.
    pub violations: usize,
}

impl EpeSegment {
    /// Mean |EPE| over the segment's found gauges (0.0 if none found).
    pub fn mean_abs(&self) -> f64 {
        if self.found == 0 {
            0.0
        } else {
            self.sum_abs / self.found as f64
        }
    }
}

/// Summary of an EPE measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct EpeReport {
    /// All gauges, in scan order.
    pub gauges: Vec<Gauge>,
    /// Per-edge-segment results; every gauge belongs to exactly one
    /// segment, and the aggregate fields below are a fold over these.
    pub segments: Vec<EpeSegment>,
    /// Mean |EPE| over gauges that found a contour.
    pub mean_abs: f64,
    /// Maximum |EPE| over gauges that found a contour.
    pub max_abs: usize,
    /// Gauges whose |EPE| exceeds the tolerance, plus gauges that found no
    /// contour at all.
    pub violations: usize,
}

/// Measures EPE of a printed wafer image against the binary target.
///
/// # Panics
///
/// Panics if the two grids differ in shape or the configuration is
/// degenerate (zero spacing or range).
pub fn edge_placement_error(target: &BitGrid, printed: &BitGrid, config: &EpeConfig) -> EpeReport {
    assert_eq!(
        (target.width(), target.height()),
        (printed.width(), printed.height()),
        "target and print must have identical shapes"
    );
    assert!(config.gauge_spacing > 0, "gauge spacing must be nonzero");
    assert!(config.search_range > 0, "search range must be nonzero");
    let (w, h) = (target.width(), target.height());

    let mut gauges = Vec::new();
    // Vertical edges: scan rows; a transition between x-1 and x is an edge
    // with outward normal +-x.
    for y in (0..h).step_by(config.gauge_spacing) {
        for x in 1..w {
            let inside = target.get(x, y) != 0;
            let left = target.get(x - 1, y) != 0;
            if inside != left {
                // Anchor the gauge on the feature-side pixel; the outward
                // normal points from feature to background.
                let (gx, normal) = if left { (x - 1, (1, 0)) } else { (x, (-1, 0)) };
                gauges.push(measure(printed, gx, y, normal, config, left));
            }
        }
    }
    // Horizontal edges: scan columns.
    for x in (0..w).step_by(config.gauge_spacing) {
        for y in 1..h {
            let inside = target.get(x, y) != 0;
            let up = target.get(x, y - 1) != 0;
            if inside != up {
                let (gy, normal) = if up { (y - 1, (0, 1)) } else { (y, (0, -1)) };
                gauges.push(measure(printed, x, gy, normal, config, up));
            }
        }
    }

    let segments = group_segments(&gauges, config);

    // The clip aggregate is a pure fold over the segment summaries; the
    // segments partition the gauges, so this matches a direct pass.
    let (sum, found, max_abs, violations) = segments.iter().fold(
        (0.0f64, 0usize, 0usize, 0usize),
        |(sum, found, max_abs, violations), s| {
            (
                sum + s.sum_abs,
                found + s.found,
                max_abs.max(s.max_abs),
                violations + s.violations,
            )
        },
    );
    EpeReport {
        mean_abs: if found > 0 { sum / found as f64 } else { 0.0 },
        max_abs,
        violations,
        segments,
        gauges,
    }
}

/// Groups gauges into maximal straight-edge segments: gauges that share an
/// outward normal and an edge coordinate, split where consecutive gauges
/// along the edge sit more than one gauge spacing apart (separate features
/// on the same grid line).
fn group_segments(gauges: &[Gauge], config: &EpeConfig) -> Vec<EpeSegment> {
    use std::collections::BTreeMap;
    // Key: (normal, fixed edge coordinate); value: (position along the
    // edge, gauge index). A vertical edge fixes x and runs along y.
    type LineKey = ((i32, i32), usize);
    let mut lines: BTreeMap<LineKey, Vec<(usize, usize)>> = BTreeMap::new();
    for (i, g) in gauges.iter().enumerate() {
        let (fixed, along) = if g.normal.0 != 0 {
            (g.x, g.y)
        } else {
            (g.y, g.x)
        };
        lines.entry((g.normal, fixed)).or_default().push((along, i));
    }
    let mut segments = Vec::new();
    for ((normal, _), mut line) in lines {
        line.sort_unstable();
        let mut run: Vec<usize> = Vec::new();
        let mut prev = None;
        for (along, i) in line {
            if let Some(p) = prev {
                if along - p > config.gauge_spacing && !run.is_empty() {
                    segments.push(summarise_segment(
                        normal,
                        std::mem::take(&mut run),
                        gauges,
                        config,
                    ));
                }
            }
            run.push(i);
            prev = Some(along);
        }
        if !run.is_empty() {
            segments.push(summarise_segment(normal, run, gauges, config));
        }
    }
    segments
}

fn summarise_segment(
    normal: (i32, i32),
    indices: Vec<usize>,
    gauges: &[Gauge],
    config: &EpeConfig,
) -> EpeSegment {
    let mut seg = EpeSegment {
        normal,
        gauges: indices,
        found: 0,
        sum_abs: 0.0,
        max_abs: 0,
        violations: 0,
    };
    for &i in &seg.gauges {
        match gauges[i].epe {
            Some(e) => {
                let a = e.unsigned_abs() as usize;
                seg.found += 1;
                seg.sum_abs += a as f64;
                seg.max_abs = seg.max_abs.max(a);
                if a > config.tolerance {
                    seg.violations += 1;
                }
            }
            None => seg.violations += 1,
        }
    }
    seg
}

/// Finds the printed contour along the normal through `(x, y)`.
///
/// `feature_behind` tells which side of the transition the target feature
/// is on; the printed contour is the matching transition of `printed`. The
/// signed EPE is positive when the printed feature extends past the target
/// edge (towards the background).
fn measure(
    printed: &BitGrid,
    x: usize,
    y: usize,
    normal: (i32, i32),
    config: &EpeConfig,
    _feature_behind: bool,
) -> Gauge {
    let (w, h) = (printed.width() as i32, printed.height() as i32);
    let at = |d: i32| -> Option<bool> {
        let px = x as i32 + normal.0 * d;
        let py = y as i32 + normal.1 * d;
        // The feature-side sample sits one step against the normal.
        if px < 0 || py < 0 || px >= w || py >= h {
            None
        } else {
            Some(printed.get(px as usize, py as usize) != 0)
        }
    };
    // Scan along the normal for the innermost printed-to-background
    // transition: the d where the pixel at d is printed and the pixel at
    // d+1 (one step further outward) is not. A perfect print transitions
    // exactly at the gauge pixel, giving EPE = 0; out-of-bounds samples
    // count as background.
    let range = config.search_range as i32;
    let mut epe = None;
    for d in -range..=range {
        let here = at(d).unwrap_or(false);
        let beyond = at(d + 1).unwrap_or(false);
        if here && !beyond {
            epe = Some(d);
            break;
        }
    }
    Gauge { x, y, normal, epe }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::{Grid, Rect};

    fn square_target() -> BitGrid {
        let mut t = Grid::new(64, 64, 0u8);
        t.fill_rect(Rect::new(16, 16, 48, 48), 1);
        t
    }

    #[test]
    fn perfect_print_has_zero_epe() {
        let target = square_target();
        let report = edge_placement_error(&target, &target, &EpeConfig::m1_default());
        assert!(!report.gauges.is_empty());
        assert_eq!(report.max_abs, 0);
        assert_eq!(report.violations, 0);
        assert_eq!(report.mean_abs, 0.0);
    }

    #[test]
    fn uniform_shrink_measures_negative_epe() {
        let target = square_target();
        let mut printed = Grid::new(64, 64, 0u8);
        printed.fill_rect(Rect::new(18, 18, 46, 46), 1); // 2 px pullback
        let report = edge_placement_error(&target, &printed, &EpeConfig::m1_default());
        // Every gauge away from corners reads EPE = -2.
        let interior: Vec<i32> = report.gauges.iter().filter_map(|g| g.epe).collect();
        assert!(!interior.is_empty());
        assert!(interior.iter().filter(|&&e| e == -2).count() * 2 >= interior.len());
        assert_eq!(report.max_abs, 2);
    }

    #[test]
    fn uniform_bloat_measures_positive_epe() {
        let target = square_target();
        let mut printed = Grid::new(64, 64, 0u8);
        printed.fill_rect(Rect::new(14, 14, 50, 50), 1); // 2 px bloat
        let report = edge_placement_error(&target, &printed, &EpeConfig::m1_default());
        assert!(report.gauges.iter().filter_map(|g| g.epe).any(|e| e == 2));
        assert_eq!(report.max_abs, 2);
    }

    #[test]
    fn missing_feature_counts_as_violation() {
        let target = square_target();
        let printed: BitGrid = Grid::new(64, 64, 0);
        let report = edge_placement_error(&target, &printed, &EpeConfig::m1_default());
        assert_eq!(report.violations, report.gauges.len());
    }

    #[test]
    fn tolerance_controls_violation_count() {
        let target = square_target();
        let mut printed = Grid::new(64, 64, 0u8);
        printed.fill_rect(Rect::new(17, 17, 47, 47), 1); // 1 px pullback
        let tight = edge_placement_error(
            &target,
            &printed,
            &EpeConfig {
                tolerance: 0,
                ..EpeConfig::m1_default()
            },
        );
        let loose = edge_placement_error(&target, &printed, &EpeConfig::m1_default());
        assert!(tight.violations > loose.violations);
        // Under the loose tolerance the only remaining violations are the
        // gauges that sit on rows/columns the shrunken print vacated
        // entirely (no contour found along the normal).
        let no_contour = loose.gauges.iter().filter(|g| g.epe.is_none()).count();
        assert_eq!(loose.violations, no_contour);
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn shape_mismatch_panics() {
        let target = square_target();
        let printed: BitGrid = Grid::new(32, 32, 0);
        let _ = edge_placement_error(&target, &printed, &EpeConfig::m1_default());
    }

    #[test]
    fn square_target_yields_four_segments() {
        // A lone square has exactly one edge segment per side; with
        // spacing 8 each 32-pixel side carries 4 gauges.
        let target = square_target();
        let report = edge_placement_error(&target, &target, &EpeConfig::m1_default());
        assert_eq!(report.segments.len(), 4);
        let mut normals: Vec<(i32, i32)> = report.segments.iter().map(|s| s.normal).collect();
        normals.sort_unstable();
        assert_eq!(normals, vec![(-1, 0), (0, -1), (0, 1), (1, 0)]);
        for s in &report.segments {
            assert_eq!(s.gauges.len(), 4, "segment {:?}", s.normal);
            assert_eq!(s.found, 4);
            assert_eq!(s.violations, 0);
            assert_eq!(s.mean_abs(), 0.0);
        }
    }

    #[test]
    fn two_features_on_one_line_split_into_separate_segments() {
        // Two squares sharing the same left-edge x coordinate, separated by
        // a gap wider than the gauge spacing, must not merge into one
        // segment.
        let mut target: BitGrid = Grid::new(64, 96, 0);
        target.fill_rect(Rect::new(16, 8, 48, 40), 1);
        target.fill_rect(Rect::new(16, 56, 48, 88), 1);
        let report = edge_placement_error(&target, &target, &EpeConfig::m1_default());
        let left: Vec<_> = report
            .segments
            .iter()
            .filter(|s| s.normal == (-1, 0))
            .collect();
        assert_eq!(left.len(), 2, "gap must split the shared edge line");
    }

    #[test]
    fn segments_partition_the_gauges() {
        let target = square_target();
        let mut printed = Grid::new(64, 64, 0u8);
        printed.fill_rect(Rect::new(18, 18, 46, 46), 1);
        let report = edge_placement_error(&target, &printed, &EpeConfig::m1_default());
        let mut seen = vec![0usize; report.gauges.len()];
        for s in &report.segments {
            for &i in &s.gauges {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "each gauge in exactly one segment"
        );
    }

    #[test]
    fn aggregate_is_a_fold_over_segments() {
        // Proves the aggregate is unchanged by the segment refactor: on the
        // seed cases (perfect print, shrink, bloat, missing feature) the
        // report fields must equal a direct pass over the flat gauge list.
        let target = square_target();
        let mut shrunk = Grid::new(64, 64, 0u8);
        shrunk.fill_rect(Rect::new(18, 18, 46, 46), 1);
        let mut bloated = Grid::new(64, 64, 0u8);
        bloated.fill_rect(Rect::new(14, 14, 50, 50), 1);
        let empty: BitGrid = Grid::new(64, 64, 0);
        let config = EpeConfig::m1_default();
        for printed in [&target, &shrunk, &bloated, &empty] {
            let report = edge_placement_error(&target, printed, &config);
            // Direct aggregate over the flat gauge list (the pre-refactor
            // computation).
            let mut sum = 0.0f64;
            let mut found = 0usize;
            let mut max_abs = 0usize;
            let mut violations = 0usize;
            for g in &report.gauges {
                match g.epe {
                    Some(e) => {
                        let a = e.unsigned_abs() as usize;
                        sum += a as f64;
                        found += 1;
                        max_abs = max_abs.max(a);
                        if a > config.tolerance {
                            violations += 1;
                        }
                    }
                    None => violations += 1,
                }
            }
            let mean = if found > 0 { sum / found as f64 } else { 0.0 };
            assert_eq!(report.mean_abs, mean);
            assert_eq!(report.max_abs, max_abs);
            assert_eq!(report.violations, violations);
        }
    }
}

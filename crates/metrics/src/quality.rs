//! Mask quality metrics: the L2 loss of Definition 2 and the PVBand of
//! Definition 3, evaluated through the full-region lithography system.

use ilt_grid::{BitGrid, RealGrid};
use ilt_litho::{Corner, LithoError, LithoSystem};

/// L2 loss (Definition 2): `||Z - Z_t||_2^2`. For binary images this is the
/// XOR area between the nominal print and the target.
pub fn l2_loss(wafer: &BitGrid, target: &BitGrid) -> usize {
    wafer.xor_count(target)
}

/// The quality triple reported per mask in Table 1 (stitch loss is computed
/// separately because it needs the partition's stitch lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskQuality {
    /// L2 loss in pixels (Definition 2).
    pub l2: usize,
    /// Process-variation band area in pixels (Definition 3).
    pub pvband: usize,
}

/// Evaluates a (continuous) mask: prints it at the nominal corner for L2
/// and at the process-window corners for PVBand.
///
/// Per the paper's protocol, the inspection must run on the **entire**
/// region without tile partitioning — pass the full-layout `system`.
///
/// # Errors
///
/// Propagates lithography failures (shape mismatches and FFT errors).
pub fn mask_quality(
    system: &LithoSystem,
    mask: &RealGrid,
    target: &BitGrid,
) -> Result<MaskQuality, LithoError> {
    let nominal = system.print(mask, Corner::Nominal)?;
    let l2 = l2_loss(&nominal, target);
    let pv = system.pvband(mask)?;
    Ok(MaskQuality {
        l2,
        pvband: pv.area,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::{Grid, Rect};
    use ilt_litho::{LithoBank, OpticsConfig, ResistModel};

    #[test]
    fn l2_is_xor_area() {
        let a = Grid::from_vec(2, 2, vec![1u8, 0, 1, 0]);
        let b = Grid::from_vec(2, 2, vec![1u8, 1, 0, 0]);
        assert_eq!(l2_loss(&a, &b), 2);
        assert_eq!(l2_loss(&a, &a), 0);
    }

    #[test]
    fn quality_of_reasonable_mask() {
        let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::default()).unwrap();
        let system = bank.system(64, 1).unwrap();
        let mut target = Grid::new(64, 64, 0u8);
        target.fill_rect(Rect::new(20, 20, 44, 44), 1);
        let mask = target.to_real();
        let q = mask_quality(&system, &mask, &target).unwrap();
        // A naive mask prints with rounded corners: nonzero but bounded L2.
        assert!(q.l2 > 0);
        assert!(q.l2 < 24 * 24);
        assert!(q.pvband > 0);
    }

    #[test]
    fn better_mask_scores_lower_l2() {
        // A mask whose print equals the target scores L2 = 0 by definition;
        // verify monotonicity using the target vs. an empty mask.
        let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::default()).unwrap();
        let system = bank.system(64, 1).unwrap();
        let mut target = Grid::new(64, 64, 0u8);
        target.fill_rect(Rect::new(20, 20, 44, 44), 1);
        let good = mask_quality(&system, &target.to_real(), &target).unwrap();
        let empty = mask_quality(&system, &Grid::new(64, 64, 0.0), &target).unwrap();
        assert!(good.l2 < empty.l2);
        assert_eq!(empty.l2, target.count_ones());
    }
}

//! The Stitch Loss of Definition 1: a quantitative continuity metric for
//! mask graphics crossing tile-stitching lines.
//!
//! Procedure (from the paper): smooth the shape contours with multiple
//! iterations of Gaussian low-pass filtering and re-binarise; extract the
//! coordinates where graphics intersect the stitching line; around each
//! intersection take a `40 x 40` window and count the pixels where the
//! smoothed-and-rebinarised shape differs from the original (the orange
//! area of the paper's Fig. 3). A straight edge is a fixed point of
//! smooth-then-threshold, so clean crossings cost almost nothing, while
//! jogs, chopped assist features, and mismatched contours light up.

use ilt_grid::{BitGrid, GaussianFilter, Rect};
use ilt_tile::{Orientation, StitchLine};

/// Parameters of the stitch-loss metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StitchConfig {
    /// Window edge length around each intersection (paper: 40).
    pub window: usize,
    /// Gaussian sigma of each smoothing pass.
    pub sigma: f64,
    /// Number of smoothing passes ("multiple iterations").
    pub iterations: usize,
}

impl StitchConfig {
    /// The paper's settings.
    pub fn paper_default() -> Self {
        StitchConfig {
            window: 40,
            sigma: 1.5,
            iterations: 3,
        }
    }

    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics on a zero window, non-positive sigma, or zero iterations.
    pub fn validate(&self) {
        assert!(self.window > 0, "window must be nonzero");
        assert!(self.sigma > 0.0, "sigma must be positive");
        assert!(self.iterations > 0, "iterations must be nonzero");
    }
}

impl Default for StitchConfig {
    fn default() -> Self {
        StitchConfig::paper_default()
    }
}

/// One mask/stitch-line intersection and its contribution to the loss.
#[derive(Debug, Clone, PartialEq)]
pub struct Intersection {
    /// Center of the crossing run on the stitch line.
    pub x: usize,
    /// Center of the crossing run on the stitch line.
    pub y: usize,
    /// The evaluation window (clipped to the mask).
    pub window: Rect,
    /// Sum of |before - after| over the window.
    pub loss: f64,
}

/// Result of evaluating the stitch loss over a mask.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StitchReport {
    /// Total stitch loss (sum over intersections).
    pub total: f64,
    /// Every intersection, in stitch-line order.
    pub intersections: Vec<Intersection>,
}

impl StitchReport {
    /// Intersections whose loss exceeds `threshold` — the red boxes of
    /// Fig. 8 in the paper.
    pub fn errors_above(&self, threshold: f64) -> Vec<&Intersection> {
        self.intersections
            .iter()
            .filter(|i| i.loss > threshold)
            .collect()
    }
}

/// Evaluates the stitch loss of a binary mask against a set of stitch
/// lines.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`StitchConfig::validate`]).
pub fn stitch_loss(mask: &BitGrid, lines: &[StitchLine], config: &StitchConfig) -> StitchReport {
    config.validate();
    if lines.is_empty() {
        return StitchReport::default();
    }
    let real = mask.to_real();
    let filter = GaussianFilter::new(config.sigma);
    // Smooth-then-rebinarise: the morphological "healing" of the contours.
    let healed = filter
        .apply_iterated(&real, config.iterations)
        .threshold(0.5)
        .to_real();

    let mut report = StitchReport::default();
    for line in lines {
        for run in crossing_runs(mask, line) {
            let (cx, cy) = run;
            let half = (config.window / 2) as i64;
            let window = Rect::new(
                cx as i64 - half,
                cy as i64 - half,
                cx as i64 - half + config.window as i64,
                cy as i64 - half + config.window as i64,
            )
            .intersect(real.bounds())
            .expect("window centers lie inside the mask");
            let mut loss = 0.0;
            for (x, y) in window.pixels() {
                loss +=
                    (real.get(x as usize, y as usize) - healed.get(x as usize, y as usize)).abs();
            }
            report.total += loss;
            report.intersections.push(Intersection {
                x: cx,
                y: cy,
                window,
                loss,
            });
        }
    }
    report
}

/// Centers of the contiguous runs where the mask is 1 along a stitch line.
fn crossing_runs(mask: &BitGrid, line: &StitchLine) -> Vec<(usize, usize)> {
    let mut centers = Vec::new();
    let mut run_start: Option<usize> = None;
    let range_end = line.end.min(match line.orientation {
        Orientation::Vertical => mask.height(),
        Orientation::Horizontal => mask.width(),
    });
    let sample = |t: usize| -> u8 {
        match line.orientation {
            Orientation::Vertical => mask.get(line.position, t),
            Orientation::Horizontal => mask.get(t, line.position),
        }
    };
    for t in line.start..=range_end {
        let on = t < range_end && sample(t) != 0;
        match (run_start, on) {
            (None, true) => run_start = Some(t),
            (Some(s), false) => {
                let center = (s + t - 1) / 2;
                centers.push(match line.orientation {
                    Orientation::Vertical => (line.position, center),
                    Orientation::Horizontal => (center, line.position),
                });
                run_start = None;
            }
            _ => {}
        }
    }
    centers
}

/// Continuity comparison used by the Fig. 6 experiment: the stitch loss of
/// the same tile data assembled two ways, reported as `(hard, smoothed)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuityComparison {
    /// Stitch loss with hard (restricted) assembly.
    pub restricted: f64,
    /// Stitch loss with weighted-smoothing assembly.
    pub weighted: f64,
}

impl ContinuityComparison {
    /// The improvement factor `restricted / weighted` (infinite when the
    /// weighted loss is zero and the restricted loss is not).
    pub fn improvement(&self) -> f64 {
        if self.weighted == 0.0 {
            if self.restricted == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.restricted / self.weighted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Grid;
    use ilt_tile::{Partition, PartitionConfig};

    fn vertical_line(x: usize, height: usize) -> StitchLine {
        StitchLine {
            orientation: Orientation::Vertical,
            position: x,
            start: 0,
            end: height,
        }
    }

    /// A straight horizontal wire crossing x = 64.
    fn straight_wire() -> BitGrid {
        let mut m = Grid::new(128, 128, 0u8);
        m.fill_rect(Rect::new(20, 60, 108, 68), 1);
        m
    }

    /// The same wire fully offset by its own width at the stitch line —
    /// the catastrophic mismatch of the paper's Fig. 1.
    fn jagged_wire() -> BitGrid {
        let mut m = Grid::new(128, 128, 0u8);
        m.fill_rect(Rect::new(20, 60, 64, 68), 1);
        m.fill_rect(Rect::new(64, 68, 108, 76), 1);
        m
    }

    #[test]
    fn empty_mask_has_zero_loss() {
        let mask: BitGrid = Grid::new(64, 64, 0);
        let report = stitch_loss(&mask, &[vertical_line(32, 64)], &StitchConfig::default());
        assert_eq!(report.total, 0.0);
        assert!(report.intersections.is_empty());
    }

    #[test]
    fn no_lines_means_no_loss() {
        let report = stitch_loss(&jagged_wire(), &[], &StitchConfig::default());
        assert_eq!(report, StitchReport::default());
    }

    #[test]
    fn finds_one_intersection_per_crossing() {
        let mask = straight_wire();
        let report = stitch_loss(&mask, &[vertical_line(64, 128)], &StitchConfig::default());
        assert_eq!(report.intersections.len(), 1);
        let i = &report.intersections[0];
        assert_eq!(i.x, 64);
        assert!((60..68).contains(&i.y), "center y = {}", i.y);
    }

    #[test]
    fn two_wires_give_two_intersections() {
        let mut mask = straight_wire();
        mask.fill_rect(Rect::new(20, 90, 108, 98), 1);
        let report = stitch_loss(&mask, &[vertical_line(64, 128)], &StitchConfig::default());
        assert_eq!(report.intersections.len(), 2);
    }

    #[test]
    fn jagged_crossing_scores_higher_than_straight() {
        // Like the paper's numbers, the metric carries a baseline cost even
        // for clean crossings (smoothing rounds every contour); a severe
        // mismatch must clearly exceed that baseline.
        let cfg = StitchConfig::default();
        let line = [vertical_line(64, 128)];
        let straight = stitch_loss(&straight_wire(), &line, &cfg);
        let jagged = stitch_loss(&jagged_wire(), &line, &cfg);
        assert!(
            jagged.total > 1.1 * straight.total,
            "jagged {} vs straight {}",
            jagged.total,
            straight.total
        );
    }

    #[test]
    fn loss_scales_with_misalignment() {
        // Bigger jogs are worse.
        let make = |jog: i64| -> BitGrid {
            let mut m = Grid::new(128, 128, 0u8);
            m.fill_rect(Rect::new(20, 60, 64, 68), 1);
            m.fill_rect(Rect::new(64, 60 + jog, 108, 68 + jog), 1);
            m
        };
        let cfg = StitchConfig::default();
        let line = [vertical_line(64, 128)];
        let l2 = stitch_loss(&make(2), &line, &cfg).total;
        let l6 = stitch_loss(&make(6), &line, &cfg).total;
        assert!(l6 > l2, "jog 6 {l6} <= jog 2 {l2}");
    }

    #[test]
    fn horizontal_lines_work() {
        let mut mask = Grid::new(128, 128, 0u8);
        mask.fill_rect(Rect::new(60, 20, 68, 108), 1); // vertical wire
        let line = StitchLine {
            orientation: Orientation::Horizontal,
            position: 64,
            start: 0,
            end: 128,
        };
        let report = stitch_loss(&mask, &[line], &StitchConfig::default());
        assert_eq!(report.intersections.len(), 1);
        assert_eq!(report.intersections[0].y, 64);
    }

    #[test]
    fn wire_touching_mask_edge_is_handled() {
        // A run that extends to the end of the line must still close.
        let mut mask = Grid::new(64, 64, 0u8);
        mask.fill_rect(Rect::new(30, 56, 38, 64), 1);
        let report = stitch_loss(&mask, &[vertical_line(32, 64)], &StitchConfig::default());
        assert_eq!(report.intersections.len(), 1);
        // Window is clipped to the grid, no panic.
        assert!(report.total >= 0.0);
    }

    #[test]
    fn errors_above_filters() {
        let report = StitchReport {
            total: 30.0,
            intersections: vec![
                Intersection {
                    x: 1,
                    y: 1,
                    window: Rect::new(0, 0, 2, 2),
                    loss: 25.0,
                },
                Intersection {
                    x: 2,
                    y: 2,
                    window: Rect::new(0, 0, 2, 2),
                    loss: 5.0,
                },
            ],
        };
        let errs = report.errors_above(20.0);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].x, 1);
    }

    #[test]
    fn works_with_partition_stitch_lines() {
        let p = Partition::new(
            256,
            256,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        let mut mask = Grid::new(256, 256, 0u8);
        // A wire crossing both vertical stitch lines (x = 96, 160).
        mask.fill_rect(Rect::new(40, 120, 220, 128), 1);
        let report = stitch_loss(&mask, &p.stitch_lines(), &StitchConfig::default());
        assert_eq!(report.intersections.len(), 2);
    }

    #[test]
    fn continuity_comparison_improvement() {
        let c = ContinuityComparison {
            restricted: 10.0,
            weighted: 2.0,
        };
        assert!((c.improvement() - 5.0).abs() < 1e-12);
        let c = ContinuityComparison {
            restricted: 3.0,
            weighted: 0.0,
        };
        assert!(c.improvement().is_infinite());
        let c = ContinuityComparison {
            restricted: 0.0,
            weighted: 0.0,
        };
        assert_eq!(c.improvement(), 1.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let cfg = StitchConfig {
            window: 0,
            ..Default::default()
        };
        let _ = stitch_loss(&straight_wire(), &[], &cfg);
    }
}

//! Non-square M×N partition geometry: overlap-neighbour enumeration at grid
//! corners, edges, and interior — the frontier the incremental (ECO)
//! dirty-tile propagation in `ilt-core` walks, and the rects the `ilt-store`
//! cache keys hash.

use ilt_tile::{Partition, PartitionConfig};

/// A 4×2 tile grid: 224×96 layout, 64-pixel tiles, 32-pixel overlap
/// (stride 32 → nx = (224-64)/32+1 = 6... keep it simple: stride 64-32=32).
fn partition_4x2() -> Partition {
    // width 160, height 96, tile 64, overlap 32 → stride 32,
    // nx = (160-64)/32+1 = 4, ny = (96-64)/32+1 = 2.
    Partition::new(
        160,
        96,
        PartitionConfig {
            tile: 64,
            overlap: 32,
        },
    )
    .unwrap()
}

#[test]
fn grid_dimensions_are_rectangular() {
    let p = partition_4x2();
    assert_eq!(p.tiles_x(), 4);
    assert_eq!(p.tiles_y(), 2);
    assert_eq!(p.tiles().len(), 8);
}

#[test]
fn corner_tiles_have_three_neighbors() {
    let p = partition_4x2();
    // Indices: row-major, row * nx + col.
    for corner in [0, 3, 4, 7] {
        let mut n = p.neighbors(corner);
        n.sort_unstable();
        assert_eq!(n.len(), 3, "corner {corner}: {n:?}");
    }
    // Spot-check the exact sets.
    let mut n0 = p.neighbors(0);
    n0.sort_unstable();
    assert_eq!(n0, vec![1, 4, 5]);
    let mut n3 = p.neighbors(3);
    n3.sort_unstable();
    assert_eq!(n3, vec![2, 6, 7]);
}

#[test]
fn edge_tiles_have_five_neighbors() {
    let p = partition_4x2();
    // Tiles 1, 2 (top edge) and 5, 6 (bottom edge) are edge-but-not-corner
    // in a 4×2 grid.
    for edge in [1, 2, 5, 6] {
        let n = p.neighbors(edge);
        assert_eq!(n.len(), 5, "edge {edge}: {n:?}");
    }
    let mut n1 = p.neighbors(1);
    n1.sort_unstable();
    assert_eq!(n1, vec![0, 2, 4, 5, 6]);
}

#[test]
fn interior_tile_of_3x3_has_eight_neighbors() {
    // The square case for contrast: the centre tile overlaps everything.
    let p = Partition::new(
        128,
        128,
        PartitionConfig {
            tile: 64,
            overlap: 32,
        },
    )
    .unwrap();
    let mut n4 = p.neighbors(4);
    n4.sort_unstable();
    assert_eq!(n4, vec![0, 1, 2, 3, 5, 6, 7, 8]);
}

#[test]
fn neighbor_relation_is_symmetric() {
    let p = partition_4x2();
    for i in 0..p.tiles().len() {
        for j in p.neighbors(i) {
            assert!(
                p.neighbors(j).contains(&i),
                "tile {j} does not list {i} back"
            );
        }
    }
}

#[test]
fn cores_partition_the_nonsquare_layout() {
    let p = partition_4x2();
    // Every pixel belongs to exactly one core.
    let mut covered = vec![0u8; 160 * 96];
    for tile in p.tiles() {
        for y in tile.core.y0..tile.core.y1 {
            for x in tile.core.x0..tile.core.x1 {
                covered[y as usize * 160 + x as usize] += 1;
            }
        }
    }
    assert!(
        covered.iter().all(|&c| c == 1),
        "cores overlap or leave gaps"
    );
}

#[test]
fn stitch_lines_follow_the_rectangular_core_grid() {
    let p = partition_4x2();
    // 3 vertical interior boundaries and 1 horizontal.
    let lines = p.stitch_lines();
    let vertical = lines
        .iter()
        .filter(|l| matches!(l.orientation, ilt_tile::Orientation::Vertical))
        .count();
    let horizontal = lines.len() - vertical;
    assert_eq!(vertical, 3);
    assert_eq!(horizontal, 1);
}

//! Property tests over random clamped M×N partitions: exact disjoint-core
//! coverage, neighbour symmetry, and streamed-vs-batch assembly
//! bit-identity (satellite of the paper-scale issue).

use ilt_grid::{Grid, RealGrid};
use ilt_tile::{assemble, AssemblyMode, Partition, PartitionConfig, StreamingAssembler};
use proptest::prelude::*;

/// Deterministic per-tile fill so failures reproduce without shrinking.
fn tile_data(t: usize, index: usize) -> RealGrid {
    Grid::from_fn(t, t, |x, y| {
        ((x * 31 + y * 17 + index * 101) % 23) as f64 / 23.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cores_partition_any_clamped_layout(
        tile_pow in 4u32..7,        // tile in {16, 32, 64}
        half_overlap in 1usize..16,
        extra_w in 0usize..150,
        extra_h in 0usize..150,
    ) {
        let tile = 1usize << tile_pow;
        let overlap = (2 * half_overlap).min(tile - 2);
        let config = PartitionConfig { tile, overlap };
        let (width, height) = (tile + extra_w, tile + extra_h);
        let p = Partition::new(width, height, config).unwrap();
        let mut count = vec![0u8; width * height];
        for t in p.tiles() {
            prop_assert!(t.rect.contains_rect(t.core), "core escapes tile {}", t.index);
            prop_assert_eq!(t.rect.width() as usize, tile);
            prop_assert_eq!(t.rect.height() as usize, tile);
            for (x, y) in t.core.pixels() {
                count[y as usize * width + x as usize] += 1;
            }
        }
        for (i, &c) in count.iter().enumerate() {
            prop_assert!(
                c == 1,
                "pixel ({}, {}) covered by {} cores in {}x{} tile {} overlap {}",
                i % width, i / width, c, width, height, tile, overlap
            );
        }
    }

    #[test]
    fn neighbors_are_symmetric_and_exactly_the_overlapping_tiles(
        tile_pow in 4u32..7,
        half_overlap in 1usize..16,
        extra_w in 0usize..150,
        extra_h in 0usize..150,
    ) {
        let tile = 1usize << tile_pow;
        let overlap = (2 * half_overlap).min(tile - 2);
        let config = PartitionConfig { tile, overlap };
        let p = Partition::new(tile + extra_w, tile + extra_h, config).unwrap();
        for a in p.tiles() {
            let n = p.neighbors(a.index);
            for b in p.tiles() {
                if a.index == b.index {
                    prop_assert!(!n.contains(&b.index), "tile neighbours itself");
                    continue;
                }
                let overlapping = a.rect.overlaps(b.rect);
                prop_assert!(
                    n.contains(&b.index) == overlapping,
                    "adjacency of tiles {} and {}", a.index, b.index
                );
                if overlapping {
                    prop_assert!(
                        p.neighbors(b.index).contains(&a.index),
                        "asymmetric neighbours {} and {}", a.index, b.index
                    );
                }
            }
        }
    }

    #[test]
    fn streamed_assembly_is_bit_identical_to_batch(
        tile_pow in 4u32..7,
        half_overlap in 1usize..16,
        extra_w in 0usize..100,
        extra_h in 0usize..100,
        weighted in 0usize..2,
    ) {
        let tile = 1usize << tile_pow;
        let overlap = (2 * half_overlap).min(tile - 2);
        let config = PartitionConfig { tile, overlap };
        let p = Partition::new(tile + extra_w, tile + extra_h, config).unwrap();
        let mode = if weighted == 1 {
            AssemblyMode::weighted_default(&p)
        } else {
            AssemblyMode::Restricted
        };
        let tiles: Vec<RealGrid> = p
            .tiles()
            .iter()
            .map(|t| tile_data(tile, t.index))
            .collect();
        let batch = assemble(&p, &tiles, mode).unwrap();
        let mut streaming = StreamingAssembler::new(&p, mode);
        for k in 0..streaming.canonical_order().len() {
            let idx = streaming.canonical_order()[k];
            streaming.push(idx, &tiles[idx]).unwrap();
        }
        let streamed = streaming.finish().unwrap();
        prop_assert!(
            batch.as_slice() == streamed.as_slice(),
            "streamed and batch assembly diverged"
        );
    }
}

//! A small work-stealing executor for per-tile jobs.
//!
//! The paper runs same-stage (and, in the refine pass, same-colour) tiles on
//! separate GPUs; here each worker is an OS thread. On a single-core host
//! the executor still exercises the identical scheduling structure, which
//! the speedup model in `ilt-core` builds on.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use ilt_telemetry as tele;

/// Runs one job inside a `job` span tagged with the job and worker index,
/// and feeds its wall time into the `executor.job_us` histogram. The span
/// nests under whatever span is active on the calling thread (workers adopt
/// the submitting thread's span via [`tele::parent_scope`]).
fn traced_job<T, F: Fn(usize) -> T>(job: &F, i: usize, worker: usize) -> T {
    let mut span = tele::span(tele::names::JOB);
    span.add_field("job", i);
    span.add_field("worker", worker);
    let out = job(i);
    let seconds = span.end();
    tele::record_value("executor.job_us", (seconds * 1e6) as u64);
    out
}

/// Runs per-index jobs across a fixed number of worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileExecutor {
    workers: usize,
}

impl TileExecutor {
    /// Creates an executor with `workers` threads (0 is treated as 1).
    pub fn new(workers: usize) -> Self {
        TileExecutor {
            workers: workers.max(1),
        }
    }

    /// A sequential executor.
    pub fn sequential() -> Self {
        TileExecutor { workers: 1 }
    }

    /// Number of worker threads.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The intra-tile thread budget for jobs running on this executor: the
    /// configured `ILT_INNER_THREADS` value, capped so
    /// `workers x inner <= cores` (see [`ilt_par::budget`]). Tile jobs that
    /// parallelise internally (per-kernel simulate/gradient, FFT row
    /// batches) should size their [`ilt_par::InnerPool`] with this.
    pub fn inner_budget(&self) -> ilt_par::InnerPool {
        ilt_par::InnerPool::new(ilt_par::budget(self.workers))
    }

    /// Evaluates `job(i)` for `i in 0..count`, returning results in index
    /// order. Jobs are claimed dynamically, so stragglers do not idle other
    /// workers.
    ///
    /// # Panics
    ///
    /// Re-raises the first panicking job's payload on the calling thread.
    /// Other workers stop claiming new jobs, the pool winds down cleanly
    /// (no deadlock, no poisoned state), and the executor remains usable
    /// for subsequent `run` calls.
    pub fn run<T, F>(&self, count: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || count <= 1 {
            return (0..count).map(|i| traced_job(&job, i, 0)).collect();
        }
        // Capture the caller's active span so per-job spans recorded on
        // worker threads attach to it instead of becoming roots.
        let parent = tele::current_span();
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        // First panic payload wins; it is re-raised after the pool drains.
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let (sender, receiver) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            for worker in 0..self.workers.min(count) {
                let sender = sender.clone();
                let next = &next;
                let stop = &stop;
                let panicked = &panicked;
                let job = &job;
                scope.spawn(move || {
                    let _adopted = tele::parent_scope(parent);
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        // AssertUnwindSafe: on panic the payload is
                        // re-raised to the caller and no partial results
                        // escape, so no broken invariant is observable.
                        match catch_unwind(AssertUnwindSafe(|| traced_job(job, i, worker))) {
                            // The receiver outlives the scope; send cannot
                            // fail unless a sibling panicked first.
                            Ok(value) => {
                                if sender.send((i, value)).is_err() {
                                    break;
                                }
                            }
                            Err(payload) => {
                                stop.store(true, Ordering::Relaxed);
                                let mut slot = panicked.lock().unwrap_or_else(|e| e.into_inner());
                                slot.get_or_insert(payload);
                                break;
                            }
                        }
                    }
                });
            }
        });
        drop(sender);
        if let Some(payload) = panicked.into_inner().unwrap_or_else(|e| e.into_inner()) {
            resume_unwind(payload);
        }
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        for (i, value) in receiver {
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced a result"))
            .collect()
    }

    /// Fallible variant: runs every job and returns the first error (by
    /// index order) if any failed.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing job.
    pub fn run_fallible<T, E, F>(&self, count: usize, job: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        let mut results = self.run(count, job);
        if let Some(pos) = results.iter().position(|r| r.is_err()) {
            // Take the first error out without cloning.
            return Err(results.swap_remove(pos).err().expect("checked is_err"));
        }
        results.into_iter().collect()
    }
}

impl Default for TileExecutor {
    fn default() -> Self {
        TileExecutor::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = TileExecutor::sequential().run(10, |i| i * i);
        let par = TileExecutor::new(4).run(10, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(seq, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_index_ordered_despite_stealing() {
        let out = TileExecutor::new(3).run(32, |i| {
            // Make early jobs slow so later jobs finish first.
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let _ = TileExecutor::new(4).run(100, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_workers_treated_as_one() {
        let e = TileExecutor::new(0);
        assert_eq!(e.workers(), 1);
        assert_eq!(e.run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn inner_budget_never_oversubscribes() {
        // With `workers x inner <= cores` enforced (floor 1), an executor
        // that already saturates the cores leaves exactly one inner thread
        // per tile, whatever the environment requested.
        let cores = ilt_par::available_cores();
        assert_eq!(TileExecutor::new(cores).inner_budget().threads(), 1);
        assert_eq!(TileExecutor::new(cores * 4).inner_budget().threads(), 1);
    }

    #[test]
    fn empty_job_list() {
        let out: Vec<usize> = TileExecutor::new(4).run(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn fallible_success_and_failure() {
        let e = TileExecutor::new(2);
        let ok: Result<Vec<usize>, String> = e.run_fallible(4, Ok);
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3]);
        let err: Result<Vec<usize>, String> = e.run_fallible(4, |i| {
            if i >= 2 {
                Err(format!("job {i} failed"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(err.unwrap_err(), "job 2 failed");
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(TileExecutor::default().workers(), 1);
    }
}

//! A small work-stealing executor for per-tile jobs.
//!
//! The paper runs same-stage (and, in the refine pass, same-colour) tiles on
//! separate GPUs; here each worker is an OS thread. On a single-core host
//! the executor still exercises the identical scheduling structure, which
//! the speedup model in `ilt-core` builds on.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use ilt_fault as fault;
use ilt_telemetry as tele;

/// How long an injected `tile.slow` fault stalls a job attempt. Long enough
/// to trip a short job deadline, short enough to keep fault drills fast.
const INJECTED_SLOWDOWN: Duration = Duration::from_millis(25);

/// Runs one job inside a `job` span tagged with the job and worker index,
/// and feeds its wall time into the `executor.job_us` histogram. The span
/// nests under whatever span is active on the calling thread (workers adopt
/// the submitting thread's span via [`tele::parent_scope`]).
fn traced_job<T, F: Fn(usize) -> T>(job: &F, i: usize, worker: usize) -> T {
    let mut span = tele::span(tele::names::JOB);
    span.add_field("job", i);
    span.add_field("worker", worker);
    let out = job(i);
    let seconds = span.end();
    tele::record_value("executor.job_us", (seconds * 1e6) as u64);
    out
}

/// Retry behaviour for [`TileExecutor::run_recoverable`]: how many attempts
/// a tile job gets and how long to back off between them (exponential,
/// doubling per failed attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per tile (minimum 1; the first run counts).
    pub attempts: usize,
    /// Backoff slept after the first failed attempt; doubles each retry.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// A policy with `attempts` total attempts and `backoff` base backoff.
    pub fn new(attempts: usize, backoff: Duration) -> Self {
        RetryPolicy {
            attempts: attempts.max(1),
            backoff,
        }
    }

    /// One attempt, no retries.
    pub fn no_retry() -> Self {
        RetryPolicy::new(1, Duration::ZERO)
    }

    /// Reads `ILT_TILE_RETRIES` (extra attempts after the first, default 1)
    /// and `ILT_TILE_BACKOFF_MS` (base backoff, default 5). Unparsable
    /// values warn on stderr and fall back to the defaults.
    pub fn from_env() -> Self {
        fn read(name: &str, default: u64) -> u64 {
            match std::env::var(name) {
                Ok(raw) => match raw.trim().parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("ilt-tile: ignoring unparsable {name}={raw:?}");
                        default
                    }
                },
                Err(_) => default,
            }
        }
        let retries = read("ILT_TILE_RETRIES", 1) as usize;
        let backoff = Duration::from_millis(read("ILT_TILE_BACKOFF_MS", 5));
        RetryPolicy::new(1 + retries, backoff)
    }

    /// Backoff to sleep after failed attempt number `attempt` (1-based):
    /// `backoff * 2^(attempt-1)`, saturating.
    fn backoff_for(&self, attempt: usize) -> Duration {
        self.backoff
            .saturating_mul(1u32 << (attempt - 1).min(16) as u32)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(2, Duration::from_millis(5))
    }
}

/// A tile job that panicked on every attempt it was given.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileFailure {
    /// Index of the failed tile job.
    pub tile: usize,
    /// Number of attempts made before giving up.
    pub attempts: usize,
    /// The final panic message (stringified payload).
    pub message: String,
}

impl std::fmt::Display for TileFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tile {} failed after {} attempt{}: {}",
            self.tile,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl std::error::Error for TileFailure {}

/// Stringifies a panic payload (the common `String`/`&str` cases).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Registers the ambient slots this crate's dependency position can see —
/// the profiling stage (`ilt-prof`) and the job deadline (`ilt-fault`) —
/// with `ilt-telemetry`'s ambient-context registry. Telemetry carries its
/// own span parent and trace id natively; after this call a single
/// [`tele::AmbientContext::capture`]/`install` pair propagates all four to
/// worker threads. Idempotent and cheap, so every capture site can call it.
pub fn register_ambient_slots() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        tele::ambient::register(tele::ambient::Propagator {
            name: "prof.stage",
            capture: || std::sync::Arc::new(ilt_prof::current_stage()),
            install: |value| match value.downcast_ref::<ilt_prof::Stage>() {
                Some(stage) => Box::new(ilt_prof::stage_scope(*stage)),
                None => Box::new(()),
            },
        });
        tele::ambient::register(tele::ambient::Propagator {
            name: "fault.deadline",
            capture: || std::sync::Arc::new(fault::deadline::current()),
            install: |value| match value.downcast_ref::<Option<std::time::Instant>>() {
                Some(deadline) => Box::new(fault::deadline::scope(*deadline)),
                None => Box::new(()),
            },
        });
    });
}

/// Captures the full ambient context (span parent, trace id, profiling
/// stage, deadline) for hand-off to worker threads, registering this
/// crate's slots first. Prefer this over assembling individual scopes.
pub fn ambient_context() -> tele::AmbientContext {
    register_ambient_slots();
    tele::AmbientContext::capture()
}

/// Runs per-index jobs across a fixed number of worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileExecutor {
    workers: usize,
}

impl TileExecutor {
    /// Creates an executor with `workers` threads (0 is treated as 1).
    pub fn new(workers: usize) -> Self {
        TileExecutor {
            workers: workers.max(1),
        }
    }

    /// A sequential executor.
    pub fn sequential() -> Self {
        TileExecutor { workers: 1 }
    }

    /// Number of worker threads.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The intra-tile thread budget for jobs running on this executor: the
    /// configured `ILT_INNER_THREADS` value, capped so
    /// `workers x inner <= cores` (see [`ilt_par::budget`]). Tile jobs that
    /// parallelise internally (per-kernel simulate/gradient, FFT row
    /// batches) should size their [`ilt_par::InnerPool`] with this.
    pub fn inner_budget(&self) -> ilt_par::InnerPool {
        ilt_par::InnerPool::new(ilt_par::budget(self.workers))
    }

    /// Evaluates `job(i)` for `i in 0..count`, returning results in index
    /// order. Jobs are claimed dynamically, so stragglers do not idle other
    /// workers.
    ///
    /// # Panics
    ///
    /// Re-raises the first panicking job's payload on the calling thread.
    /// Other workers stop claiming new jobs, the pool winds down cleanly
    /// (no deadlock, no poisoned state), and the executor remains usable
    /// for subsequent `run` calls.
    pub fn run<T, F>(&self, count: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || count <= 1 {
            return (0..count).map(|i| traced_job(&job, i, 0)).collect();
        }
        // Capture the caller's full ambient context — active span (so
        // per-job spans attach to it instead of becoming roots), trace id
        // (so spans stay attributable to the submitting job/request),
        // profiling stage (so worker allocations keep billing to the stage
        // that spawned them), and deadline (so jobs keep honouring it
        // off-thread) — in one snapshot each worker re-installs.
        let ambient = ambient_context();
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        // First panic payload wins; it is re-raised after the pool drains.
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let (sender, receiver) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            for worker in 0..self.workers.min(count) {
                let sender = sender.clone();
                let next = &next;
                let stop = &stop;
                let panicked = &panicked;
                let job = &job;
                let ambient = &ambient;
                scope.spawn(move || {
                    let _ambient = ambient.install();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        // AssertUnwindSafe: on panic the payload is
                        // re-raised to the caller and no partial results
                        // escape, so no broken invariant is observable.
                        match catch_unwind(AssertUnwindSafe(|| traced_job(job, i, worker))) {
                            // The receiver outlives the scope; send cannot
                            // fail unless a sibling panicked first.
                            Ok(value) => {
                                if sender.send((i, value)).is_err() {
                                    break;
                                }
                            }
                            Err(payload) => {
                                stop.store(true, Ordering::Relaxed);
                                let mut slot = panicked.lock().unwrap_or_else(|e| e.into_inner());
                                slot.get_or_insert(payload);
                                break;
                            }
                        }
                    }
                });
            }
        });
        drop(sender);
        if let Some(payload) = panicked.into_inner().unwrap_or_else(|e| e.into_inner()) {
            resume_unwind(payload);
        }
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        for (i, value) in receiver {
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced a result"))
            .collect()
    }

    /// Fallible variant: runs every job and returns the first error (by
    /// index order) if any failed.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing job.
    pub fn run_fallible<T, E, F>(&self, count: usize, job: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        let mut results = self.run(count, job);
        if let Some(pos) = results.iter().position(|r| r.is_err()) {
            // Take the first error out without cloning.
            return Err(results.swap_remove(pos).err().expect("checked is_err"));
        }
        results.into_iter().collect()
    }

    /// Runs `job` over an explicit set of tile indices (e.g. one colour
    /// band of a partition), passing each job its **tile index** rather
    /// than its position in the slice. Results align with `indices`.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest (by slice position) failing job.
    pub fn run_fallible_over<T, E, F>(&self, indices: &[usize], job: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        self.run_fallible(indices.len(), |k| job(indices[k]))
    }

    /// Recoverable variant of [`run_fallible_over`](Self::run_fallible_over):
    /// runs `job` over an explicit set of tile indices with per-tile retry
    /// and degradation semantics (see [`run_recoverable`](Self::run_recoverable)).
    /// The `tile` field of any [`TileFailure`] is the actual tile index,
    /// not the slice position.
    pub fn run_recoverable_over<T, F>(
        &self,
        indices: &[usize],
        policy: RetryPolicy,
        job: F,
    ) -> Vec<Result<T, TileFailure>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_recoverable(indices.len(), policy, |k| job(indices[k]))
            .into_iter()
            .map(|r| {
                r.map_err(|mut f| {
                    f.tile = indices[f.tile];
                    f
                })
            })
            .collect()
    }

    /// Recoverable variant: each job attempt runs under `catch_unwind` and
    /// panicking attempts are retried per `policy` (exponential backoff
    /// between attempts). A job that panics on every attempt yields
    /// `Err(TileFailure)` in its slot instead of taking down the whole run,
    /// so callers can substitute a degraded per-tile answer.
    ///
    /// This is also where the `tile.panic` / `tile.slow` fault-injection
    /// points live (see `ilt-fault`): injection happens inside the attempt,
    /// so an injected panic exercises exactly the retry and degradation
    /// machinery a real one would.
    pub fn run_recoverable<T, F>(
        &self,
        count: usize,
        policy: RetryPolicy,
        job: F,
    ) -> Vec<Result<T, TileFailure>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run(count, |i| {
            let mut attempt = 0;
            loop {
                attempt += 1;
                if fault::should_fire(fault::points::TILE_SLOW) {
                    std::thread::sleep(INJECTED_SLOWDOWN);
                }
                // AssertUnwindSafe: a panicking attempt's partial state is
                // dropped and either retried from scratch or surfaced as a
                // TileFailure; no partial result escapes.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if fault::should_fire(fault::points::TILE_PANIC) {
                        panic!(
                            "{} tile.panic (tile {i}, attempt {attempt})",
                            fault::INJECTED_PANIC_PREFIX
                        );
                    }
                    job(i)
                }));
                match outcome {
                    Ok(value) => return Ok(value),
                    Err(payload) => {
                        tele::counter_add("executor.tile_panics", 1);
                        if attempt >= policy.attempts {
                            return Err(TileFailure {
                                tile: i,
                                attempts: attempt,
                                message: panic_text(payload.as_ref()),
                            });
                        }
                        tele::counter_add("executor.tile_retries", 1);
                        let backoff = policy.backoff_for(attempt);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                    }
                }
            }
        })
    }
}

impl Default for TileExecutor {
    fn default() -> Self {
        TileExecutor::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = TileExecutor::sequential().run(10, |i| i * i);
        let par = TileExecutor::new(4).run(10, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(seq, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_index_ordered_despite_stealing() {
        let out = TileExecutor::new(3).run(32, |i| {
            // Make early jobs slow so later jobs finish first.
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let _ = TileExecutor::new(4).run(100, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_workers_treated_as_one() {
        let e = TileExecutor::new(0);
        assert_eq!(e.workers(), 1);
        assert_eq!(e.run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn inner_budget_never_oversubscribes() {
        // With `workers x inner <= cores` enforced (floor 1), an executor
        // that already saturates the cores leaves exactly one inner thread
        // per tile, whatever the environment requested.
        let cores = ilt_par::available_cores();
        assert_eq!(TileExecutor::new(cores).inner_budget().threads(), 1);
        assert_eq!(TileExecutor::new(cores * 4).inner_budget().threads(), 1);
    }

    #[test]
    fn empty_job_list() {
        let out: Vec<usize> = TileExecutor::new(4).run(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn fallible_success_and_failure() {
        let e = TileExecutor::new(2);
        let ok: Result<Vec<usize>, String> = e.run_fallible(4, Ok);
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3]);
        let err: Result<Vec<usize>, String> = e.run_fallible(4, |i| {
            if i >= 2 {
                Err(format!("job {i} failed"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(err.unwrap_err(), "job 2 failed");
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(TileExecutor::default().workers(), 1);
    }

    #[test]
    fn retry_policy_floors_attempts_and_scales_backoff() {
        let p = RetryPolicy::new(0, Duration::from_millis(4));
        assert_eq!(p.attempts, 1);
        assert_eq!(p.backoff_for(1), Duration::from_millis(4));
        assert_eq!(p.backoff_for(2), Duration::from_millis(8));
        assert_eq!(p.backoff_for(3), Duration::from_millis(16));
        assert_eq!(RetryPolicy::no_retry().attempts, 1);
        assert_eq!(RetryPolicy::default().attempts, 2);
    }

    #[test]
    fn recoverable_matches_run_when_nothing_panics() {
        let e = TileExecutor::new(3);
        let out = e.run_recoverable(8, RetryPolicy::default(), |i| i * 3);
        let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..8).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn recoverable_retries_flaky_jobs_to_success() {
        ilt_fault::quiet_injected_panics();
        let attempts: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        let out =
            TileExecutor::new(2).run_recoverable(6, RetryPolicy::new(3, Duration::ZERO), |i| {
                let n = attempts[i].fetch_add(1, Ordering::Relaxed);
                // Even tiles fail on their first two attempts, then succeed.
                if i % 2 == 0 && n < 2 {
                    panic!("{} flaky tile {i}", ilt_fault::INJECTED_PANIC_PREFIX);
                }
                i
            });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i);
        }
        for (i, a) in attempts.iter().enumerate() {
            let expected = if i % 2 == 0 { 3 } else { 1 };
            assert_eq!(a.load(Ordering::Relaxed), expected, "tile {i}");
        }
    }

    #[test]
    fn recoverable_surfaces_persistent_failures_without_aborting_others() {
        ilt_fault::quiet_injected_panics();
        let out =
            TileExecutor::new(4).run_recoverable(10, RetryPolicy::new(2, Duration::ZERO), |i| {
                if i == 7 {
                    panic!("{} always broken", ilt_fault::INJECTED_PANIC_PREFIX);
                }
                i * i
            });
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let failure = r.as_ref().unwrap_err();
                assert_eq!(failure.tile, 7);
                assert_eq!(failure.attempts, 2);
                assert!(failure.message.contains("always broken"));
                assert!(failure.to_string().contains("after 2 attempts"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * i);
            }
        }
    }

    #[test]
    fn recoverable_sequential_and_parallel_agree() {
        ilt_fault::quiet_injected_panics();
        let run = |workers: usize| -> Vec<Result<usize, usize>> {
            TileExecutor::new(workers)
                .run_recoverable(9, RetryPolicy::no_retry(), |i| {
                    if i % 4 == 1 {
                        panic!("{} tile {i}", ilt_fault::INJECTED_PANIC_PREFIX);
                    }
                    i
                })
                .into_iter()
                .map(|r| r.map_err(|f| f.tile))
                .collect()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn over_variants_pass_tile_indices_and_remap_failures() {
        ilt_fault::quiet_injected_panics();
        let band = [4usize, 7, 11];
        let ok: Result<Vec<usize>, String> =
            TileExecutor::new(2).run_fallible_over(&band, |i| Ok(i * 10));
        assert_eq!(ok.unwrap(), vec![40, 70, 110]);
        let out = TileExecutor::new(2).run_recoverable_over(&band, RetryPolicy::no_retry(), |i| {
            if i == 7 {
                panic!("{} tile {i}", ilt_fault::INJECTED_PANIC_PREFIX);
            }
            i
        });
        assert_eq!(*out[0].as_ref().unwrap(), 4);
        assert_eq!(out[1].as_ref().unwrap_err().tile, 7);
        assert_eq!(*out[2].as_ref().unwrap(), 11);
    }

    #[test]
    fn deadline_propagates_to_worker_threads() {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let _scope = ilt_fault::deadline::scope(Some(deadline));
        let seen = TileExecutor::new(4).run(8, |_| ilt_fault::deadline::current());
        assert!(seen.iter().all(|d| *d == Some(deadline)));
    }

    #[test]
    fn trace_propagates_to_worker_threads() {
        let (id, _scope) = tele::new_trace_scope();
        let seen = TileExecutor::new(4).run(8, |_| tele::current_trace());
        assert!(seen.iter().all(|t| *t == Some(id)), "{seen:?}");
    }

    #[test]
    fn stage_propagates_to_worker_threads() {
        let _scope = ilt_prof::stage_scope(ilt_prof::Stage::Refine);
        let seen = TileExecutor::new(4).run(8, |_| ilt_prof::current_stage());
        assert!(
            seen.iter().all(|s| *s == ilt_prof::Stage::Refine),
            "{seen:?}"
        );
    }
}

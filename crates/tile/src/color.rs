//! Multi-colouring of the tile lattice for the multiplicative Schwarz
//! refine pass (Section 3.4 of the paper): tiles of the same colour never
//! overlap, so they can be optimised in parallel while tiles of other
//! colours stay fixed.

use crate::partition::Partition;

/// A colour assignment over the tiles of a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<usize>,
    count: usize,
}

impl Coloring {
    /// Colour of tile `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn color(&self, index: usize) -> usize {
        self.colors[index]
    }

    /// Number of distinct colours.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// All tile indices of one colour.
    pub fn tiles_of(&self, color: usize) -> Vec<usize> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == color)
            .map(|(i, _)| i)
            .collect()
    }

    /// Colours in processing order, each with its tile set.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        (0..self.count).map(|c| self.tiles_of(c)).collect()
    }
}

/// Per-axis colour modulus: the smallest `m` such that tiles `m` lattice
/// steps apart along the axis never overlap, read off the actual tile
/// origins. For uniform stride-spaced origins this is 2 (overlap < twice
/// the stride), but a clamped last column can reach back over an extra
/// step, requiring 3 along that axis.
fn axis_modulus(origins: &[usize], tile: usize) -> usize {
    let mut m = 1;
    for (i, &a) in origins.iter().enumerate() {
        let reach = origins[i + 1..]
            .iter()
            .take_while(|&&b| b < a + tile)
            .count();
        m = m.max(reach + 1);
    }
    m
}

/// Builds the block colouring with per-axis moduli derived from the actual
/// tile origins: for uniform lattices this is the classic 2x2 colouring
/// (four colours, fewer on thin lattices); clamped last rows/columns widen
/// the modulus along their axis so same-colour tiles still never overlap.
pub fn multi_coloring(partition: &Partition) -> Coloring {
    let nx = partition.tiles_x();
    let ny = partition.tiles_y();
    let tile = partition.config().tile;
    let xs: Vec<usize> = (0..nx)
        .map(|c| partition.tile(c).rect.x0 as usize)
        .collect();
    let ys: Vec<usize> = (0..ny)
        .map(|r| partition.tile(r * nx).rect.y0 as usize)
        .collect();
    let cx = axis_modulus(&xs, tile);
    let cy = axis_modulus(&ys, tile);
    let colors: Vec<usize> = partition
        .tiles()
        .iter()
        .map(|t| {
            let (col, row) = t.grid_pos;
            (row % cy) * cx + (col % cx)
        })
        .collect();
    let count = cx * cy;
    Coloring { colors, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{Partition, PartitionConfig};

    fn partition() -> Partition {
        Partition::new(
            256,
            256,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap()
    }

    #[test]
    fn four_colors_for_a_grid() {
        let c = multi_coloring(&partition());
        assert_eq!(c.count(), 4);
        // 3x3 lattice: colour 0 appears at (0,0), (2,0), (0,2), (2,2).
        assert_eq!(c.tiles_of(0), vec![0, 2, 6, 8]);
    }

    #[test]
    fn same_color_tiles_never_overlap() {
        let p = partition();
        let c = multi_coloring(&p);
        for group in c.groups() {
            for (a_pos, &a) in group.iter().enumerate() {
                for &b in group.iter().skip(a_pos + 1) {
                    assert!(
                        !p.tile(a).rect.overlaps(p.tile(b).rect),
                        "tiles {a} and {b} share colour and overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn groups_cover_all_tiles_once() {
        let p = partition();
        let c = multi_coloring(&p);
        let mut seen = vec![false; p.tiles().len()];
        for group in c.groups() {
            for idx in group {
                assert!(!seen[idx], "tile {idx} coloured twice");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn clamped_lattices_widen_the_modulus() {
        // 300 = 128 + 2*64 + 44: the clamped fourth column (origin 172)
        // still overlaps the second (origin 64), so the x-axis needs three
        // colours for same-colour tiles to stay disjoint.
        let p = Partition::new(
            300,
            128,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        assert_eq!(p.tiles_x(), 4);
        let c = multi_coloring(&p);
        assert_eq!(c.count(), 3);
        assert_eq!(c.tiles_of(0), vec![0, 3]);
        for group in c.groups() {
            for (a_pos, &a) in group.iter().enumerate() {
                for &b in group.iter().skip(a_pos + 1) {
                    assert!(!p.tile(a).rect.overlaps(p.tile(b).rect));
                }
            }
        }
    }

    #[test]
    fn thin_lattices_use_fewer_colors() {
        let p = Partition::new(
            256,
            128,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        assert_eq!(p.tiles_y(), 1);
        let c = multi_coloring(&p);
        assert_eq!(c.count(), 2);
        let p = Partition::new(
            128,
            128,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        let c = multi_coloring(&p);
        assert_eq!(c.count(), 1);
    }
}

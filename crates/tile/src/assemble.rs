//! Restriction and interpolation operators: Eq. (6) (restricted additive
//! Schwarz assembly) and Eq. (12)–(14) (weighted-smoothing assembly).

use ilt_grid::RealGrid;

use crate::color::multi_coloring;
use crate::error::TileError;
use crate::partition::{Partition, Tile};

/// How tile results are interpolated back into the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssemblyMode {
    /// The RAS interpolation `R~_j^T` of Eq. (6): each tile contributes
    /// exactly its core section (hard cut at core boundaries).
    Restricted,
    /// The weighted interpolation `R'_j^T` of Eq. (14): a linear ramp of
    /// width `band` (the buffer `D` of Eq. (13) / Fig. 5) centered on each
    /// core boundary blends adjacent tiles; outside the band each pixel is
    /// taken verbatim from the tile whose core owns it. The per-tile
    /// weights form an exact partition of unity.
    Weighted {
        /// Ramp width `D` in pixels (clamped to the overlap).
        band: usize,
    },
    /// The multiplicative-Schwarz replacement operator: the indicator of
    /// the tile's **extended core** (core grown by `margin` into the
    /// overlap, clipped to the tile). Not a partition of unity — intended
    /// for sequential (multi-colour) updates where later tiles overwrite
    /// earlier ones so every boundary band ends up authored by exactly one
    /// tile.
    ExtendedCore {
        /// How far beyond the core the replacement reaches, in pixels.
        margin: usize,
    },
}

impl AssemblyMode {
    /// The weighted mode with the default buffer: a quarter of the overlap
    /// (`D = l / 2` at the paper's geometry).
    pub fn weighted_default(partition: &Partition) -> AssemblyMode {
        AssemblyMode::Weighted {
            band: (partition.config().overlap / 4).max(2),
        }
    }
}

/// The restriction operator `R_j`: crops the tile's extent out of the
/// layout.
///
/// # Panics
///
/// Panics if the tile rectangle is not fully inside the layout (cannot
/// happen for rectangles produced by [`Partition::new`]).
pub fn restrict(layout: &RealGrid, tile: &Tile) -> RealGrid {
    assert!(
        layout.bounds().contains_rect(tile.rect),
        "tile escapes layout"
    );
    layout.crop(tile.rect)
}

/// The per-tile interpolation weights as a tile-sized grid.
///
/// For [`AssemblyMode::Restricted`] this is the indicator of the core; for
/// [`AssemblyMode::Weighted`] it is the product of two 1-D ramps of width
/// `band`, each centered on a core boundary (Eq. (13): weight 1 deeper than
/// `D` into the own-core side, linear in between) and constant 1 on
/// boundary-free sides.
pub fn weight_map(partition: &Partition, tile_index: usize, mode: AssemblyMode) -> RealGrid {
    let tile = *partition.tile(tile_index);
    let t = partition.config().tile;
    match mode {
        AssemblyMode::Restricted => RealGrid::from_fn(t, t, |x, y| {
            let gx = tile.rect.x0 + x as i64;
            let gy = tile.rect.y0 + y as i64;
            if tile.core.contains(gx, gy) {
                1.0
            } else {
                0.0
            }
        }),
        AssemblyMode::ExtendedCore { margin } => {
            let extended = tile
                .core
                .outset(margin as i64)
                .intersect(tile.rect)
                .expect("extended core intersects its tile");
            RealGrid::from_fn(t, t, |x, y| {
                let gx = tile.rect.x0 + x as i64;
                let gy = tile.rect.y0 + y as i64;
                if extended.contains(gx, gy) {
                    1.0
                } else {
                    0.0
                }
            })
        }
        AssemblyMode::Weighted { band } => {
            let d = (band.max(1).min(partition.config().overlap)) as f64;
            let (col, row) = tile.grid_pos;
            let nx = partition.tiles_x();
            let ny = partition.tiles_y();
            // Signed distance of a pixel center from a core boundary; the
            // ramp runs from 0 at `-d/2` (outside own core) to 1 at `+d/2`.
            let ramp = |g: f64, boundary: f64, own_side_positive: bool| -> f64 {
                let dist = if own_side_positive {
                    g - boundary
                } else {
                    boundary - g
                };
                (0.5 + dist / d).clamp(0.0, 1.0)
            };
            // Per-axis weights combine that axis's two ramps with `min`
            // (both are never mid-ramp at once since the band fits in the
            // core); axes multiply so the corner regions, where four tiles
            // meet, still sum to exactly 1.
            RealGrid::from_fn(t, t, |x, y| {
                let gx = (tile.rect.x0 + x as i64) as f64 + 0.5;
                let gy = (tile.rect.y0 + y as i64) as f64 + 0.5;
                let mut wx = 1.0f64;
                if col > 0 {
                    wx = wx.min(ramp(gx, tile.core.x0 as f64, true));
                }
                if col < nx - 1 {
                    wx = wx.min(ramp(gx, tile.core.x1 as f64, false));
                }
                let mut wy = 1.0f64;
                if row > 0 {
                    wy = wy.min(ramp(gy, tile.core.y0 as f64, true));
                }
                if row < ny - 1 {
                    wy = wy.min(ramp(gy, tile.core.y1 as f64, false));
                }
                wx * wy
            })
        }
    }
}

/// The per-tile interpolation weights renormalized to an exact partition
/// of unity.
///
/// [`weight_map`]'s ramps already sum to 1 wherever exactly the two tiles
/// adjacent across a cut share a ramp zone — the uniform-lattice interior.
/// At clamped last rows/columns of a non-divisible M×N grid (and for wide
/// bands on narrow clamped cores) more than two tiles can be mid-ramp at a
/// pixel, so this divides each raw weight by the pixelwise sum of all
/// covering tiles' raw weights. The denominator is accumulated in ascending
/// tile-index order so every tile sharing a pixel computes a bitwise
/// identical sum. [`AssemblyMode::Restricted`] is already exact (disjoint
/// cores) and [`AssemblyMode::ExtendedCore`] is intentionally not a
/// partition of unity; both return the raw map unchanged.
pub fn normalized_weight_map(
    partition: &Partition,
    tile_index: usize,
    mode: AssemblyMode,
) -> RealGrid {
    let raw = weight_map(partition, tile_index, mode);
    if !matches!(mode, AssemblyMode::Weighted { .. }) {
        return raw;
    }
    let tile = *partition.tile(tile_index);
    let t = partition.config().tile;
    let mut contributors = partition.neighbors(tile_index);
    contributors.push(tile_index);
    contributors.sort_unstable();
    let mut denom = RealGrid::new(t, t, 0.0);
    for j in contributors {
        let other = *partition.tile(j);
        let w = if j == tile_index {
            raw.clone()
        } else {
            weight_map(partition, j, mode)
        };
        let Some(shared) = tile.rect.intersect(other.rect) else {
            continue;
        };
        for (gx, gy) in shared.pixels() {
            let (x, y) = ((gx - tile.rect.x0) as usize, (gy - tile.rect.y0) as usize);
            let (ox, oy) = ((gx - other.rect.x0) as usize, (gy - other.rect.y0) as usize);
            let v = denom.get(x, y) + w.get(ox, oy);
            denom.set(x, y, v);
        }
    }
    RealGrid::from_fn(t, t, |x, y| {
        let d = denom.get(x, y);
        if d > 0.0 {
            raw.get(x, y) / d
        } else {
            0.0
        }
    })
}

/// Incremental (bounded-memory) assembly: tiles are folded into the output
/// one at a time, in the canonical colour-band order, so a producer that
/// solves tiles colour by colour only ever keeps one colour band of fine
/// tiles resident instead of all `T`.
///
/// f64 addition is not associative, so streamed and batch assembly are only
/// bit-identical if both fold in one fixed order; the assembler therefore
/// enforces its [`canonical_order`](Self::canonical_order) on `push`, and
/// the batch [`assemble`] delegates here pushing in the same order.
///
/// [`finish`](Self::finish) verifies the pixel-sum invariant: the
/// normalized weights accumulated over all pushes must cover every pixel
/// with total weight 1 (exact for [`AssemblyMode::Restricted`], to 1e-6
/// for [`AssemblyMode::Weighted`]).
#[derive(Debug, Clone)]
pub struct StreamingAssembler<'a> {
    partition: &'a Partition,
    mode: AssemblyMode,
    order: Vec<usize>,
    cursor: usize,
    out: RealGrid,
    coverage: RealGrid,
}

impl<'a> StreamingAssembler<'a> {
    /// Creates an assembler for one full pass over `partition`'s tiles.
    ///
    /// # Panics
    ///
    /// Panics on [`AssemblyMode::ExtendedCore`], which is not a partition
    /// of unity and only meaningful for sequential in-place replacement.
    pub fn new(partition: &'a Partition, mode: AssemblyMode) -> Self {
        assert!(
            !matches!(mode, AssemblyMode::ExtendedCore { .. }),
            "extended-core replacement is sequential, not an additive assembly"
        );
        let order: Vec<usize> = multi_coloring(partition)
            .groups()
            .into_iter()
            .flatten()
            .collect();
        StreamingAssembler {
            partition,
            mode,
            order,
            cursor: 0,
            out: RealGrid::new(partition.width(), partition.height(), 0.0),
            coverage: RealGrid::new(partition.width(), partition.height(), 0.0),
        }
    }

    /// The fold order `push` enforces: colour groups in colour order, tiles
    /// in index order within each group.
    #[inline]
    pub fn canonical_order(&self) -> &[usize] {
        &self.order
    }

    /// Number of tiles folded so far.
    #[inline]
    pub fn pushed(&self) -> usize {
        self.cursor
    }

    /// Folds one tile's contribution into the output. `data` can be dropped
    /// immediately afterwards — nothing per-tile is retained.
    ///
    /// # Errors
    ///
    /// * [`TileError::StreamOrder`] if `tile_index` is not the next tile in
    ///   [`canonical_order`](Self::canonical_order);
    /// * [`TileError::AssemblyMismatch`] if `data` is not tile-sized or
    ///   every tile was already pushed.
    pub fn push(&mut self, tile_index: usize, data: &RealGrid) -> Result<(), TileError> {
        let total = self.order.len();
        let Some(&expected) = self.order.get(self.cursor) else {
            return Err(TileError::AssemblyMismatch {
                expected: total,
                actual: total + 1,
            });
        };
        if tile_index != expected {
            return Err(TileError::StreamOrder {
                expected,
                actual: tile_index,
            });
        }
        let t = self.partition.config().tile;
        if data.width() != t || data.height() != t {
            return Err(TileError::AssemblyMismatch {
                expected: total,
                actual: total,
            });
        }
        let tile = *self.partition.tile(tile_index);
        let w = normalized_weight_map(self.partition, tile_index, self.mode);
        for y in 0..t {
            let gy = tile.rect.y0 as usize + y;
            for x in 0..t {
                let weight = w.get(x, y);
                if weight == 0.0 {
                    continue;
                }
                let gx = tile.rect.x0 as usize + x;
                self.out
                    .set(gx, gy, self.out.get(gx, gy) + weight * data.get(x, y));
                self.coverage
                    .set(gx, gy, self.coverage.get(gx, gy) + weight);
            }
        }
        self.cursor += 1;
        Ok(())
    }

    /// Validates that every tile was pushed and the pixel-sum invariant
    /// holds, then returns the assembled layout.
    ///
    /// # Errors
    ///
    /// Returns [`TileError::AssemblyMismatch`] if fewer tiles were pushed
    /// than the partition has.
    ///
    /// # Panics
    ///
    /// Panics if the accumulated weights do not cover some pixel with total
    /// weight 1 — a partition-of-unity bug, not a caller error.
    pub fn finish(self) -> Result<RealGrid, TileError> {
        if self.cursor != self.order.len() {
            return Err(TileError::AssemblyMismatch {
                expected: self.order.len(),
                actual: self.cursor,
            });
        }
        let tolerance = match self.mode {
            AssemblyMode::Restricted => 0.0,
            _ => 1e-6,
        };
        for (x, y, &c) in self.coverage.iter() {
            assert!(
                (c - 1.0).abs() <= tolerance,
                "pixel-sum invariant violated at ({x}, {y}): total weight {c}"
            );
        }
        ilt_telemetry::counter_add(
            "tile.pixels_assembled",
            (self.partition.width() * self.partition.height()) as u64,
        );
        Ok(self.out)
    }
}

/// Assembles per-tile results into a full layout:
/// `M = sum_j W_j . M_j` with `W_j` from [`normalized_weight_map`].
///
/// Delegates to [`StreamingAssembler`], pushing in the canonical
/// colour-band order, so batch and streamed assembly are bit-identical.
/// [`AssemblyMode::ExtendedCore`] (not a partition of unity) keeps a
/// direct accumulation path in tile-index order.
///
/// # Errors
///
/// Returns [`TileError::AssemblyMismatch`] if the number or shape of the
/// tile grids does not match the partition.
pub fn assemble(
    partition: &Partition,
    tiles: &[RealGrid],
    mode: AssemblyMode,
) -> Result<RealGrid, TileError> {
    if tiles.len() != partition.tiles().len() {
        return Err(TileError::AssemblyMismatch {
            expected: partition.tiles().len(),
            actual: tiles.len(),
        });
    }
    let t = partition.config().tile;
    for data in tiles {
        if data.width() != t || data.height() != t {
            return Err(TileError::AssemblyMismatch {
                expected: partition.tiles().len(),
                actual: tiles.len(),
            });
        }
    }
    if let AssemblyMode::ExtendedCore { .. } = mode {
        let mut out = RealGrid::new(partition.width(), partition.height(), 0.0);
        for (tile, data) in partition.tiles().iter().zip(tiles) {
            let w = weight_map(partition, tile.index, mode);
            for y in 0..t {
                let gy = tile.rect.y0 as usize + y;
                for x in 0..t {
                    let weight = w.get(x, y);
                    if weight == 0.0 {
                        continue;
                    }
                    let gx = tile.rect.x0 as usize + x;
                    let v = out.get(gx, gy) + weight * data.get(x, y);
                    out.set(gx, gy, v);
                }
            }
        }
        ilt_telemetry::counter_add(
            "tile.pixels_assembled",
            (partition.width() * partition.height()) as u64,
        );
        return Ok(out);
    }
    let mut assembler = StreamingAssembler::new(partition, mode);
    for i in 0..assembler.canonical_order().len() {
        let index = assembler.canonical_order()[i];
        assembler.push(index, &tiles[index])?;
    }
    assembler.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionConfig;
    use ilt_grid::Grid;

    fn partition() -> Partition {
        Partition::new(
            256,
            256,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap()
    }

    #[test]
    fn restrict_crops_tile_extent() {
        let p = partition();
        let layout = Grid::from_fn(256, 256, |x, y| (x + y) as f64);
        let t = p.tile(4);
        let cropped = restrict(&layout, t);
        assert_eq!(cropped.width(), 128);
        assert_eq!(cropped.get(0, 0), layout.get(64, 64));
    }

    #[test]
    fn restricted_weights_are_core_indicator() {
        let p = partition();
        let w = weight_map(&p, 4, AssemblyMode::Restricted);
        // Core of center tile is [96,160) globally = [32,96) locally.
        assert_eq!(w.get(32, 32), 1.0);
        assert_eq!(w.get(95, 95), 1.0);
        assert_eq!(w.get(31, 32), 0.0);
        assert_eq!(w.get(96, 32), 0.0);
    }

    #[test]
    fn weighted_weights_ramp_across_band() {
        let p = partition();
        // Center tile: cores span [96,160) globally = [32,96) locally; the
        // default band is overlap/4 = 16 px centered on each core boundary.
        let mode = AssemblyMode::weighted_default(&p);
        assert_eq!(mode, AssemblyMode::Weighted { band: 16 });
        let w = weight_map(&p, 4, mode);
        // Outside the band towards the tile edge: weight 0.
        assert_eq!(w.get(0, 64), 0.0);
        assert_eq!(w.get(23, 64), 0.0);
        // Exactly on the core boundary: 0.5.
        assert!((w.get(32, 64) - 0.5).abs() < 0.04);
        // Past the band into the own core: weight 1.
        assert_eq!(w.get(40, 64), 1.0);
        assert_eq!(w.get(64, 64), 1.0);
        // Corner tile has no ramp on the layout side.
        let w0 = weight_map(&p, 0, mode);
        assert_eq!(w0.get(0, 0), 1.0);
        assert_eq!(w0.get(127, 0), 0.0);
    }

    #[test]
    fn explicit_band_width_controls_ramp_extent() {
        let p = partition();
        let narrow = weight_map(&p, 4, AssemblyMode::Weighted { band: 4 });
        let wide = weight_map(&p, 4, AssemblyMode::Weighted { band: 32 });
        // Narrow band saturates sooner.
        assert_eq!(narrow.get(35, 64), 1.0);
        assert!(wide.get(35, 64) < 1.0);
        // Band is clamped to the overlap; an enormous band must not panic.
        let huge = weight_map(&p, 4, AssemblyMode::Weighted { band: 10_000 });
        assert!(huge.get(64, 64) > 0.0);
    }

    #[test]
    fn weights_form_partition_of_unity() {
        let p = partition();
        for mode in [
            AssemblyMode::Restricted,
            AssemblyMode::weighted_default(&p),
            AssemblyMode::Weighted { band: 4 },
        ] {
            let mut total = Grid::new(256, 256, 0.0);
            for tile in p.tiles() {
                let w = weight_map(&p, tile.index, mode);
                total.paste(
                    &RealGrid::from_fn(128, 128, |x, y| {
                        total.get(tile.rect.x0 as usize + x, tile.rect.y0 as usize + y)
                            + w.get(x, y)
                    }),
                    tile.rect.x0,
                    tile.rect.y0,
                );
            }
            for (_, _, &v) in total.iter() {
                assert!((v - 1.0).abs() < 1e-12, "{mode:?}: weight sum {v}");
            }
        }
    }

    #[test]
    fn assembling_restrictions_reconstructs_layout() {
        // Cropping a layout into tiles and assembling must reproduce it for
        // both modes (consistency of R and R^T on consistent data).
        let p = partition();
        let layout = Grid::from_fn(256, 256, |x, y| ((x * 31 + y * 7) % 13) as f64);
        let crops: Vec<RealGrid> = p.tiles().iter().map(|t| restrict(&layout, t)).collect();
        for mode in [
            AssemblyMode::Restricted,
            AssemblyMode::weighted_default(&p),
            AssemblyMode::Weighted { band: 4 },
        ] {
            let rebuilt = assemble(&p, &crops, mode).unwrap();
            let mut worst: f64 = 0.0;
            for y in 0..256 {
                for x in 0..256 {
                    worst = worst.max((rebuilt.get(x, y) - layout.get(x, y)).abs());
                }
            }
            assert!(worst < 1e-12, "{mode:?}: reconstruction error {worst}");
        }
    }

    #[test]
    fn weighted_assembly_blends_disagreeing_tiles() {
        // Two tiles disagreeing in the overlap: restricted assembly jumps at
        // the core boundary, weighted assembly ramps linearly.
        let p = Partition::new(
            192,
            128,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        assert_eq!(p.tiles().len(), 2);
        let tiles = vec![Grid::new(128, 128, 0.0), Grid::new(128, 128, 1.0)];
        let hard = assemble(&p, &tiles, AssemblyMode::Restricted).unwrap();
        let soft = assemble(&p, &tiles, AssemblyMode::Weighted { band: 32 }).unwrap();
        // Hard: a step at x = 96 (core boundary).
        assert_eq!(hard.get(95, 64), 0.0);
        assert_eq!(hard.get(96, 64), 1.0);
        // Soft: the core boundary (x = 96, band center) blends to ~0.5.
        assert!((soft.get(96, 64) - 0.5).abs() < 0.03);
        // Soft is monotone across the overlap.
        for x in 65..128 {
            assert!(soft.get(x, 64) >= soft.get(x - 1, 64) - 1e-12);
        }
    }

    #[test]
    fn extended_core_is_indicator_of_grown_core() {
        let p = partition();
        // Center tile: core [96,160) globally = [32,96) locally; margin 8
        // grows it to [88,168) globally = [24,104) locally.
        let w = weight_map(&p, 4, AssemblyMode::ExtendedCore { margin: 8 });
        assert_eq!(w.get(24, 64), 1.0);
        assert_eq!(w.get(103, 64), 1.0);
        assert_eq!(w.get(23, 64), 0.0);
        assert_eq!(w.get(104, 64), 0.0);
        // Weights are exactly 0/1.
        assert!(w.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn extended_core_clips_to_tile() {
        let p = partition();
        // A margin larger than the tile margin must clip to the tile rect
        // without panicking.
        let w = weight_map(&p, 0, AssemblyMode::ExtendedCore { margin: 1000 });
        assert_eq!(w.get(0, 0), 1.0);
        assert_eq!(w.get(127, 127), 1.0);
    }

    #[test]
    fn sequential_extended_core_updates_author_bands_consistently() {
        // Simulate the multiplicative pass: two tiles, the second replaces
        // its extended core after the first; the shared band must end up
        // authored entirely by the later tile.
        let p = Partition::new(
            192,
            128,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        let mut layout = RealGrid::new(192, 128, 0.5);
        for (idx, value) in [(0usize, 0.2), (1usize, 0.9)] {
            let tile = p.tile(idx);
            let w = weight_map(&p, idx, AssemblyMode::ExtendedCore { margin: 8 });
            let data = RealGrid::new(128, 128, value);
            for y in 0..128 {
                for x in 0..128 {
                    if w.get(x, y) != 0.0 {
                        layout.set(
                            tile.rect.x0 as usize + x,
                            tile.rect.y0 as usize + y,
                            data.get(x, y),
                        );
                    }
                }
            }
        }
        // Core boundary at x = 96: band [88, 104) belongs to the later tile.
        assert_eq!(layout.get(90, 64), 0.9);
        assert_eq!(layout.get(100, 64), 0.9);
        // Outside both extended cores... everything is covered here; the
        // early tile's exclusive region keeps its value.
        assert_eq!(layout.get(10, 64), 0.2);
    }

    #[test]
    fn normalized_weights_form_partition_of_unity_on_clamped_grids() {
        // 300x200: both axes clamp, so border/corner tiles see asymmetric
        // neighbour counts and raw ramps alone would not always sum to 1.
        let p = Partition::new(
            300,
            200,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        for mode in [
            AssemblyMode::Restricted,
            AssemblyMode::weighted_default(&p),
            AssemblyMode::Weighted { band: 48 },
        ] {
            let mut total = Grid::new(300, 200, 0.0);
            for tile in p.tiles() {
                let w = normalized_weight_map(&p, tile.index, mode);
                for y in 0..128 {
                    for x in 0..128 {
                        let gx = tile.rect.x0 as usize + x;
                        let gy = tile.rect.y0 as usize + y;
                        total.set(gx, gy, total.get(gx, gy) + w.get(x, y));
                    }
                }
            }
            for (x, y, &v) in total.iter() {
                assert!(
                    (v - 1.0).abs() < 1e-9,
                    "{mode:?}: weight sum {v} at ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn streamed_assembly_is_bit_identical_to_batch() {
        for (w, h) in [(256, 256), (300, 200)] {
            let p = Partition::new(
                w,
                h,
                PartitionConfig {
                    tile: 128,
                    overlap: 64,
                },
            )
            .unwrap();
            let tiles: Vec<RealGrid> = p
                .tiles()
                .iter()
                .map(|t| {
                    Grid::from_fn(128, 128, |x, y| {
                        ((x * 13 + y * 29 + t.index * 7) % 17) as f64 / 17.0
                    })
                })
                .collect();
            for mode in [AssemblyMode::Restricted, AssemblyMode::weighted_default(&p)] {
                let batch = assemble(&p, &tiles, mode).unwrap();
                let mut streaming = StreamingAssembler::new(&p, mode);
                for i in 0..streaming.canonical_order().len() {
                    let idx = streaming.canonical_order()[i];
                    streaming.push(idx, &tiles[idx]).unwrap();
                }
                let streamed = streaming.finish().unwrap();
                assert_eq!(
                    batch.as_slice(),
                    streamed.as_slice(),
                    "{mode:?} at {w}x{h}: streamed and batch must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn streaming_assembler_enforces_canonical_order() {
        let p = partition();
        let data = Grid::new(128, 128, 0.5);
        let mut asm = StreamingAssembler::new(&p, AssemblyMode::Restricted);
        let first = asm.canonical_order()[0];
        let second = asm.canonical_order()[1];
        // Wrong tile first: rejected with the expected index.
        assert_eq!(
            asm.push(second, &data),
            Err(TileError::StreamOrder {
                expected: first,
                actual: second
            })
        );
        asm.push(first, &data).unwrap();
        assert_eq!(asm.pushed(), 1);
        // Pushing the same tile again is also out of order.
        assert!(matches!(
            asm.push(first, &data),
            Err(TileError::StreamOrder { .. })
        ));
        // Wrong shape: rejected.
        assert!(matches!(
            asm.push(second, &Grid::new(64, 64, 0.0)),
            Err(TileError::AssemblyMismatch { .. })
        ));
        // Finishing early: rejected with the push count.
        assert_eq!(
            asm.finish(),
            Err(TileError::AssemblyMismatch {
                expected: 9,
                actual: 1
            })
        );
    }

    #[test]
    fn assemble_validates_input() {
        let p = partition();
        let too_few = vec![Grid::new(128, 128, 0.0); 4];
        assert!(matches!(
            assemble(&p, &too_few, AssemblyMode::Restricted),
            Err(TileError::AssemblyMismatch { .. })
        ));
        let wrong_size = vec![Grid::new(64, 64, 0.0); 9];
        assert!(matches!(
            assemble(&p, &wrong_size, AssemblyMode::weighted_default(&p)),
            Err(TileError::AssemblyMismatch { .. })
        ));
    }
}

//! # ilt-tile
//!
//! Overlapping tile partitioning and Schwarz-style assembly for full-chip
//! ILT — the domain-decomposition substrate of the paper.
//!
//! * [`Partition`] — the Fig. 2 strategy: full-size overlapping tiles,
//!   disjoint core sections, stitch lines on shared core boundaries;
//! * [`restrict`] / [`assemble`] — the `R_j`, `R~_j^T` (Eq. (6)) and
//!   `R'_j^T` (Eq. (12)–(14)) operators; weighted assembly uses exact
//!   partition-of-unity ramps across overlaps (renormalized at clamped
//!   borders by [`normalized_weight_map`]);
//! * [`StreamingAssembler`] — bounded-memory assembly: tiles fold into the
//!   layout one colour band at a time, bit-identical to [`assemble`];
//! * [`multi_coloring`] — the colouring of Section 3.4 (no two overlapping
//!   tiles share a colour), enabling the parallel multiplicative refine;
//! * [`TileExecutor`] — a work-stealing thread pool standing in for the
//!   paper's one-GPU-per-tile execution.
//!
//! # Examples
//!
//! ```
//! use ilt_grid::Grid;
//! use ilt_tile::{assemble, restrict, AssemblyMode, Partition, PartitionConfig};
//!
//! # fn main() -> Result<(), ilt_tile::TileError> {
//! let partition = Partition::new(256, 256, PartitionConfig { tile: 128, overlap: 64 })?;
//! let layout = Grid::from_fn(256, 256, |x, y| ((x ^ y) & 1) as f64);
//! let tiles: Vec<_> = partition.tiles().iter().map(|t| restrict(&layout, t)).collect();
//! let rebuilt = assemble(&partition, &tiles, AssemblyMode::weighted_default(&partition))?;
//! assert!((rebuilt.get(100, 100) - layout.get(100, 100)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assemble;
mod color;
mod error;
mod executor;
mod partition;

pub use assemble::{
    assemble, normalized_weight_map, restrict, weight_map, AssemblyMode, StreamingAssembler,
};
pub use color::{multi_coloring, Coloring};
pub use error::TileError;
pub use executor::{
    ambient_context, register_ambient_slots, RetryPolicy, TileExecutor, TileFailure,
};
pub use partition::{Orientation, Partition, PartitionConfig, StitchLine, Tile};

//! The tile partition strategy of Fig. 2: overlapping tiles, disjoint core
//! sections, and the stitch lines where cores meet.

use ilt_grid::Rect;

use crate::error::TileError;

/// Parameters of the overlapping partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Tile edge length (the litho simulator input size).
    pub tile: usize,
    /// Total overlap `2l` between adjacent tiles; the stride between tile
    /// origins is `tile - overlap`.
    pub overlap: usize,
}

impl PartitionConfig {
    /// The paper's geometry: overlap of half a tile (2 x 512 at tile 2048;
    /// here expressed as a ratio so it holds at any tile size).
    pub fn paper_ratio(tile: usize) -> Self {
        PartitionConfig {
            tile,
            overlap: tile / 2,
        }
    }

    /// Stride between adjacent tile origins.
    pub fn stride(&self) -> usize {
        self.tile - self.overlap
    }

    /// Margin `l` between a tile edge and its core section.
    pub fn margin(&self) -> usize {
        self.overlap / 2
    }
}

/// One tile: its extent and its core section in layout coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Index into [`Partition::tiles`].
    pub index: usize,
    /// Position `(col, row)` in the tile lattice.
    pub grid_pos: (usize, usize),
    /// Tile extent (always `tile x tile`).
    pub rect: Rect,
    /// Core section: the part of the tile this tile alone contributes to a
    /// restricted assembly. Cores partition the layout.
    pub core: Rect,
}

/// Orientation of a stitch line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// A vertical line (constant `x`) between horizontally adjacent cores.
    Vertical,
    /// A horizontal line (constant `y`) between vertically adjacent cores.
    Horizontal,
}

/// A shared boundary between two adjacent core sections — the locus where
/// stitching discontinuities appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StitchLine {
    /// Line orientation.
    pub orientation: Orientation,
    /// The constant coordinate: `x` for vertical lines, `y` for horizontal.
    pub position: usize,
    /// Extent of the line along its axis (full layout span).
    pub start: usize,
    /// Exclusive end along the axis.
    pub end: usize,
}

/// An overlapping tile partition of a `width x height` layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    width: usize,
    height: usize,
    config: PartitionConfig,
    nx: usize,
    ny: usize,
    tiles: Vec<Tile>,
}

/// Tile origins along one axis: stride-spaced, with the last origin clamped
/// to `extent - tile` when the extent is not `tile + k * stride`. Origins
/// are strictly increasing, so adjacent tiles always overlap by at least
/// `overlap` (clamping only ever increases an overlap, never the stride).
fn axis_origins(extent: usize, tile: usize, stride: usize) -> Vec<usize> {
    if extent == tile {
        return vec![0];
    }
    let n = (extent - tile).div_ceil(stride) + 1;
    (0..n).map(|i| (i * stride).min(extent - tile)).collect()
}

/// Core cut positions along one axis: the midpoint `(a + b + tile) / 2`
/// between consecutive tile origins `a < b`, so the two cores meet exactly
/// (disjoint, covering) even when the last origin was clamped. For uniform
/// stride this reduces to `a + tile - overlap/2`, i.e. the classic
/// margin-`l` inset.
fn axis_cuts(origins: &[usize], tile: usize, extent: usize) -> Vec<(usize, usize)> {
    let mut bounds = Vec::with_capacity(origins.len());
    for (i, &a) in origins.iter().enumerate() {
        let lo = if i == 0 {
            0
        } else {
            (origins[i - 1] + a + tile) / 2
        };
        let hi = if i + 1 == origins.len() {
            extent
        } else {
            (a + origins[i + 1] + tile) / 2
        };
        bounds.push((lo, hi));
    }
    bounds
}

impl Partition {
    /// Builds the partition.
    ///
    /// Tile origins are stride-spaced; when a layout edge is not
    /// `tile + k * stride`, the last row/column is clamped flush with the
    /// layout boundary (all tiles stay full-size, which keeps every FFT
    /// power-of-two). Core boundaries are the midpoints between adjacent
    /// tile origins, so cores stay exactly disjoint and covering — clamped
    /// tiles never double-cover seam pixels.
    ///
    /// # Errors
    ///
    /// * [`TileError::BadOverlap`] unless `0 < overlap < tile` and `overlap`
    ///   is even;
    /// * [`TileError::LayoutTooSmall`] if the layout cannot hold one tile.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_tile::{Partition, PartitionConfig};
    ///
    /// // The paper's 3x3 geometry at 1/16 scale.
    /// let p = Partition::new(256, 256, PartitionConfig { tile: 128, overlap: 64 })?;
    /// assert_eq!(p.tiles().len(), 9);
    /// # Ok::<(), ilt_tile::TileError>(())
    /// ```
    pub fn new(width: usize, height: usize, config: PartitionConfig) -> Result<Self, TileError> {
        if config.overlap == 0 || !config.overlap.is_multiple_of(2) || config.overlap >= config.tile
        {
            return Err(TileError::BadOverlap {
                tile: config.tile,
                overlap: config.overlap,
            });
        }
        if width < config.tile || height < config.tile {
            return Err(TileError::LayoutTooSmall {
                layout: (width, height),
                tile: config.tile,
            });
        }
        let stride = config.stride();
        let xs = axis_origins(width, config.tile, stride);
        let ys = axis_origins(height, config.tile, stride);
        let x_cores = axis_cuts(&xs, config.tile, width);
        let y_cores = axis_cuts(&ys, config.tile, height);
        let nx = xs.len();
        let ny = ys.len();
        let mut tiles = Vec::with_capacity(nx * ny);
        for (row, (&y0, &(cy0, cy1))) in ys.iter().zip(&y_cores).enumerate() {
            for (col, (&x0, &(cx0, cx1))) in xs.iter().zip(&x_cores).enumerate() {
                let rect = Rect::from_origin_size(
                    x0 as i64,
                    y0 as i64,
                    config.tile as i64,
                    config.tile as i64,
                );
                let core = Rect::new(cx0 as i64, cy0 as i64, cx1 as i64, cy1 as i64);
                tiles.push(Tile {
                    index: row * nx + col,
                    grid_pos: (col, row),
                    rect,
                    core,
                });
            }
        }
        Ok(Partition {
            width,
            height,
            config,
            nx,
            ny,
            tiles,
        })
    }

    /// Layout width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Layout height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The configuration this partition was built with.
    #[inline]
    pub fn config(&self) -> PartitionConfig {
        self.config
    }

    /// Tiles per row.
    #[inline]
    pub fn tiles_x(&self) -> usize {
        self.nx
    }

    /// Tiles per column.
    #[inline]
    pub fn tiles_y(&self) -> usize {
        self.ny
    }

    /// All tiles in row-major order.
    #[inline]
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// One tile by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn tile(&self, index: usize) -> &Tile {
        &self.tiles[index]
    }

    /// Indices of tiles whose extents overlap tile `index` (the neighbour
    /// set `N_j` of Eq. (11)).
    pub fn neighbors(&self, index: usize) -> Vec<usize> {
        let me = &self.tiles[index];
        self.tiles
            .iter()
            .filter(|t| t.index != index && t.rect.overlaps(me.rect))
            .map(|t| t.index)
            .collect()
    }

    /// The stitch lines: all interior core boundaries, read off the actual
    /// core rects so they stay correct for clamped (non-divisible) layouts.
    pub fn stitch_lines(&self) -> Vec<StitchLine> {
        let mut lines = Vec::new();
        for col in 1..self.nx {
            lines.push(StitchLine {
                orientation: Orientation::Vertical,
                position: self.tiles[col - 1].core.x1 as usize,
                start: 0,
                end: self.height,
            });
        }
        for row in 1..self.ny {
            lines.push(StitchLine {
                orientation: Orientation::Horizontal,
                position: self.tiles[(row - 1) * self.nx].core.y1 as usize,
                start: 0,
                end: self.width,
            });
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_partition() -> Partition {
        Partition::new(
            256,
            256,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap()
    }

    #[test]
    fn paper_geometry_is_three_by_three() {
        let p = paper_partition();
        assert_eq!(p.tiles_x(), 3);
        assert_eq!(p.tiles_y(), 3);
        assert_eq!(p.tiles().len(), 9);
        assert_eq!(p.width(), 256);
        assert_eq!(p.config().margin(), 32);
    }

    #[test]
    fn tiles_are_full_size_and_cover_layout() {
        let p = paper_partition();
        let mut covered = vec![false; 256 * 256];
        for t in p.tiles() {
            assert_eq!(t.rect.width(), 128);
            assert_eq!(t.rect.height(), 128);
            for (x, y) in t.rect.pixels() {
                covered[y as usize * 256 + x as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn cores_partition_layout_exactly() {
        let p = paper_partition();
        let mut count = vec![0u8; 256 * 256];
        for t in p.tiles() {
            assert!(t.rect.contains_rect(t.core), "core escapes tile");
            for (x, y) in t.core.pixels() {
                count[y as usize * 256 + x as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1), "cores must tile the layout");
    }

    #[test]
    fn interior_core_margins() {
        let p = paper_partition();
        // Center tile: core inset by l = 32 on all sides.
        let center = p.tile(4);
        assert_eq!(center.rect, Rect::new(64, 64, 192, 192));
        assert_eq!(center.core, Rect::new(96, 96, 160, 160));
        // Corner tile: core flush with the layout corner.
        let corner = p.tile(0);
        assert_eq!(corner.core, Rect::new(0, 0, 96, 96));
    }

    #[test]
    fn neighbor_sets() {
        let p = paper_partition();
        // Center tile overlaps all 8 others.
        assert_eq!(p.neighbors(4).len(), 8);
        // Corner tile overlaps right, below, and diagonal.
        let mut n = p.neighbors(0);
        n.sort_unstable();
        assert_eq!(n, vec![1, 3, 4]);
    }

    #[test]
    fn stitch_lines_sit_on_core_boundaries() {
        let p = paper_partition();
        let lines = p.stitch_lines();
        assert_eq!(lines.len(), 4);
        let verticals: Vec<usize> = lines
            .iter()
            .filter(|l| l.orientation == Orientation::Vertical)
            .map(|l| l.position)
            .collect();
        assert_eq!(verticals, vec![96, 160]);
        // Lines span the full layout.
        assert!(lines.iter().all(|l| l.start == 0 && l.end == 256));
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(matches!(
            Partition::new(
                256,
                256,
                PartitionConfig {
                    tile: 128,
                    overlap: 0
                }
            ),
            Err(TileError::BadOverlap { .. })
        ));
        assert!(matches!(
            Partition::new(
                256,
                256,
                PartitionConfig {
                    tile: 128,
                    overlap: 63
                }
            ),
            Err(TileError::BadOverlap { .. })
        ));
        assert!(matches!(
            Partition::new(
                100,
                256,
                PartitionConfig {
                    tile: 128,
                    overlap: 64
                }
            ),
            Err(TileError::LayoutTooSmall { .. })
        ));
    }

    #[test]
    fn non_divisible_layout_clamps_last_column() {
        // 300 is not 128 + k*64: the fourth column clamps to origin 172.
        let p = Partition::new(
            300,
            256,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        assert_eq!(p.tiles_x(), 4);
        assert_eq!(p.tiles_y(), 3);
        let origins: Vec<i64> = (0..4).map(|c| p.tile(c).rect.x0).collect();
        assert_eq!(origins, vec![0, 64, 128, 172]);
        // Every tile stays full-size.
        assert!(p
            .tiles()
            .iter()
            .all(|t| t.rect.width() == 128 && t.rect.height() == 128));
        // Cores stay exactly disjoint and covering despite the clamp: the
        // cut between the clamped pair sits at the midpoint of their union.
        let cuts: Vec<i64> = (0..3).map(|c| p.tile(c).core.x1).collect();
        assert_eq!(cuts, vec![96, 160, 214]);
        let mut count = vec![0u8; 300 * 256];
        for t in p.tiles() {
            assert!(t.rect.contains_rect(t.core), "core escapes tile");
            for (x, y) in t.core.pixels() {
                count[y as usize * 300 + x as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1), "cores must tile the layout");
        // Stitch lines follow the actual core boundaries.
        let verticals: Vec<usize> = p
            .stitch_lines()
            .iter()
            .filter(|l| l.orientation == Orientation::Vertical)
            .map(|l| l.position)
            .collect();
        assert_eq!(verticals, vec![96, 160, 214]);
    }

    #[test]
    fn clamped_neighbors_stay_symmetric_and_adjacent() {
        // 184 = 128 + 56 < 128 + stride: two columns, the second clamped to
        // origin 56, so their overlap grows from 64 to 72 pixels.
        let p = Partition::new(
            184,
            184,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        assert_eq!(p.tiles_x(), 2);
        assert_eq!(p.tiles_y(), 2);
        for t in p.tiles() {
            let n = p.neighbors(t.index);
            assert_eq!(n.len(), 3, "2x2 grid: everyone touches everyone");
            for &j in &n {
                assert!(p.neighbors(j).contains(&t.index), "symmetry");
            }
        }
        // Core cut at the union midpoint (0 + 56 + 128) / 2 = 92.
        assert_eq!(p.tile(0).core, Rect::new(0, 0, 92, 92));
        assert_eq!(p.tile(3).core, Rect::new(92, 92, 184, 184));
    }

    #[test]
    fn single_tile_partition() {
        let p = Partition::new(
            128,
            128,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        assert_eq!(p.tiles().len(), 1);
        assert_eq!(p.tile(0).core, Rect::new(0, 0, 128, 128));
        assert!(p.stitch_lines().is_empty());
        assert!(p.neighbors(0).is_empty());
    }

    #[test]
    fn paper_ratio_helper() {
        let cfg = PartitionConfig::paper_ratio(2048);
        assert_eq!(cfg.overlap, 1024);
        assert_eq!(cfg.stride(), 1024);
        assert_eq!(cfg.margin(), 512);
    }

    #[test]
    fn rectangular_layouts_work() {
        let p = Partition::new(
            256,
            192,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        assert_eq!(p.tiles_x(), 3);
        assert_eq!(p.tiles_y(), 2);
        let mut count = vec![0u8; 256 * 192];
        for t in p.tiles() {
            for (x, y) in t.core.pixels() {
                count[y as usize * 256 + x as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }
}

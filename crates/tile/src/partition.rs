//! The tile partition strategy of Fig. 2: overlapping tiles, disjoint core
//! sections, and the stitch lines where cores meet.

use ilt_grid::Rect;

use crate::error::TileError;

/// Parameters of the overlapping partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Tile edge length (the litho simulator input size).
    pub tile: usize,
    /// Total overlap `2l` between adjacent tiles; the stride between tile
    /// origins is `tile - overlap`.
    pub overlap: usize,
}

impl PartitionConfig {
    /// The paper's geometry: overlap of half a tile (2 x 512 at tile 2048;
    /// here expressed as a ratio so it holds at any tile size).
    pub fn paper_ratio(tile: usize) -> Self {
        PartitionConfig {
            tile,
            overlap: tile / 2,
        }
    }

    /// Stride between adjacent tile origins.
    pub fn stride(&self) -> usize {
        self.tile - self.overlap
    }

    /// Margin `l` between a tile edge and its core section.
    pub fn margin(&self) -> usize {
        self.overlap / 2
    }
}

/// One tile: its extent and its core section in layout coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Index into [`Partition::tiles`].
    pub index: usize,
    /// Position `(col, row)` in the tile lattice.
    pub grid_pos: (usize, usize),
    /// Tile extent (always `tile x tile`).
    pub rect: Rect,
    /// Core section: the part of the tile this tile alone contributes to a
    /// restricted assembly. Cores partition the layout.
    pub core: Rect,
}

/// Orientation of a stitch line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// A vertical line (constant `x`) between horizontally adjacent cores.
    Vertical,
    /// A horizontal line (constant `y`) between vertically adjacent cores.
    Horizontal,
}

/// A shared boundary between two adjacent core sections — the locus where
/// stitching discontinuities appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StitchLine {
    /// Line orientation.
    pub orientation: Orientation,
    /// The constant coordinate: `x` for vertical lines, `y` for horizontal.
    pub position: usize,
    /// Extent of the line along its axis (full layout span).
    pub start: usize,
    /// Exclusive end along the axis.
    pub end: usize,
}

/// An overlapping tile partition of a `width x height` layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    width: usize,
    height: usize,
    config: PartitionConfig,
    nx: usize,
    ny: usize,
    tiles: Vec<Tile>,
}

impl Partition {
    /// Builds the partition.
    ///
    /// # Errors
    ///
    /// * [`TileError::BadOverlap`] unless `0 < overlap < tile` and `overlap`
    ///   is even;
    /// * [`TileError::LayoutTooSmall`] if the layout cannot hold one tile;
    /// * [`TileError::Indivisible`] unless each layout edge equals
    ///   `tile + k * stride` for an integer `k` (all tiles stay full-size,
    ///   which keeps every FFT power-of-two).
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_tile::{Partition, PartitionConfig};
    ///
    /// // The paper's 3x3 geometry at 1/16 scale.
    /// let p = Partition::new(256, 256, PartitionConfig { tile: 128, overlap: 64 })?;
    /// assert_eq!(p.tiles().len(), 9);
    /// # Ok::<(), ilt_tile::TileError>(())
    /// ```
    pub fn new(width: usize, height: usize, config: PartitionConfig) -> Result<Self, TileError> {
        if config.overlap == 0 || !config.overlap.is_multiple_of(2) || config.overlap >= config.tile
        {
            return Err(TileError::BadOverlap {
                tile: config.tile,
                overlap: config.overlap,
            });
        }
        if width < config.tile || height < config.tile {
            return Err(TileError::LayoutTooSmall {
                layout: (width, height),
                tile: config.tile,
            });
        }
        let stride = config.stride();
        for extent in [width, height] {
            if !(extent - config.tile).is_multiple_of(stride) {
                return Err(TileError::Indivisible {
                    extent,
                    tile: config.tile,
                    stride,
                });
            }
        }
        let nx = (width - config.tile) / stride + 1;
        let ny = (height - config.tile) / stride + 1;
        let l = config.margin() as i64;
        let mut tiles = Vec::with_capacity(nx * ny);
        for row in 0..ny {
            for col in 0..nx {
                let x0 = (col * stride) as i64;
                let y0 = (row * stride) as i64;
                let rect = Rect::from_origin_size(x0, y0, config.tile as i64, config.tile as i64);
                // Core: inset by the margin on interior sides only.
                let core = Rect::new(
                    if col == 0 { 0 } else { x0 + l },
                    if row == 0 { 0 } else { y0 + l },
                    if col == nx - 1 {
                        width as i64
                    } else {
                        x0 + config.tile as i64 - l
                    },
                    if row == ny - 1 {
                        height as i64
                    } else {
                        y0 + config.tile as i64 - l
                    },
                );
                tiles.push(Tile {
                    index: row * nx + col,
                    grid_pos: (col, row),
                    rect,
                    core,
                });
            }
        }
        Ok(Partition {
            width,
            height,
            config,
            nx,
            ny,
            tiles,
        })
    }

    /// Layout width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Layout height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The configuration this partition was built with.
    #[inline]
    pub fn config(&self) -> PartitionConfig {
        self.config
    }

    /// Tiles per row.
    #[inline]
    pub fn tiles_x(&self) -> usize {
        self.nx
    }

    /// Tiles per column.
    #[inline]
    pub fn tiles_y(&self) -> usize {
        self.ny
    }

    /// All tiles in row-major order.
    #[inline]
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// One tile by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn tile(&self, index: usize) -> &Tile {
        &self.tiles[index]
    }

    /// Indices of tiles whose extents overlap tile `index` (the neighbour
    /// set `N_j` of Eq. (11)).
    pub fn neighbors(&self, index: usize) -> Vec<usize> {
        let me = &self.tiles[index];
        self.tiles
            .iter()
            .filter(|t| t.index != index && t.rect.overlaps(me.rect))
            .map(|t| t.index)
            .collect()
    }

    /// The stitch lines: all interior core boundaries.
    pub fn stitch_lines(&self) -> Vec<StitchLine> {
        let mut lines = Vec::new();
        let stride = self.config.stride();
        let l = self.config.margin();
        for col in 1..self.nx {
            lines.push(StitchLine {
                orientation: Orientation::Vertical,
                position: col * stride + l,
                start: 0,
                end: self.height,
            });
        }
        for row in 1..self.ny {
            lines.push(StitchLine {
                orientation: Orientation::Horizontal,
                position: row * stride + l,
                start: 0,
                end: self.width,
            });
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_partition() -> Partition {
        Partition::new(
            256,
            256,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap()
    }

    #[test]
    fn paper_geometry_is_three_by_three() {
        let p = paper_partition();
        assert_eq!(p.tiles_x(), 3);
        assert_eq!(p.tiles_y(), 3);
        assert_eq!(p.tiles().len(), 9);
        assert_eq!(p.width(), 256);
        assert_eq!(p.config().margin(), 32);
    }

    #[test]
    fn tiles_are_full_size_and_cover_layout() {
        let p = paper_partition();
        let mut covered = vec![false; 256 * 256];
        for t in p.tiles() {
            assert_eq!(t.rect.width(), 128);
            assert_eq!(t.rect.height(), 128);
            for (x, y) in t.rect.pixels() {
                covered[y as usize * 256 + x as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn cores_partition_layout_exactly() {
        let p = paper_partition();
        let mut count = vec![0u8; 256 * 256];
        for t in p.tiles() {
            assert!(t.rect.contains_rect(t.core), "core escapes tile");
            for (x, y) in t.core.pixels() {
                count[y as usize * 256 + x as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1), "cores must tile the layout");
    }

    #[test]
    fn interior_core_margins() {
        let p = paper_partition();
        // Center tile: core inset by l = 32 on all sides.
        let center = p.tile(4);
        assert_eq!(center.rect, Rect::new(64, 64, 192, 192));
        assert_eq!(center.core, Rect::new(96, 96, 160, 160));
        // Corner tile: core flush with the layout corner.
        let corner = p.tile(0);
        assert_eq!(corner.core, Rect::new(0, 0, 96, 96));
    }

    #[test]
    fn neighbor_sets() {
        let p = paper_partition();
        // Center tile overlaps all 8 others.
        assert_eq!(p.neighbors(4).len(), 8);
        // Corner tile overlaps right, below, and diagonal.
        let mut n = p.neighbors(0);
        n.sort_unstable();
        assert_eq!(n, vec![1, 3, 4]);
    }

    #[test]
    fn stitch_lines_sit_on_core_boundaries() {
        let p = paper_partition();
        let lines = p.stitch_lines();
        assert_eq!(lines.len(), 4);
        let verticals: Vec<usize> = lines
            .iter()
            .filter(|l| l.orientation == Orientation::Vertical)
            .map(|l| l.position)
            .collect();
        assert_eq!(verticals, vec![96, 160]);
        // Lines span the full layout.
        assert!(lines.iter().all(|l| l.start == 0 && l.end == 256));
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(matches!(
            Partition::new(
                256,
                256,
                PartitionConfig {
                    tile: 128,
                    overlap: 0
                }
            ),
            Err(TileError::BadOverlap { .. })
        ));
        assert!(matches!(
            Partition::new(
                256,
                256,
                PartitionConfig {
                    tile: 128,
                    overlap: 63
                }
            ),
            Err(TileError::BadOverlap { .. })
        ));
        assert!(matches!(
            Partition::new(
                100,
                256,
                PartitionConfig {
                    tile: 128,
                    overlap: 64
                }
            ),
            Err(TileError::LayoutTooSmall { .. })
        ));
        assert!(matches!(
            Partition::new(
                300,
                256,
                PartitionConfig {
                    tile: 128,
                    overlap: 64
                }
            ),
            Err(TileError::Indivisible { .. })
        ));
    }

    #[test]
    fn single_tile_partition() {
        let p = Partition::new(
            128,
            128,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        assert_eq!(p.tiles().len(), 1);
        assert_eq!(p.tile(0).core, Rect::new(0, 0, 128, 128));
        assert!(p.stitch_lines().is_empty());
        assert!(p.neighbors(0).is_empty());
    }

    #[test]
    fn paper_ratio_helper() {
        let cfg = PartitionConfig::paper_ratio(2048);
        assert_eq!(cfg.overlap, 1024);
        assert_eq!(cfg.stride(), 1024);
        assert_eq!(cfg.margin(), 512);
    }

    #[test]
    fn rectangular_layouts_work() {
        let p = Partition::new(
            256,
            192,
            PartitionConfig {
                tile: 128,
                overlap: 64,
            },
        )
        .unwrap();
        assert_eq!(p.tiles_x(), 3);
        assert_eq!(p.tiles_y(), 2);
        let mut count = vec![0u8; 256 * 192];
        for t in p.tiles() {
            for (x, y) in t.core.pixels() {
                count[y as usize * 256 + x as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }
}

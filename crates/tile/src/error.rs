//! Error type for tile partitioning and assembly.

use std::error::Error;
use std::fmt;

/// Errors returned by partition construction and assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileError {
    /// The layout is smaller than one tile.
    LayoutTooSmall {
        /// Layout dimensions.
        layout: (usize, usize),
        /// Requested tile edge.
        tile: usize,
    },
    /// A streaming assembly push arrived out of canonical (colour-band)
    /// order, or pushed a tile twice. Streamed and batch assembly are only
    /// bit-identical when contributions fold in one fixed order.
    StreamOrder {
        /// Tile index the assembler expected next.
        expected: usize,
        /// Tile index that was pushed.
        actual: usize,
    },
    /// The overlap is not compatible with the tile size.
    BadOverlap {
        /// Tile edge.
        tile: usize,
        /// Requested overlap.
        overlap: usize,
    },
    /// Data supplied for assembly does not match the partition.
    AssemblyMismatch {
        /// Expected number of tiles.
        expected: usize,
        /// Number of tile grids supplied.
        actual: usize,
    },
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::LayoutTooSmall { layout, tile } => write!(
                f,
                "layout {}x{} is smaller than one {tile}-pixel tile",
                layout.0, layout.1
            ),
            TileError::StreamOrder { expected, actual } => write!(
                f,
                "streaming assembly expected tile {expected} next but received tile {actual}"
            ),
            TileError::BadOverlap { tile, overlap } => write!(
                f,
                "overlap {overlap} must be positive, even, and smaller than the tile {tile}"
            ),
            TileError::AssemblyMismatch { expected, actual } => write!(
                f,
                "assembly received {actual} tile grids but the partition has {expected}"
            ),
        }
    }
}

impl Error for TileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(TileError::LayoutTooSmall {
            layout: (10, 20),
            tile: 128
        }
        .to_string()
        .contains("128"));
        assert!(TileError::StreamOrder {
            expected: 2,
            actual: 7
        }
        .to_string()
        .contains("tile 7"));
        assert!(TileError::BadOverlap {
            tile: 128,
            overlap: 3
        }
        .to_string()
        .contains("overlap 3"));
        assert!(TileError::AssemblyMismatch {
            expected: 9,
            actual: 4
        }
        .to_string()
        .contains('9'));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error + Send + Sync>() {}
        check::<TileError>();
    }
}

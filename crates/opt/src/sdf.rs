//! Signed distance fields for the level-set solver.
//!
//! The GLS-ILT baseline represents the mask as the negative region of a
//! level-set function. After advection the function drifts away from a true
//! distance field, so it is periodically re-initialised with a two-pass
//! chamfer transform (3-4 weights, error below 6% of the true Euclidean
//! distance — ample for CFL step control).

use ilt_grid::{BitGrid, RealGrid};

/// Chamfer weights (normalised so axis steps cost ~1 pixel).
const AXIAL: f64 = 1.0;
const DIAGONAL: f64 = std::f64::consts::SQRT_2;
const FAR: f64 = 1e9;

/// Computes a signed distance field from a binary mask: negative inside the
/// mask, positive outside, approximately zero on the boundary (the outside
/// boundary pixel is at distance ~1).
///
/// # Examples
///
/// ```
/// use ilt_grid::{Grid, Rect};
/// use ilt_opt::signed_distance;
///
/// let mut mask = Grid::new(16, 16, 0u8);
/// mask.fill_rect(Rect::new(4, 4, 12, 12), 1);
/// let sdf = signed_distance(&mask);
/// assert!(sdf.get(8, 8) < 0.0);  // deep inside
/// assert!(sdf.get(0, 0) > 3.0);  // far outside
/// ```
pub fn signed_distance(mask: &BitGrid) -> RealGrid {
    let outside = chamfer(mask, false);
    let inside = chamfer(mask, true);
    let (w, h) = (mask.width(), mask.height());
    RealGrid::from_fn(w, h, |x, y| {
        if mask.get(x, y) != 0 {
            // Inside: negative distance to the background.
            -inside.get(x, y)
        } else {
            outside.get(x, y)
        }
    })
}

/// Distance to the nearest pixel of the given polarity. `to_background`
/// computes, for inside pixels, the distance to the nearest 0 pixel;
/// otherwise, for outside pixels, the distance to the nearest 1 pixel.
fn chamfer(mask: &BitGrid, to_background: bool) -> RealGrid {
    let (w, h) = (mask.width(), mask.height());
    let is_seed = |x: usize, y: usize| -> bool {
        let v = mask.get(x, y) != 0;
        if to_background {
            !v
        } else {
            v
        }
    };
    let mut d = vec![FAR; w * h];
    for y in 0..h {
        for x in 0..w {
            if is_seed(x, y) {
                d[y * w + x] = 0.0;
            }
        }
    }
    // Forward pass.
    for y in 0..h {
        for x in 0..w {
            let idx = y * w + x;
            let mut best = d[idx];
            if x > 0 {
                best = best.min(d[idx - 1] + AXIAL);
            }
            if y > 0 {
                best = best.min(d[idx - w] + AXIAL);
                if x > 0 {
                    best = best.min(d[idx - w - 1] + DIAGONAL);
                }
                if x + 1 < w {
                    best = best.min(d[idx - w + 1] + DIAGONAL);
                }
            }
            d[idx] = best;
        }
    }
    // Backward pass.
    for y in (0..h).rev() {
        for x in (0..w).rev() {
            let idx = y * w + x;
            let mut best = d[idx];
            if x + 1 < w {
                best = best.min(d[idx + 1] + AXIAL);
            }
            if y + 1 < h {
                best = best.min(d[idx + w] + AXIAL);
                if x + 1 < w {
                    best = best.min(d[idx + w + 1] + DIAGONAL);
                }
                if x > 0 {
                    best = best.min(d[idx + w - 1] + DIAGONAL);
                }
            }
            d[idx] = best;
        }
    }
    // If one polarity is absent entirely (all-empty or all-full masks), the
    // distance saturates; clamp to the grid diagonal so callers get finite
    // values.
    let cap = DIAGONAL * (w.max(h) as f64);
    for v in &mut d {
        if *v > cap {
            *v = cap;
        }
    }
    RealGrid::from_vec(w, h, d)
}

#[inline]
fn heaviside(p: f64, eps: f64) -> f64 {
    if p <= -eps {
        1.0
    } else if p >= eps {
        0.0
    } else {
        0.5 * (1.0 - p / eps - (std::f64::consts::PI * p / eps).sin() / std::f64::consts::PI)
    }
}

#[inline]
fn heaviside_derivative(p: f64, eps: f64) -> f64 {
    if p.abs() >= eps {
        0.0
    } else {
        -0.5 / eps * (1.0 + (std::f64::consts::PI * p / eps).cos())
    }
}

/// Smooth Heaviside of `-phi`: 1 deep inside the mask (`phi << 0`), 0 deep
/// outside, with a cosine ramp of half-width `eps`.
pub fn smooth_mask(phi: &RealGrid, eps: f64) -> RealGrid {
    assert!(eps > 0.0, "transition half-width must be positive");
    phi.map(|&p| heaviside(p, eps))
}

/// [`smooth_mask`] into a reusable buffer: allocation-free once `out` has
/// `phi`'s shape (mismatched buffers are reallocated).
pub fn smooth_mask_into(phi: &RealGrid, eps: f64, out: &mut RealGrid) {
    assert!(eps > 0.0, "transition half-width must be positive");
    reshape_to(phi, out);
    for (o, p) in out.as_mut_slice().iter_mut().zip(phi.as_slice()) {
        *o = heaviside(*p, eps);
    }
}

/// Derivative of [`smooth_mask`] with respect to `phi` (non-positive,
/// supported on the `|phi| < eps` band).
pub fn smooth_mask_derivative(phi: &RealGrid, eps: f64) -> RealGrid {
    assert!(eps > 0.0, "transition half-width must be positive");
    phi.map(|&p| heaviside_derivative(p, eps))
}

/// [`smooth_mask_derivative`] into a reusable buffer (see
/// [`smooth_mask_into`]).
pub fn smooth_mask_derivative_into(phi: &RealGrid, eps: f64, out: &mut RealGrid) {
    assert!(eps > 0.0, "transition half-width must be positive");
    reshape_to(phi, out);
    for (o, p) in out.as_mut_slice().iter_mut().zip(phi.as_slice()) {
        *o = heaviside_derivative(*p, eps);
    }
}

fn reshape_to(like: &RealGrid, out: &mut RealGrid) {
    if (out.width(), out.height()) != (like.width(), like.height()) {
        *out = RealGrid::new(like.width(), like.height(), 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::{Grid, Rect};

    fn square_mask() -> BitGrid {
        let mut mask = Grid::new(21, 21, 0u8);
        mask.fill_rect(Rect::new(6, 6, 15, 15), 1);
        mask
    }

    #[test]
    fn sign_convention() {
        let sdf = signed_distance(&square_mask());
        assert!(sdf.get(10, 10) < 0.0, "inside must be negative");
        assert!(sdf.get(0, 0) > 0.0, "outside must be positive");
        // Just outside the boundary: distance ~1.
        assert!((sdf.get(5, 10) - 1.0).abs() < 0.01);
        // Just inside the boundary: distance ~ -1.
        assert!((sdf.get(6, 10) + 1.0).abs() < 0.01);
    }

    #[test]
    fn distance_grows_away_from_boundary() {
        let sdf = signed_distance(&square_mask());
        // Walking left from the mask edge increases distance monotonically.
        for x in (1..6).rev() {
            assert!(sdf.get(x - 1, 10) > sdf.get(x, 10));
        }
        // Deep inside is the most negative along the center row.
        let center = sdf.get(10, 10);
        for x in 6..15 {
            assert!(sdf.get(x, 10) <= sdf.get(6, 10) + 1e-12 || x > 6);
        }
        assert!(center <= sdf.get(7, 10));
    }

    #[test]
    fn chamfer_approximates_euclidean() {
        let mut mask = Grid::new(41, 41, 0u8);
        mask.set(20, 20, 1);
        let sdf = signed_distance(&mask);
        for &(x, y) in &[(30usize, 20usize), (20, 5), (28, 28), (10, 15)] {
            let dx = x as f64 - 20.0;
            let dy = y as f64 - 20.0;
            let euclid = (dx * dx + dy * dy).sqrt();
            let approx = sdf.get(x, y);
            assert!(
                (approx - euclid).abs() <= 0.09 * euclid + 1e-9,
                "at ({x},{y}): chamfer {approx} vs euclid {euclid}"
            );
        }
    }

    #[test]
    fn all_empty_and_all_full_are_finite() {
        let empty: BitGrid = Grid::new(8, 8, 0);
        let sdf = signed_distance(&empty);
        assert!(sdf.as_slice().iter().all(|v| v.is_finite() && *v > 0.0));
        let full: BitGrid = Grid::new(8, 8, 1);
        let sdf = signed_distance(&full);
        assert!(sdf.as_slice().iter().all(|v| v.is_finite() && *v < 0.0));
    }

    #[test]
    fn zero_level_set_recovers_mask() {
        let mask = square_mask();
        let sdf = signed_distance(&mask);
        let recovered = sdf.map(|&p| u8::from(p < 0.0));
        assert_eq!(recovered, mask);
    }

    #[test]
    fn smooth_mask_limits_and_monotonicity() {
        let phi = Grid::from_vec(5, 1, vec![-10.0, -1.0, 0.0, 1.0, 10.0]);
        let m = smooth_mask(&phi, 2.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(4, 0), 0.0);
        assert!((m.get(2, 0) - 0.5).abs() < 1e-12);
        for i in 1..5 {
            assert!(m.get(i, 0) <= m.get(i - 1, 0));
        }
    }

    #[test]
    fn smooth_mask_derivative_matches_finite_difference() {
        let eps = 2.0;
        for &p in &[-1.5, -0.4, 0.0, 0.9, 1.7] {
            let a = Grid::from_vec(1, 1, vec![p]);
            let b = Grid::from_vec(1, 1, vec![p + 1e-7]);
            let numeric = (smooth_mask(&b, eps).get(0, 0) - smooth_mask(&a, eps).get(0, 0)) / 1e-7;
            let analytic = smooth_mask_derivative(&a, eps).get(0, 0);
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "phi {p}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn smooth_mask_derivative_is_banded() {
        let phi = Grid::from_vec(3, 1, vec![-5.0, 0.0, 5.0]);
        let d = smooth_mask_derivative(&phi, 1.0);
        assert_eq!(d.get(0, 0), 0.0);
        assert!(d.get(1, 0) < 0.0);
        assert_eq!(d.get(2, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn smooth_mask_rejects_bad_eps() {
        let phi = Grid::new(2, 2, 0.0);
        let _ = smooth_mask(&phi, 0.0);
    }
}

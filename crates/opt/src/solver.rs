//! Common interface for single-tile ILT solvers — the `phi(.)` of
//! Algorithm 1 in the paper.

use ilt_grid::RealGrid;
use ilt_litho::{LithoBank, LithoSystem};

use crate::error::OptError;

/// Where a solve runs: the kernel bank plus the grid size and physical
/// scale of the region being corrected.
#[derive(Debug, Clone, Copy)]
pub struct SolveContext<'a> {
    /// Shared optical kernel bank.
    pub bank: &'a LithoBank,
    /// Grid edge length of the tile being solved.
    pub n: usize,
    /// Physical scale relative to the base grid (1 = fine grid, >1 = the
    /// coarse/downsampled grids of Algorithm 1).
    pub scale: usize,
}

impl<'a> SolveContext<'a> {
    /// Builds the lithography system for this context.
    ///
    /// # Errors
    ///
    /// Propagates kernel-resampling and FFT-plan failures.
    pub fn system(&self) -> Result<LithoSystem, OptError> {
        Ok(self.bank.system(self.n, self.scale)?)
    }
}

/// One solve request: optimise `initial` towards printing `target`.
#[derive(Debug, Clone)]
pub struct SolveRequest<'a> {
    /// Binary-valued target image for this tile (`Z_t R_j` in Eq. (10)).
    pub target: &'a RealGrid,
    /// Starting mask (continuous, in `[0, 1]`): the target itself for cold
    /// starts, a cropped assembled mask for Schwarz stages.
    pub initial: &'a RealGrid,
    /// Iteration budget.
    pub iterations: usize,
    /// Learning-rate multiplier (the paper's refine ILT uses a small rate).
    pub lr_scale: f64,
    /// Gentle mode for refinement passes: solvers take strictly
    /// gradient-proportional steps (no adaptive-optimiser restart noise),
    /// so a converged warm start is only nudged, never reshuffled.
    pub gentle: bool,
    /// Warm-start mode: `initial` is already a near-converged solution
    /// (e.g. cropped from an assembled layout between Schwarz stages), so
    /// solvers must skip global restructuring steps — in particular the
    /// pixel solver's internal multi-level resampling, which would blur the
    /// warm solution.
    pub warm: bool,
}

impl<'a> SolveRequest<'a> {
    /// Convenience constructor with unit learning-rate scale.
    pub fn new(target: &'a RealGrid, initial: &'a RealGrid, iterations: usize) -> Self {
        SolveRequest {
            target,
            initial,
            iterations,
            lr_scale: 1.0,
            gentle: false,
            warm: false,
        }
    }

    /// Checks the request against a context.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ShapeMismatch`] if either grid is not `n x n`,
    /// or [`OptError::BadConfig`] for a degenerate learning-rate scale.
    pub fn validate(&self, ctx: &SolveContext<'_>) -> Result<(), OptError> {
        for grid in [self.target, self.initial] {
            if grid.width() != ctx.n || grid.height() != ctx.n {
                return Err(OptError::ShapeMismatch {
                    expected: ctx.n,
                    actual: (grid.width(), grid.height()),
                });
            }
        }
        if !(self.lr_scale > 0.0 && self.lr_scale.is_finite()) {
            return Err(OptError::BadConfig {
                reason: format!("learning-rate scale {} is not positive", self.lr_scale),
            });
        }
        Ok(())
    }
}

/// Result of a single-tile solve.
#[derive(Debug, Clone)]
pub struct IltOutcome {
    /// Optimised continuous mask in `[0, 1]`.
    pub mask: RealGrid,
    /// Objective value after every iteration.
    pub loss_history: Vec<f64>,
}

impl IltOutcome {
    /// Final loss, if any iterations ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.loss_history.last().copied()
    }
}

/// A single-tile ILT algorithm.
pub trait TileSolver: Send + Sync {
    /// Short identifier used in reports (e.g. `"multi-level-ilt"`).
    fn name(&self) -> &str;

    /// Runs the solver.
    ///
    /// # Errors
    ///
    /// Returns [`OptError`] on shape mismatches, bad configuration, or
    /// simulation failure.
    fn solve(
        &self,
        ctx: &SolveContext<'_>,
        request: &SolveRequest<'_>,
    ) -> Result<IltOutcome, OptError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Grid;
    use ilt_litho::{OpticsConfig, ResistModel};

    #[test]
    fn request_validation() {
        let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::default()).unwrap();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let good = Grid::new(64, 64, 0.0);
        let bad = Grid::new(32, 64, 0.0);
        assert!(SolveRequest::new(&good, &good, 5).validate(&ctx).is_ok());
        assert!(matches!(
            SolveRequest::new(&bad, &good, 5).validate(&ctx),
            Err(OptError::ShapeMismatch { .. })
        ));
        let mut req = SolveRequest::new(&good, &good, 5);
        req.lr_scale = 0.0;
        assert!(matches!(
            req.validate(&ctx),
            Err(OptError::BadConfig { .. })
        ));
    }

    #[test]
    fn context_builds_system() {
        let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::default()).unwrap();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        assert_eq!(ctx.system().unwrap().n(), 64);
    }

    #[test]
    fn outcome_final_loss() {
        let outcome = IltOutcome {
            mask: Grid::new(2, 2, 0.0),
            loss_history: vec![3.0, 2.0, 1.0],
        };
        assert_eq!(outcome.final_loss(), Some(1.0));
        let empty = IltOutcome {
            mask: Grid::new(2, 2, 0.0),
            loss_history: vec![],
        };
        assert_eq!(empty.final_loss(), None);
    }
}

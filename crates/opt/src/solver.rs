//! Common interface for single-tile ILT solvers — the `phi(.)` of
//! Algorithm 1 in the paper.

use ilt_grid::RealGrid;
use ilt_litho::{LithoBank, LithoSystem};

use crate::error::OptError;

/// Where a solve runs: the kernel bank plus the grid size and physical
/// scale of the region being corrected.
#[derive(Debug, Clone, Copy)]
pub struct SolveContext<'a> {
    /// Shared optical kernel bank.
    pub bank: &'a LithoBank,
    /// Grid edge length of the tile being solved.
    pub n: usize,
    /// Physical scale relative to the base grid (1 = fine grid, >1 = the
    /// coarse/downsampled grids of Algorithm 1).
    pub scale: usize,
}

impl<'a> SolveContext<'a> {
    /// Builds the lithography system for this context.
    ///
    /// # Errors
    ///
    /// Propagates kernel-resampling and FFT-plan failures.
    pub fn system(&self) -> Result<LithoSystem, OptError> {
        Ok(self.bank.system(self.n, self.scale)?)
    }
}

/// One solve request: optimise `initial` towards printing `target`.
#[derive(Debug, Clone)]
pub struct SolveRequest<'a> {
    /// Binary-valued target image for this tile (`Z_t R_j` in Eq. (10)).
    pub target: &'a RealGrid,
    /// Starting mask (continuous, in `[0, 1]`): the target itself for cold
    /// starts, a cropped assembled mask for Schwarz stages.
    pub initial: &'a RealGrid,
    /// Iteration budget.
    pub iterations: usize,
    /// Learning-rate multiplier (the paper's refine ILT uses a small rate).
    pub lr_scale: f64,
    /// Gentle mode for refinement passes: solvers take strictly
    /// gradient-proportional steps (no adaptive-optimiser restart noise),
    /// so a converged warm start is only nudged, never reshuffled.
    pub gentle: bool,
    /// Warm-start mode: `initial` is already a near-converged solution
    /// (e.g. cropped from an assembled layout between Schwarz stages), so
    /// solvers must skip global restructuring steps — in particular the
    /// pixel solver's internal multi-level resampling, which would blur the
    /// warm solution.
    pub warm: bool,
}

impl<'a> SolveRequest<'a> {
    /// Convenience constructor with unit learning-rate scale.
    pub fn new(target: &'a RealGrid, initial: &'a RealGrid, iterations: usize) -> Self {
        SolveRequest {
            target,
            initial,
            iterations,
            lr_scale: 1.0,
            gentle: false,
            warm: false,
        }
    }

    /// Checks the request against a context.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ShapeMismatch`] if either grid is not `n x n`,
    /// or [`OptError::BadConfig`] for a degenerate learning-rate scale.
    pub fn validate(&self, ctx: &SolveContext<'_>) -> Result<(), OptError> {
        for grid in [self.target, self.initial] {
            if grid.width() != ctx.n || grid.height() != ctx.n {
                return Err(OptError::ShapeMismatch {
                    expected: ctx.n,
                    actual: (grid.width(), grid.height()),
                });
            }
        }
        if !(self.lr_scale > 0.0 && self.lr_scale.is_finite()) {
            return Err(OptError::BadConfig {
                reason: format!("learning-rate scale {} is not positive", self.lr_scale),
            });
        }
        Ok(())
    }
}

/// One labelled run of consecutive iterations inside a solve (e.g. the
/// pixel solver's coarse multi-level phase).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSegment {
    /// Segment label (`"coarse"`, `"fine"`, ...).
    pub label: String,
    /// Objective value after each iteration of this segment.
    pub losses: Vec<f64>,
}

/// Per-iteration convergence record of one solve, split into labelled
/// segments so multi-level schedules stay distinguishable (coarse-phase
/// losses are computed on a smaller grid and are not comparable in scale
/// to fine-phase losses).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceTrace {
    /// Segments in execution order. Empty segments are never stored.
    pub segments: Vec<TraceSegment>,
}

impl ConvergenceTrace {
    /// A trace with one segment (dropped if `losses` is empty).
    pub fn single(label: &str, losses: Vec<f64>) -> Self {
        let mut trace = ConvergenceTrace::default();
        trace.push_segment(label, losses);
        trace
    }

    /// Appends a segment; empty `losses` are ignored.
    pub fn push_segment(&mut self, label: &str, losses: Vec<f64>) {
        if !losses.is_empty() {
            self.segments.push(TraceSegment {
                label: label.to_string(),
                losses,
            });
        }
    }

    /// Total number of recorded iterations across all segments.
    pub fn iterations(&self) -> usize {
        self.segments.iter().map(|s| s.losses.len()).sum()
    }

    /// All losses concatenated in execution order.
    pub fn flatten(&self) -> Vec<f64> {
        self.segments
            .iter()
            .flat_map(|s| s.losses.iter().copied())
            .collect()
    }
}

/// Result of a single-tile solve.
#[derive(Debug, Clone)]
pub struct IltOutcome {
    /// Optimised continuous mask in `[0, 1]`.
    pub mask: RealGrid,
    /// Objective value after every iteration (all segments concatenated;
    /// kept for backward compatibility with [`ConvergenceTrace`]-unaware
    /// callers — always equal to `convergence.flatten()`).
    pub loss_history: Vec<f64>,
    /// Segmented per-iteration convergence trace.
    pub convergence: ConvergenceTrace,
}

impl IltOutcome {
    /// Builds an outcome from a mask and its convergence trace; the flat
    /// `loss_history` is derived from the trace.
    pub fn new(mask: RealGrid, convergence: ConvergenceTrace) -> Self {
        IltOutcome {
            mask,
            loss_history: convergence.flatten(),
            convergence,
        }
    }

    /// Final loss, if any iterations ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.loss_history.last().copied()
    }
}

/// Runs `body` (one solver invocation) inside a `solve` telemetry span
/// tagged with the solver name and grid geometry, and feeds the iteration
/// count and final loss into the metrics registry.
pub(crate) fn with_solve_span(
    name: &str,
    ctx: &SolveContext<'_>,
    request: &SolveRequest<'_>,
    body: impl FnOnce() -> Result<IltOutcome, OptError>,
) -> Result<IltOutcome, OptError> {
    let mut span = ilt_telemetry::span(ilt_telemetry::names::SOLVE);
    span.add_field("solver", name);
    span.add_field("n", ctx.n);
    span.add_field("scale", ctx.scale);
    span.add_field("iterations", request.iterations);
    let outcome = body()?;
    if let Some(loss) = outcome.final_loss() {
        span.add_field("final_loss", loss);
    }
    ilt_telemetry::counter_add("solver.solves", 1);
    ilt_telemetry::record_value("solver.iterations", outcome.loss_history.len() as u64);
    Ok(outcome)
}

/// A single-tile ILT algorithm.
pub trait TileSolver: Send + Sync {
    /// Short identifier used in reports (e.g. `"multi-level-ilt"`).
    fn name(&self) -> &str;

    /// Runs the solver.
    ///
    /// # Errors
    ///
    /// Returns [`OptError`] on shape mismatches, bad configuration, or
    /// simulation failure.
    fn solve(
        &self,
        ctx: &SolveContext<'_>,
        request: &SolveRequest<'_>,
    ) -> Result<IltOutcome, OptError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Grid;
    use ilt_litho::{OpticsConfig, ResistModel};

    #[test]
    fn request_validation() {
        let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::default()).unwrap();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let good = Grid::new(64, 64, 0.0);
        let bad = Grid::new(32, 64, 0.0);
        assert!(SolveRequest::new(&good, &good, 5).validate(&ctx).is_ok());
        assert!(matches!(
            SolveRequest::new(&bad, &good, 5).validate(&ctx),
            Err(OptError::ShapeMismatch { .. })
        ));
        let mut req = SolveRequest::new(&good, &good, 5);
        req.lr_scale = 0.0;
        assert!(matches!(
            req.validate(&ctx),
            Err(OptError::BadConfig { .. })
        ));
    }

    #[test]
    fn context_builds_system() {
        let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::default()).unwrap();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        assert_eq!(ctx.system().unwrap().n(), 64);
    }

    #[test]
    fn outcome_final_loss() {
        let outcome = IltOutcome::new(
            Grid::new(2, 2, 0.0),
            ConvergenceTrace::single("fine", vec![3.0, 2.0, 1.0]),
        );
        assert_eq!(outcome.final_loss(), Some(1.0));
        assert_eq!(outcome.loss_history, vec![3.0, 2.0, 1.0]);
        let empty = IltOutcome::new(Grid::new(2, 2, 0.0), ConvergenceTrace::default());
        assert_eq!(empty.final_loss(), None);
    }

    #[test]
    fn trace_segments_flatten_in_order() {
        let mut trace = ConvergenceTrace::default();
        trace.push_segment("coarse", vec![9.0, 8.0]);
        trace.push_segment("skipped", vec![]);
        trace.push_segment("fine", vec![2.0, 1.0]);
        assert_eq!(trace.segments.len(), 2);
        assert_eq!(trace.iterations(), 4);
        assert_eq!(trace.flatten(), vec![9.0, 8.0, 2.0, 1.0]);
        assert_eq!(trace.segments[0].label, "coarse");
        assert_eq!(trace.segments[1].label, "fine");
    }
}

//! Error type for ILT solvers.

use std::error::Error;
use std::fmt;

use ilt_litho::LithoError;

/// Errors returned by the ILT solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The underlying lithography simulation failed.
    Litho(LithoError),
    /// Target and initial mask shapes disagree with the solve context.
    ShapeMismatch {
        /// Expected square edge length.
        expected: usize,
        /// Offending shape.
        actual: (usize, usize),
    },
    /// A solver was configured with invalid parameters.
    BadConfig {
        /// Human-readable cause.
        reason: String,
    },
    /// The ambient job deadline (see `ilt_fault::deadline`) expired while
    /// the solver was iterating. Checked once per iteration, so a tile stops
    /// within one forward/adjoint pass of its budget instead of relying on
    /// the harness to reap the worker.
    DeadlineExceeded {
        /// Iterations completed before the deadline check tripped.
        completed_iterations: usize,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Litho(e) => write!(f, "lithography failure: {e}"),
            OptError::ShapeMismatch { expected, actual } => write!(
                f,
                "grid is {}x{} but the solver expects {expected}x{expected}",
                actual.0, actual.1
            ),
            OptError::BadConfig { reason } => write!(f, "invalid solver configuration: {reason}"),
            OptError::DeadlineExceeded {
                completed_iterations,
            } => write!(
                f,
                "deadline exceeded after {completed_iterations} solver iterations"
            ),
        }
    }
}

impl Error for OptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptError::Litho(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LithoError> for OptError {
    fn from(e: LithoError) -> Self {
        OptError::Litho(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_fft::FftError;

    #[test]
    fn display_and_source() {
        let e: OptError = LithoError::Fft(FftError::NonPowerOfTwo { len: 5 }).into();
        assert!(e.to_string().contains("lithography"));
        assert!(std::error::Error::source(&e).is_some());
        let e = OptError::ShapeMismatch {
            expected: 64,
            actual: (32, 32),
        };
        assert!(e.to_string().contains("64"));
        let e = OptError::BadConfig {
            reason: "zero iterations".into(),
        };
        assert!(e.to_string().contains("zero iterations"));
    }

    #[test]
    fn is_send_sync() {
        fn check<E: std::error::Error + Send + Sync>() {}
        check::<OptError>();
    }
}

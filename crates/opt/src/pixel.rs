//! Pixel-domain gradient ILT with a multi-level simulation schedule — the
//! "Multi-level-ILT" baseline (\[4\] in the paper, the authors' own prior
//! solver, which the multigrid-Schwarz framework uses as its single-tile
//! engine `phi(.)`).
//!
//! The mask is relaxed through a sigmoid of a latent pixel field and
//! optimised with Adam; the optional multi-level schedule runs the early
//! iterations on a 2x-downsampled grid (simulated with 2x-scaled kernels,
//! Eq. (9)) before refining at full resolution.

use ilt_grid::{resample, RealGrid};
use ilt_litho::{LithoError, LithoSystem};

use crate::error::OptError;
use crate::loss::{evaluate_loss_into, LossEval};
use crate::optimizer::Optimizer;
use crate::solver::{IltOutcome, SolveContext, SolveRequest, TileSolver};

/// Configuration of the pixel-domain solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelIltConfig {
    /// Gradient-descent learning rate on the latent field. Plain gradient
    /// descent (not Adam) is used deliberately: the lithography gradient is
    /// band-limited by the optics, so proportional steps keep mask contours
    /// smooth, whereas per-pixel adaptive normalisation amplifies the
    /// gradient's high-frequency residue into ragged, stitch-hostile
    /// contours.
    pub lr: f64,
    /// Sigmoid steepness mapping latent values to mask transmission.
    pub mask_steepness: f64,
    /// Fraction of the iteration budget run at an internally 2x-coarsened
    /// level first (0 disables the multi-level schedule).
    pub coarse_fraction: f64,
    /// Weight of the binarisation penalty `sum m (1 - m)` that pushes gray
    /// pixels towards 0/1 (suppresses binarisation speckle).
    pub binarize_weight: f64,
    /// Weight of the quadratic latent-smoothness penalty
    /// `1/2 sum |grad latent|^2` that discourages ragged contours and
    /// sub-resolution islands.
    pub smooth_weight: f64,
    /// Standard deviation of the seeded perturbation added to the latent on
    /// cold starts. Production ILT is effectively chaotic in its SRAF
    /// placement (floating-point nondeterminism, work distribution, solver
    /// internals); a deterministic scalar solver is artificially unique, so
    /// this restores the multistability the paper's boundary-mismatch
    /// problem stems from. The perturbation is keyed to the tile content,
    /// so runs remain reproducible. Warm starts are never perturbed.
    pub init_noise: f64,
}

impl PixelIltConfig {
    /// The multi-level configuration used as the paper's baseline \[4\].
    pub fn multi_level() -> Self {
        PixelIltConfig {
            lr: 4.0,
            mask_steepness: 4.0,
            coarse_fraction: 0.2,
            binarize_weight: 0.01,
            smooth_weight: 0.0,
            init_noise: 0.1,
        }
    }

    /// Plain single-level pixel ILT.
    pub fn single_level() -> Self {
        PixelIltConfig {
            coarse_fraction: 0.0,
            ..PixelIltConfig::multi_level()
        }
    }

    fn validate(&self) -> Result<(), OptError> {
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(OptError::BadConfig {
                reason: format!("learning rate {} must be positive", self.lr),
            });
        }
        if self.mask_steepness <= 0.0 || self.mask_steepness.is_nan() {
            return Err(OptError::BadConfig {
                reason: "mask steepness must be positive".to_string(),
            });
        }
        if !(0.0..=0.9).contains(&self.coarse_fraction) {
            return Err(OptError::BadConfig {
                reason: format!("coarse fraction {} outside [0, 0.9]", self.coarse_fraction),
            });
        }
        if self.binarize_weight < 0.0 || self.smooth_weight < 0.0 {
            return Err(OptError::BadConfig {
                reason: "regularisation weights must be non-negative".to_string(),
            });
        }
        if !(self.init_noise >= 0.0 && self.init_noise.is_finite()) {
            return Err(OptError::BadConfig {
                reason: "init noise must be non-negative".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for PixelIltConfig {
    fn default() -> Self {
        PixelIltConfig::multi_level()
    }
}

/// The pixel-domain gradient solver.
#[derive(Debug, Clone, Default)]
pub struct PixelIlt {
    config: PixelIltConfig,
}

impl PixelIlt {
    /// Creates a solver with the default multi-level configuration.
    pub fn new() -> Self {
        PixelIlt {
            config: PixelIltConfig::multi_level(),
        }
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: PixelIltConfig) -> Self {
        PixelIlt { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PixelIltConfig {
        &self.config
    }
}

impl TileSolver for PixelIlt {
    fn name(&self) -> &str {
        if self.config.coarse_fraction > 0.0 {
            "multi-level-ilt"
        } else {
            "pixel-ilt"
        }
    }

    fn solve(
        &self,
        ctx: &SolveContext<'_>,
        request: &SolveRequest<'_>,
    ) -> Result<IltOutcome, OptError> {
        crate::solver::with_solve_span(self.name(), ctx, request, || self.solve_inner(ctx, request))
    }
}

impl PixelIlt {
    fn solve_inner(
        &self,
        ctx: &SolveContext<'_>,
        request: &SolveRequest<'_>,
    ) -> Result<IltOutcome, OptError> {
        self.config.validate()?;
        request.validate(ctx)?;
        let steep = self.config.mask_steepness;
        let mut latent = to_latent(request.initial, steep);
        if !request.warm && self.config.init_noise > 0.0 {
            perturb_latent(&mut latent, self.config.init_noise, request.target);
        }
        let mut history = Vec::with_capacity(request.iterations);
        let lr = self.config.lr * request.lr_scale;

        let coarse_iters = (request.iterations as f64 * self.config.coarse_fraction) as usize;
        let mut remaining = request.iterations;

        // Gradient descent throughout; `lr_mult` compensates the coarse
        // phase's 1/s^2 gradient attenuation from the downsampling adjoint.
        let make_optimizer = |lr_mult: f64| Optimizer::sgd(lr * lr_mult);

        // Multi-level lithography simulation (ref. [4]): the early
        // iterations evaluate the forward model and its gradient on a
        // 2x-downsampled grid while the latent mask stays at full
        // resolution — faster, and the upsampled gradients are naturally
        // band-limited. Warm starts skip it: a near-converged solution
        // needs full-resolution gradients from the first step.
        if coarse_iters > 0 && !request.warm && ctx.n.is_multiple_of(2) {
            match ctx.bank.system(ctx.n / 2, ctx.scale * 2) {
                Ok(system) => {
                    let coarse_target = resample::downsample(request.target, 2);
                    let mut optimizer = make_optimizer(4.0);
                    run_loop(
                        &system,
                        &coarse_target,
                        &mut latent,
                        &mut optimizer,
                        coarse_iters,
                        2,
                        &self.config,
                        &mut history,
                    )?;
                    remaining -= coarse_iters;
                }
                Err(LithoError::GridMismatch { .. }) => {
                    // Fall through to single-level optimisation.
                }
                Err(e) => return Err(e.into()),
            }
        }

        // Everything recorded so far came from the coarse level; the rest
        // of `history` is the full-resolution phase.
        let coarse_len = history.len();

        let system = ctx.system()?;
        let mut optimizer = make_optimizer(1.0);
        run_loop(
            &system,
            request.target,
            &mut latent,
            &mut optimizer,
            remaining,
            1,
            &self.config,
            &mut history,
        )?;

        let mut trace = crate::solver::ConvergenceTrace::default();
        let fine = history.split_off(coarse_len);
        trace.push_segment("coarse", history);
        trace.push_segment("fine", fine);
        Ok(IltOutcome::new(latent_to_mask(&latent, steep), trace))
    }
}

/// Inner gradient loop. `sim_scale` selects the multi-level simulation
/// factor: the latent stays at full resolution, while the forward model
/// runs on a `sim_scale`-downsampled mask and the gradient is pulled back
/// through the (linear) downsampling operator.
#[allow(clippy::too_many_arguments)]
fn run_loop(
    system: &LithoSystem,
    target: &RealGrid,
    latent: &mut RealGrid,
    optimizer: &mut Optimizer,
    iterations: usize,
    sim_scale: usize,
    config: &PixelIltConfig,
    history: &mut Vec<f64>,
) -> Result<(), OptError> {
    let steepness = config.mask_steepness;
    // One scratch arena for the whole loop: steady-state iterations run the
    // forward/adjoint passes without heap allocation.
    let mut ws = system.workspace();
    let mut coarse_mask: Option<RealGrid> = None;
    let sim_n = system.n();
    let mut eval = LossEval {
        value: 0.0,
        dldi: RealGrid::new(sim_n, sim_n, 0.0),
        wafer: RealGrid::new(sim_n, sim_n, 0.0),
    };
    for _ in 0..iterations {
        if ilt_fault::deadline::exceeded() {
            return Err(OptError::DeadlineExceeded {
                completed_iterations: history.len(),
            });
        }
        let mask = latent_to_mask(latent, steepness);
        let sim_mask: &RealGrid = if sim_scale > 1 {
            coarse_mask.insert(resample::downsample(&mask, sim_scale))
        } else {
            &mask
        };
        system.simulate_into(sim_mask, &mut ws)?;
        evaluate_loss_into(system.resist(), ws.intensity(), target, &mut eval);
        history.push(eval.value);
        let grad_sim = system.gradient_into(&mut ws, &eval.dldi)?;
        // Adjoint of s x s block averaging: each fine pixel receives its
        // coarse pixel's gradient divided by s^2.
        let upsampled;
        let grad_mask: &RealGrid = if sim_scale > 1 {
            let inv = 1.0 / (sim_scale * sim_scale) as f64;
            upsampled = resample::upsample_nearest(grad_sim, sim_scale).map(|&g| g * inv);
            &upsampled
        } else {
            grad_sim
        };
        // Chain rule through the sigmoid: dM/dlatent = k M (1 - M), plus
        // the binarisation penalty d/dm [m (1 - m)] = 1 - 2m.
        let mut grad_latent: Vec<f64> = grad_mask
            .as_slice()
            .iter()
            .zip(mask.as_slice())
            .map(|(g, m)| {
                (g + config.binarize_weight * (1.0 - 2.0 * m)) * steepness * m * (1.0 - m)
            })
            .collect();
        // Latent smoothness: gradient of 1/2 |grad latent|^2 is -laplacian
        // (Neumann boundaries: missing neighbours contribute nothing).
        if config.smooth_weight > 0.0 {
            let (w, h) = (latent.width(), latent.height());
            for y in 0..h {
                for x in 0..w {
                    let center = latent.get(x, y);
                    let mut acc = 0.0;
                    if x > 0 {
                        acc += center - latent.get(x - 1, y);
                    }
                    if x + 1 < w {
                        acc += center - latent.get(x + 1, y);
                    }
                    if y > 0 {
                        acc += center - latent.get(x, y - 1);
                    }
                    if y + 1 < h {
                        acc += center - latent.get(x, y + 1);
                    }
                    grad_latent[y * w + x] += config.smooth_weight * acc;
                }
            }
        }
        optimizer.step(latent.as_mut_slice(), &grad_latent);
    }
    Ok(())
}

/// Adds a zero-mean, content-keyed perturbation to the latent field.
///
/// The seed is an FNV-1a hash of the target raster, so the same tile always
/// receives the same perturbation (full reproducibility) while different
/// tiles — in particular the two tiles sharing an overlap region — receive
/// different ones, reproducing the solution multistability that makes
/// independently optimised tiles disagree in the paper's Fig. 1.
fn perturb_latent(latent: &mut RealGrid, sigma: f64, target: &RealGrid) {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for v in target.as_slice() {
        seed ^= v.to_bits();
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut state = seed | 1;
    let mut next = move || -> f64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    for v in latent.as_mut_slice() {
        *v += sigma * next();
    }
}

/// Maps a `[0, 1]` mask to the latent field (inverse sigmoid).
fn to_latent(mask: &RealGrid, steepness: f64) -> RealGrid {
    mask.map(|&m| {
        let c = m.clamp(0.02, 0.98);
        (c / (1.0 - c)).ln() / steepness
    })
}

/// Maps the latent field back to a `[0, 1]` mask.
fn latent_to_mask(latent: &RealGrid, steepness: f64) -> RealGrid {
    latent.map(|&t| 1.0 / (1.0 + (-steepness * t).exp()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::{Grid, Rect};
    use ilt_litho::{Corner, LithoBank, OpticsConfig, ResistModel};

    fn bank() -> LithoBank {
        LithoBank::new(OpticsConfig::test_small(), ResistModel::default()).unwrap()
    }

    fn target_grid(n: usize) -> RealGrid {
        let mut t = Grid::new(n, n, 0.0);
        t.fill_rect(Rect::new(14, 18, 30, 28), 1.0);
        t.fill_rect(Rect::new(38, 30, 50, 44), 1.0);
        t
    }

    #[test]
    fn latent_roundtrip() {
        let mask = Grid::from_vec(3, 1, vec![0.1, 0.5, 0.9]);
        let latent = to_latent(&mask, 4.0);
        let back = latent_to_mask(&latent, 4.0);
        for i in 0..3 {
            assert!((back.get(i, 0) - mask.get(i, 0)).abs() < 1e-9);
        }
    }

    #[test]
    fn config_validation() {
        let bad = PixelIltConfig {
            lr: 0.0,
            ..PixelIltConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = PixelIltConfig {
            coarse_fraction: 0.95,
            ..PixelIltConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(PixelIltConfig::single_level().validate().is_ok());
    }

    #[test]
    fn names_reflect_schedule() {
        assert_eq!(PixelIlt::new().name(), "multi-level-ilt");
        assert_eq!(
            PixelIlt::with_config(PixelIltConfig::single_level()).name(),
            "pixel-ilt"
        );
    }

    #[test]
    fn loss_decreases_and_mask_prints_target() {
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let solver = PixelIlt::new();
        let request = SolveRequest::new(&target, &target, 30);
        let outcome = solver.solve(&ctx, &request).unwrap();
        assert_eq!(outcome.loss_history.len(), 30);
        let first = outcome.loss_history[0];
        let last = outcome.final_loss().unwrap();
        assert!(last < 0.7 * first, "loss {first} -> {last}");

        // The optimised mask prints closer to the target than the naive
        // mask (= the target itself) does.
        let system = bank.system(64, 1).unwrap();
        let naive_print = system.print(&target, Corner::Nominal).unwrap();
        let opt_print = system.print(&outcome.mask, Corner::Nominal).unwrap();
        let target_bits = target.threshold(0.5);
        let naive_err = naive_print.xor_count(&target_bits);
        let opt_err = opt_print.xor_count(&target_bits);
        assert!(
            opt_err < naive_err,
            "optimised XOR {opt_err} vs naive {naive_err}"
        );
    }

    #[test]
    fn multi_level_history_spans_both_levels() {
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let solver = PixelIlt::with_config(PixelIltConfig {
            coarse_fraction: 0.5,
            ..PixelIltConfig::default()
        });
        let request = SolveRequest::new(&target, &target, 10);
        let outcome = solver.solve(&ctx, &request).unwrap();
        assert_eq!(outcome.loss_history.len(), 10);
        // Coarse losses are computed on a 4x smaller grid, so the scale of
        // the first half differs from the second; both halves must be finite.
        assert!(outcome.loss_history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn refine_scale_shrinks_steps() {
        // With a tiny lr_scale the mask barely moves — the paper's refine
        // ILT property.
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let solver = PixelIlt::with_config(PixelIltConfig::single_level());
        let mut request = SolveRequest::new(&target, &target, 3);
        request.lr_scale = 1e-6;
        let outcome = solver.solve(&ctx, &request).unwrap();
        let drift: f64 = outcome
            .mask
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        // The latent clamp alone moves binary pixels to 0.02/0.98.
        assert!(drift < 0.05, "drift {drift}");
    }

    #[test]
    fn mask_stays_in_unit_interval() {
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let outcome = PixelIlt::new()
            .solve(&ctx, &SolveRequest::new(&target, &target, 8))
            .unwrap();
        assert!(outcome.mask.min() >= 0.0);
        assert!(outcome.mask.max() <= 1.0);
    }

    #[test]
    fn cold_starts_are_perturbed_but_deterministic() {
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let solver = PixelIlt::new();
        let req = SolveRequest::new(&target, &target, 2);
        let a = solver.solve(&ctx, &req).unwrap();
        let b = solver.solve(&ctx, &req).unwrap();
        // Same content -> same perturbation -> identical outcome.
        assert_eq!(a.mask, b.mask);

        // Different content -> different perturbation -> different outcome
        // even where the targets agree locally.
        let mut other = target_grid(64);
        other.fill_rect(Rect::new(2, 2, 6, 6), 1.0);
        let c = solver
            .solve(&ctx, &SolveRequest::new(&other, &other, 2))
            .unwrap();
        assert_ne!(a.mask, c.mask);
    }

    #[test]
    fn warm_starts_skip_perturbation_and_multilevel() {
        // A warm near-zero-step solve must approximately preserve the
        // initial mask (modulo the latent clamp), proving neither noise nor
        // the internal multi-level resampling touched it.
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let initial = target_grid(64);
        let req = SolveRequest {
            target: &target,
            initial: &initial,
            iterations: 1,
            lr_scale: 1e-9,
            gentle: true,
            warm: true,
        };
        let outcome = PixelIlt::new().solve(&ctx, &req).unwrap();
        let drift: f64 = outcome
            .mask
            .as_slice()
            .iter()
            .zip(initial.as_slice())
            .map(|(a, b)| (a - b.clamp(0.02, 0.98)).abs())
            .fold(0.0, f64::max);
        assert!(drift < 1e-6, "warm start drifted by {drift}");
    }

    #[test]
    fn gentle_steps_scale_with_lr() {
        // In gentle (SGD) mode the step is proportional to lr_scale: a
        // 10x-smaller rate must move the mask strictly less.
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let movement = |lr_scale: f64| -> f64 {
            let req = SolveRequest {
                target: &target,
                initial: &target,
                iterations: 2,
                lr_scale,
                gentle: true,
                warm: true,
            };
            let outcome = PixelIlt::new().solve(&ctx, &req).unwrap();
            outcome
                .mask
                .as_slice()
                .iter()
                .zip(target.as_slice())
                .map(|(a, b)| (a - b.clamp(0.02, 0.98)).abs())
                .sum()
        };
        let big = movement(0.1);
        let small = movement(0.01);
        assert!(
            small < big,
            "gentle movement not monotone: {small} vs {big}"
        );
    }

    #[test]
    fn init_noise_zero_disables_perturbation() {
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let quiet = PixelIlt::with_config(PixelIltConfig {
            init_noise: 0.0,
            coarse_fraction: 0.0,
            ..PixelIltConfig::multi_level()
        });
        // With zero iterations nothing may move at all.
        let req = SolveRequest::new(&target, &target, 0);
        let outcome = quiet.solve(&ctx, &req).unwrap();
        let drift: f64 = outcome
            .mask
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(a, b)| (a - b.clamp(0.02, 0.98)).abs())
            .fold(0.0, f64::max);
        assert!(drift < 1e-12);
    }

    #[test]
    fn negative_noise_rejected() {
        let bad = PixelIltConfig {
            init_noise: -1.0,
            ..PixelIltConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn expired_deadline_stops_the_iteration_loop() {
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let solver = PixelIlt::new();
        let request = SolveRequest::new(&target, &target, 50);
        let _scope = ilt_fault::deadline::scope(Some(std::time::Instant::now()));
        match solver.solve(&ctx, &request) {
            Err(OptError::DeadlineExceeded {
                completed_iterations,
            }) => assert_eq!(completed_iterations, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_does_not_perturb_the_solve() {
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let solver = PixelIlt::new();
        let request = SolveRequest::new(&target, &target, 5);
        let free = solver.solve(&ctx, &request).unwrap();
        let _scope = ilt_fault::deadline::scope(Some(
            std::time::Instant::now() + std::time::Duration::from_secs(600),
        ));
        let bounded = solver.solve(&ctx, &request).unwrap();
        assert_eq!(free.mask.as_slice(), bounded.mask.as_slice());
        assert_eq!(free.loss_history, bounded.loss_history);
    }
}

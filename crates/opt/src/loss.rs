//! The ILT objective: squared error between the sigmoid-relaxed wafer image
//! and the target, differentiated with respect to the aerial intensity.

use ilt_grid::RealGrid;
use ilt_litho::ResistModel;

/// Result of evaluating the objective at one aerial image.
#[derive(Debug, Clone)]
pub struct LossEval {
    /// Scalar loss `sum (Z - Z_t)^2` over the relaxed wafer image.
    pub value: f64,
    /// Derivative of the loss with respect to the aerial intensity,
    /// `dL/dI = 2 (Z - Z_t) . k Z (1 - Z)`.
    pub dldi: RealGrid,
    /// The relaxed wafer image itself (useful for monitoring).
    pub wafer: RealGrid,
}

/// Evaluates the relaxed L2 objective against `target` (0/1 valued).
///
/// # Panics
///
/// Panics if `aerial` and `target` shapes differ.
///
/// # Examples
///
/// ```
/// use ilt_grid::Grid;
/// use ilt_litho::ResistModel;
/// use ilt_opt::evaluate_loss;
///
/// let resist = ResistModel::default();
/// // An aerial image exactly at threshold prints Z = 0.5 everywhere.
/// let aerial = Grid::new(4, 4, resist.threshold);
/// let target = Grid::new(4, 4, 1.0);
/// let eval = evaluate_loss(&resist, &aerial, &target);
/// assert!((eval.value - 16.0 * 0.25).abs() < 1e-12);
/// ```
pub fn evaluate_loss(resist: &ResistModel, aerial: &RealGrid, target: &RealGrid) -> LossEval {
    let mut out = LossEval {
        value: 0.0,
        dldi: RealGrid::new(aerial.width(), aerial.height(), 0.0),
        wafer: RealGrid::new(aerial.width(), aerial.height(), 0.0),
    };
    evaluate_loss_into(resist, aerial, target, &mut out);
    out
}

/// Evaluates the relaxed L2 objective into reusable buffers: at steady
/// state (matching shapes) this performs zero heap allocations, which is
/// what lets the level-set solver's iteration loop stay allocation-free.
/// Mismatched buffer shapes are (re)allocated on first use.
///
/// # Panics
///
/// Panics if `aerial` and `target` shapes differ.
pub fn evaluate_loss_into(
    resist: &ResistModel,
    aerial: &RealGrid,
    target: &RealGrid,
    out: &mut LossEval,
) {
    assert_eq!(
        (aerial.width(), aerial.height()),
        (target.width(), target.height()),
        "aerial and target shapes differ"
    );
    let (w, h) = (aerial.width(), aerial.height());
    if (out.dldi.width(), out.dldi.height()) != (w, h) {
        out.dldi = RealGrid::new(w, h, 0.0);
    }
    if (out.wafer.width(), out.wafer.height()) != (w, h) {
        out.wafer = RealGrid::new(w, h, 0.0);
    }
    let mut value = 0.0;
    for (((i, zt), dldi), wafer) in aerial
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .zip(out.dldi.as_mut_slice())
        .zip(out.wafer.as_mut_slice())
    {
        let z = resist.sigmoid_at(*i);
        let e = z - zt;
        value += e * e;
        // One logistic evaluation per pixel: the derivative reuses `z`
        // instead of re-evaluating the sigmoid.
        *dldi = 2.0 * e * resist.sigmoid_derivative_from(z);
        *wafer = z;
    }
    out.value = value;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Grid;

    fn resist() -> ResistModel {
        ResistModel {
            threshold: 0.3,
            steepness: 20.0,
        }
    }

    #[test]
    fn perfect_image_has_near_zero_loss() {
        let r = resist();
        // Aerial far above threshold where target = 1, far below where 0.
        let target = Grid::from_vec(2, 1, vec![1.0, 0.0]);
        let aerial = Grid::from_vec(2, 1, vec![1.0, 0.0]);
        let eval = evaluate_loss(&r, &aerial, &target);
        assert!(eval.value < 1e-5, "loss {}", eval.value);
    }

    #[test]
    fn wrong_image_has_large_loss() {
        let r = resist();
        let target = Grid::from_vec(2, 1, vec![1.0, 0.0]);
        let aerial = Grid::from_vec(2, 1, vec![0.0, 1.0]);
        let eval = evaluate_loss(&r, &aerial, &target);
        assert!(eval.value > 1.9, "loss {}", eval.value);
    }

    #[test]
    fn gradient_sign_pushes_towards_target() {
        let r = resist();
        // Under-exposed feature pixel: increasing I must decrease loss.
        let target = Grid::from_vec(1, 1, vec![1.0]);
        let aerial = Grid::from_vec(1, 1, vec![0.25]);
        let eval = evaluate_loss(&r, &aerial, &target);
        assert!(eval.dldi.get(0, 0) < 0.0);
        // Over-exposed background pixel: increasing I must increase loss.
        let target = Grid::from_vec(1, 1, vec![0.0]);
        let eval = evaluate_loss(&r, &aerial, &target);
        assert!(eval.dldi.get(0, 0) > 0.0);
    }

    #[test]
    fn dldi_matches_finite_difference() {
        let r = resist();
        let target = Grid::from_vec(1, 1, vec![1.0]);
        for &i0 in &[0.1, 0.3, 0.45] {
            let aerial = Grid::from_vec(1, 1, vec![i0]);
            let eval = evaluate_loss(&r, &aerial, &target);
            let eps = 1e-7;
            let bumped = evaluate_loss(&r, &Grid::from_vec(1, 1, vec![i0 + eps]), &target);
            let numeric = (bumped.value - eval.value) / eps;
            let analytic = eval.dldi.get(0, 0);
            assert!(
                (numeric - analytic).abs() < 1e-5 * (1.0 + analytic.abs()),
                "at {i0}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn exposes_wafer_image() {
        let r = resist();
        let aerial = Grid::new(3, 3, r.threshold);
        let eval = evaluate_loss(&r, &aerial, &Grid::new(3, 3, 0.0));
        assert!((eval.wafer.get(1, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn shape_mismatch_panics() {
        let r = resist();
        let _ = evaluate_loss(&r, &Grid::new(2, 2, 0.0), &Grid::new(3, 3, 0.0));
    }
}

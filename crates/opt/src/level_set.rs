//! Level-set ILT — the "GLS-ILT" baseline (\[3\] in the paper).
//!
//! The mask is the negative region of a level-set function `phi`. Each
//! iteration backpropagates the litho loss to a boundary velocity, advects
//! `phi` with a CFL-limited step, and periodically re-initialises `phi` to a
//! signed distance field. Because the mask can only change by moving its
//! contour, this solver produces far fewer sub-resolution assist features
//! than pixel ILT — which is exactly why the paper observes lower stitch
//! loss (but worse L2) for GLS-ILT under divide-and-conquer.

use ilt_grid::RealGrid;

use crate::error::OptError;
use crate::loss::{evaluate_loss_into, LossEval};
use crate::sdf::{signed_distance, smooth_mask, smooth_mask_derivative_into, smooth_mask_into};
use crate::solver::{IltOutcome, SolveContext, SolveRequest, TileSolver};

/// Configuration of the level-set solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelSetIltConfig {
    /// Velocity scale applied to the backpropagated gradient.
    pub lr: f64,
    /// Half-width (pixels) of the smooth Heaviside band.
    pub band_eps: f64,
    /// Re-initialise `phi` to a signed distance field every this many
    /// iterations.
    pub reinit_every: usize,
    /// Maximum level-set change per iteration in pixels (CFL limit).
    pub cfl: f64,
}

impl LevelSetIltConfig {
    /// Configuration matching the GLS-ILT baseline.
    pub fn gls_default() -> Self {
        LevelSetIltConfig {
            lr: 40.0,
            band_eps: 1.6,
            reinit_every: 8,
            cfl: 0.9,
        }
    }

    fn validate(&self) -> Result<(), OptError> {
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(OptError::BadConfig {
                reason: format!("velocity scale {} must be positive", self.lr),
            });
        }
        if self.band_eps <= 0.0 || self.band_eps.is_nan() {
            return Err(OptError::BadConfig {
                reason: "band width must be positive".to_string(),
            });
        }
        if self.reinit_every == 0 {
            return Err(OptError::BadConfig {
                reason: "reinit period must be nonzero".to_string(),
            });
        }
        if !(self.cfl > 0.0 && self.cfl <= 2.0) {
            return Err(OptError::BadConfig {
                reason: format!("CFL limit {} outside (0, 2]", self.cfl),
            });
        }
        Ok(())
    }
}

impl Default for LevelSetIltConfig {
    fn default() -> Self {
        LevelSetIltConfig::gls_default()
    }
}

/// The level-set solver.
#[derive(Debug, Clone, Default)]
pub struct LevelSetIlt {
    config: LevelSetIltConfig,
}

impl LevelSetIlt {
    /// Creates a solver with the GLS defaults.
    pub fn new() -> Self {
        LevelSetIlt {
            config: LevelSetIltConfig::gls_default(),
        }
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: LevelSetIltConfig) -> Self {
        LevelSetIlt { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LevelSetIltConfig {
        &self.config
    }
}

impl TileSolver for LevelSetIlt {
    fn name(&self) -> &str {
        "gls-ilt"
    }

    fn solve(
        &self,
        ctx: &SolveContext<'_>,
        request: &SolveRequest<'_>,
    ) -> Result<IltOutcome, OptError> {
        crate::solver::with_solve_span(self.name(), ctx, request, || self.solve_inner(ctx, request))
    }
}

impl LevelSetIlt {
    fn solve_inner(
        &self,
        ctx: &SolveContext<'_>,
        request: &SolveRequest<'_>,
    ) -> Result<IltOutcome, OptError> {
        self.config.validate()?;
        request.validate(ctx)?;
        let cfg = &self.config;
        let system = ctx.system()?;
        let mut phi = signed_distance(&request.initial.threshold(0.5));
        let mut history = Vec::with_capacity(request.iterations);
        let lr = cfg.lr * request.lr_scale;

        // Reused scratch, hoisted out of the loop: the forward/adjoint
        // arena plus the mask/derivative/loss/step buffers. With
        // everything preallocated, iterations between re-initialisations
        // perform zero heap allocations (pinned by the counting-allocator
        // test in `tests/zero_alloc.rs`).
        let mut ws = system.workspace();
        let (w, h) = (phi.width(), phi.height());
        let mut mask = RealGrid::new(w, h, 0.0);
        let mut dmask_dphi = RealGrid::new(w, h, 0.0);
        let mut eval = LossEval {
            value: 0.0,
            dldi: RealGrid::new(w, h, 0.0),
            wafer: RealGrid::new(w, h, 0.0),
        };
        let mut step = vec![0.0f64; w * h];
        for iter in 0..request.iterations {
            if ilt_fault::deadline::exceeded() {
                return Err(OptError::DeadlineExceeded {
                    completed_iterations: history.len(),
                });
            }
            smooth_mask_into(&phi, cfg.band_eps, &mut mask);
            system.simulate_into(&mask, &mut ws)?;
            evaluate_loss_into(system.resist(), ws.intensity(), request.target, &mut eval);
            history.push(eval.value);
            let grad_mask = system.gradient_into(&mut ws, &eval.dldi)?;
            smooth_mask_derivative_into(&phi, cfg.band_eps, &mut dmask_dphi);

            // Gradient descent direction on phi, then a CFL clamp so the
            // contour never jumps more than `cfl` pixels per step.
            for ((s, g), d) in step
                .iter_mut()
                .zip(grad_mask.as_slice())
                .zip(dmask_dphi.as_slice())
            {
                *s = -lr * g * d;
            }
            let peak = step.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if peak > cfg.cfl {
                let scale = cfg.cfl / peak;
                for v in &mut step {
                    *v *= scale;
                }
            }
            for (p, v) in phi.as_mut_slice().iter_mut().zip(&step) {
                *p += v;
            }

            if (iter + 1) % cfg.reinit_every == 0 {
                phi = signed_distance(&binary_from_phi(&phi));
            }
        }

        Ok(IltOutcome::new(
            smooth_mask(&phi, cfg.band_eps),
            crate::solver::ConvergenceTrace::single("fine", history),
        ))
    }
}

fn binary_from_phi(phi: &RealGrid) -> ilt_grid::BitGrid {
    phi.map(|&p| u8::from(p < 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::{Grid, Rect};
    use ilt_litho::{Corner, LithoBank, OpticsConfig, ResistModel};

    fn bank() -> LithoBank {
        LithoBank::new(OpticsConfig::test_small(), ResistModel::default()).unwrap()
    }

    fn target_grid(n: usize) -> RealGrid {
        let mut t = Grid::new(n, n, 0.0);
        t.fill_rect(Rect::new(16, 20, 34, 30), 1.0);
        t.fill_rect(Rect::new(40, 34, 52, 46), 1.0);
        t
    }

    #[test]
    fn config_validation() {
        assert!(LevelSetIltConfig::gls_default().validate().is_ok());
        for bad in [
            LevelSetIltConfig {
                lr: -1.0,
                ..Default::default()
            },
            LevelSetIltConfig {
                band_eps: 0.0,
                ..Default::default()
            },
            LevelSetIltConfig {
                reinit_every: 0,
                ..Default::default()
            },
            LevelSetIltConfig {
                cfl: 5.0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn name() {
        assert_eq!(LevelSetIlt::new().name(), "gls-ilt");
    }

    #[test]
    fn loss_decreases_and_print_improves() {
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let outcome = LevelSetIlt::new()
            .solve(&ctx, &SolveRequest::new(&target, &target, 30))
            .unwrap();
        let first = outcome.loss_history[0];
        let last = outcome.final_loss().unwrap();
        assert!(last < 0.8 * first, "loss {first} -> {last}");

        let system = bank.system(64, 1).unwrap();
        let target_bits = target.threshold(0.5);
        let naive = system
            .print(&target, Corner::Nominal)
            .unwrap()
            .xor_count(&target_bits);
        let optimised = system
            .print(&outcome.mask, Corner::Nominal)
            .unwrap()
            .xor_count(&target_bits);
        assert!(optimised < naive, "optimised {optimised} vs naive {naive}");
    }

    #[test]
    fn mask_is_nearly_binary() {
        // Level-set masks are binary away from the epsilon band — unlike
        // pixel ILT there is no extended gray region.
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let outcome = LevelSetIlt::new()
            .solve(&ctx, &SolveRequest::new(&target, &target, 12))
            .unwrap();
        let gray = outcome
            .mask
            .as_slice()
            .iter()
            .filter(|&&m| m > 0.05 && m < 0.95)
            .count();
        // The gray band hugs the contour: a thin fraction of the grid.
        assert!(
            (gray as f64) < 0.2 * outcome.mask.len() as f64,
            "{gray} gray pixels"
        );
    }

    #[test]
    fn produces_fewer_components_than_pixel_ilt() {
        // The defining qualitative difference the paper relies on: level-set
        // masks stay topologically close to the target (few SRAFs).
        use crate::pixel::PixelIlt;
        use ilt_grid::connected_components;

        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let request = SolveRequest::new(&target, &target, 25);
        let ls = LevelSetIlt::new().solve(&ctx, &request).unwrap();
        let px = PixelIlt::new().solve(&ctx, &request).unwrap();
        let (_, ls_comps) = connected_components(&ls.mask.threshold(0.5));
        let (_, px_comps) = connected_components(&px.mask.threshold(0.5));
        assert!(
            ls_comps.len() <= px_comps.len(),
            "level-set {} vs pixel {} components",
            ls_comps.len(),
            px_comps.len()
        );
    }

    #[test]
    fn cfl_limits_step_size() {
        // With an absurd lr the CFL clamp must keep phi finite and the mask
        // valid.
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let solver = LevelSetIlt::with_config(LevelSetIltConfig {
            lr: 1e9,
            ..Default::default()
        });
        let outcome = solver
            .solve(&ctx, &SolveRequest::new(&target, &target, 5))
            .unwrap();
        assert!(outcome.mask.as_slice().iter().all(|m| m.is_finite()));
        assert!(outcome.mask.min() >= 0.0 && outcome.mask.max() <= 1.0);
    }

    #[test]
    fn expired_deadline_stops_the_iteration_loop() {
        let bank = bank();
        let ctx = SolveContext {
            bank: &bank,
            n: 64,
            scale: 1,
        };
        let target = target_grid(64);
        let solver = LevelSetIlt::new();
        let _scope = ilt_fault::deadline::scope(Some(std::time::Instant::now()));
        match solver.solve(&ctx, &SolveRequest::new(&target, &target, 20)) {
            Err(OptError::DeadlineExceeded {
                completed_iterations,
            }) => assert_eq!(completed_iterations, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
}

//! First-order optimisers operating on flat parameter vectors.

/// An optimiser updating a parameter vector in place from a gradient.
#[derive(Debug, Clone)]
pub enum Optimizer {
    /// Plain gradient descent with a fixed learning rate.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Adam (Kingma & Ba) with bias correction.
    Adam(AdamState),
}

impl Optimizer {
    /// Creates a gradient-descent optimiser.
    pub fn sgd(lr: f64) -> Self {
        Optimizer::Sgd { lr }
    }

    /// Creates an Adam optimiser with the usual default moments.
    pub fn adam(lr: f64) -> Self {
        Optimizer::Adam(AdamState::new(lr, 0.9, 0.999, 1e-8))
    }

    /// Applies one update step: `params -= direction(grad)`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grad.len()`, or if an Adam state was
    /// initialised with a different parameter count.
    pub fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(
            params.len(),
            grad.len(),
            "parameter/gradient length mismatch"
        );
        match self {
            Optimizer::Sgd { lr } => {
                for (p, g) in params.iter_mut().zip(grad) {
                    *p -= *lr * g;
                }
            }
            Optimizer::Adam(state) => state.step(params, grad),
        }
    }

    /// Scales the learning rate (used by the paper's small-step refine ILT).
    pub fn scale_lr(&mut self, factor: f64) {
        match self {
            Optimizer::Sgd { lr } => *lr *= factor,
            Optimizer::Adam(state) => state.lr *= factor,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        match self {
            Optimizer::Sgd { lr } => *lr,
            Optimizer::Adam(state) => state.lr,
        }
    }
}

/// Internal state of the Adam optimiser.
#[derive(Debug, Clone)]
pub struct AdamState {
    lr: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamState {
    fn new(lr: f64, beta1: f64, beta2: f64, epsilon: f64) -> Self {
        AdamState {
            lr,
            beta1,
            beta2,
            epsilon,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        if self.m.is_empty() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "Adam state reused for a different size"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 from x = 0.
    fn run(mut opt: Optimizer, iters: usize) -> f64 {
        let mut x = [0.0f64];
        for _ in 0..iters {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run(Optimizer::sgd(0.1), 100);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run(Optimizer::adam(0.3), 300);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_handles_scale_differences_better_than_sgd() {
        // f(x, y) = x^2 + 1000 y^2: SGD with a stable lr crawls on x;
        // Adam normalises per-coordinate.
        let grad = |p: &[f64]| [2.0 * p[0], 2000.0 * p[1]];
        let mut sgd = Optimizer::sgd(0.0009); // near stability limit
        let mut adam = Optimizer::adam(0.1);
        let mut ps = [5.0, 5.0];
        let mut pa = [5.0, 5.0];
        for _ in 0..200 {
            let gs = grad(&ps);
            sgd.step(&mut ps, &gs);
            let ga = grad(&pa);
            adam.step(&mut pa, &ga);
        }
        let fs = ps[0] * ps[0] + 1000.0 * ps[1] * ps[1];
        let fa = pa[0] * pa[0] + 1000.0 * pa[1] * pa[1];
        assert!(fa < fs, "adam {fa} vs sgd {fs}");
    }

    #[test]
    fn scale_lr_and_accessor() {
        let mut opt = Optimizer::sgd(1.0);
        opt.scale_lr(0.1);
        assert!((opt.lr() - 0.1).abs() < 1e-15);
        let mut opt = Optimizer::adam(0.5);
        opt.scale_lr(2.0);
        assert!((opt.lr() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Optimizer::sgd(0.1);
        opt.step(&mut [0.0, 1.0], &[1.0]);
    }

    #[test]
    fn zero_gradient_is_fixed_point() {
        let mut opt = Optimizer::adam(0.5);
        let mut x = [2.0, -1.0];
        opt.step(&mut x, &[0.0, 0.0]);
        assert_eq!(x, [2.0, -1.0]);
    }
}

//! # ilt-opt
//!
//! Single-tile ILT solvers — the `phi(.)` of the paper's Algorithm 1 — plus
//! the optimisation plumbing they share.
//!
//! Two solver families are provided, matching the paper's baselines:
//!
//! * [`PixelIlt`] — sigmoid-relaxed pixel-domain gradient ILT with an
//!   optional multi-level simulation schedule ("Multi-level-ILT", ref. \[4\]).
//!   Free pixel parameterisation nucleates sub-resolution assist features,
//!   giving the best L2 but the worst boundary-stitch behaviour.
//! * [`LevelSetIlt`] — level-set ILT with signed-distance reinitialisation
//!   ("GLS-ILT", ref. \[3\]). The mask changes only by contour motion, so it
//!   produces few SRAFs and stitches more cleanly but converges to a worse
//!   L2.
//!
//! Both implement [`TileSolver`], which is what the multigrid-Schwarz flows
//! in `ilt-core` consume.
//!
//! # Examples
//!
//! ```
//! use ilt_grid::{Grid, Rect};
//! use ilt_litho::{LithoBank, OpticsConfig, ResistModel};
//! use ilt_opt::{PixelIlt, SolveContext, SolveRequest, TileSolver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::default())?;
//! let ctx = SolveContext { bank: &bank, n: 64, scale: 1 };
//! let mut target = Grid::new(64, 64, 0.0);
//! target.fill_rect(Rect::new(20, 24, 44, 36), 1.0);
//! let outcome = PixelIlt::new().solve(&ctx, &SolveRequest::new(&target, &target, 5))?;
//! assert_eq!(outcome.loss_history.len(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod level_set;
mod loss;
mod optimizer;
mod pixel;
mod sdf;
mod solver;

pub use error::OptError;
pub use level_set::{LevelSetIlt, LevelSetIltConfig};
pub use loss::{evaluate_loss, evaluate_loss_into, LossEval};
pub use optimizer::{AdamState, Optimizer};
pub use pixel::{PixelIlt, PixelIltConfig};
pub use sdf::{
    signed_distance, smooth_mask, smooth_mask_derivative, smooth_mask_derivative_into,
    smooth_mask_into,
};
pub use solver::{
    ConvergenceTrace, IltOutcome, SolveContext, SolveRequest, TileSolver, TraceSegment,
};

//! End-to-end determinism: a full pixel-ILT solve must produce a
//! bit-identical mask whether the simulators run serial or with the
//! `ILT_INNER_THREADS` budget set to 4.
//!
//! Single test, own binary: `ilt_par::set_inner_threads` mutates the
//! process-global budget that `LithoSimulator::new` reads (the same global
//! the `ILT_INNER_THREADS` environment knob feeds).

use ilt_grid::{Grid, Rect};
use ilt_litho::{LithoBank, OpticsConfig, ResistModel};
use ilt_opt::{PixelIlt, SolveContext, SolveRequest, TileSolver};

fn solve_mask() -> ilt_grid::RealGrid {
    let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::default()).unwrap();
    let ctx = SolveContext {
        bank: &bank,
        n: 64,
        scale: 1,
    };
    let mut target = Grid::new(64, 64, 0.0);
    target.fill_rect(Rect::new(14, 18, 30, 28), 1.0);
    target.fill_rect(Rect::new(38, 30, 50, 44), 1.0);
    let outcome = PixelIlt::new()
        .solve(&ctx, &SolveRequest::new(&target, &target, 6))
        .unwrap();
    outcome.mask
}

#[test]
fn solver_output_is_bit_identical_serial_vs_four_inner_threads() {
    ilt_par::set_inner_threads(1);
    let serial = solve_mask();
    ilt_par::set_inner_threads(4);
    let parallel = solve_mask();
    ilt_par::set_inner_threads(1);
    assert_eq!(
        serial.as_slice(),
        parallel.as_slice(),
        "inner-thread parallelism must not change solver results"
    );
}

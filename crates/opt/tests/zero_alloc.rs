//! Pins the level-set solver's steady-state allocation guarantee and
//! cross-checks the `ilt-prof` tracking allocator against an independent
//! count.
//!
//! The counting `#[global_allocator]` here delegates through
//! [`ilt_prof::TrackingAlloc`] (instead of `System` directly), so both
//! counters observe the *exact same* allocation stream: the test's own
//! thread-local event count must agree with the tracking allocator's
//! per-stage counters for the stage tag installed around the solve.
//!
//! Steady state is measured black-box: two solves differing only in
//! iteration count must allocate the *same* number of times, because the
//! per-iteration path (smooth-mask, simulate, loss, gradient, step) is
//! fully preallocated. Re-initialisation is excluded by a large
//! `reinit_every` (it rebuilds the signed distance field and is a
//! documented periodic allocation).
//!
//! Single file, own binary: a global allocator is process-wide state.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::Cell;

use ilt_grid::{Grid, Rect};
use ilt_litho::{LithoBank, OpticsConfig, ResistModel};
use ilt_opt::{LevelSetIlt, LevelSetIltConfig, SolveContext, SolveRequest, TileSolver};
use ilt_prof::Stage;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

static TRACKING: ilt_prof::TrackingAlloc = ilt_prof::TrackingAlloc::new();

struct CountingAlloc;

// SAFETY: defers every operation to the tracking allocator (which defers
// to `System`); the extra bookkeeping only touches a thread-local counter
// via `try_with`, so TLS teardown is safe.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { TRACKING.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { TRACKING.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { TRACKING.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { TRACKING.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn stage_calls(stats: &ilt_prof::AllocStats, stage: Stage) -> u64 {
    stats.stages[stage as usize].calls
}

fn stage_bytes(stats: &ilt_prof::AllocStats, stage: Stage) -> u64 {
    stats.stages[stage as usize].bytes
}

#[test]
fn level_set_steady_state_is_allocation_free_and_counters_agree() {
    // The flight recorder's ring growth is amortised and would make the
    // two runs' allocation counts differ by harness noise; the guarantee
    // under test is about the solver, so switch recording off.
    ilt_telemetry::flight::set_recording(false);

    let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::default()).unwrap();
    let ctx = SolveContext {
        bank: &bank,
        n: 64,
        scale: 1,
    };
    let mut target = Grid::new(64, 64, 0.0);
    target.fill_rect(Rect::new(16, 20, 34, 30), 1.0);
    target.fill_rect(Rect::new(40, 34, 52, 46), 1.0);
    // Re-initialisation excluded: it is the documented periodic allocation.
    let solver = LevelSetIlt::with_config(LevelSetIltConfig {
        reinit_every: 1000,
        ..LevelSetIltConfig::gls_default()
    });

    // Warm-up: faults in lazily initialised state (shared FFT plan cache,
    // telemetry thread-locals, live-stack registration).
    solver
        .solve(&ctx, &SolveRequest::new(&target, &target, 2))
        .unwrap();

    // Both counters watch the same window: the test's thread-local event
    // count, and the tracking allocator's per-stage counters via a stage
    // tag only this thread wears (concurrent harness threads stay
    // untagged, so the per-stage numbers are pollution-free).
    ilt_prof::alloc::set_enabled(true);
    let short = {
        let _tag = ilt_prof::stage_scope(Stage::Fine);
        let counted_before = allocations_on_this_thread();
        let tracked_before = stage_calls(&ilt_prof::alloc::stats(), Stage::Fine);
        solver
            .solve(&ctx, &SolveRequest::new(&target, &target, 4))
            .unwrap();
        (
            allocations_on_this_thread() - counted_before,
            stage_calls(&ilt_prof::alloc::stats(), Stage::Fine) - tracked_before,
        )
    };
    let long = {
        let _tag = ilt_prof::stage_scope(Stage::Fine);
        let counted_before = allocations_on_this_thread();
        let tracked_before = stage_calls(&ilt_prof::alloc::stats(), Stage::Fine);
        let bytes_before = stage_bytes(&ilt_prof::alloc::stats(), Stage::Fine);
        solver
            .solve(&ctx, &SolveRequest::new(&target, &target, 12))
            .unwrap();
        assert!(
            stage_bytes(&ilt_prof::alloc::stats(), Stage::Fine) > bytes_before,
            "a solve must attribute some bytes to its stage"
        );
        (
            allocations_on_this_thread() - counted_before,
            stage_calls(&ilt_prof::alloc::stats(), Stage::Fine) - tracked_before,
        )
    };
    ilt_prof::alloc::set_enabled(false);
    ilt_telemetry::flight::set_recording(true);

    // Agreement: both counters saw the identical allocation stream.
    assert_eq!(
        short.0, short.1,
        "tracking allocator per-stage count must match the test's own count"
    );
    assert_eq!(
        long.0, long.1,
        "tracking allocator per-stage count must match the test's own count"
    );
    // Steady state: 8 extra iterations allocate nothing — the whole
    // per-solve allocation budget is in setup/teardown.
    assert_eq!(
        long.0, short.0,
        "extra level-set iterations must not allocate (per-iteration path is preallocated)"
    );
}

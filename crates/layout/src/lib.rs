//! # ilt-layout
//!
//! Synthetic metal-1 layout generation and the 20-clip benchmark suite.
//!
//! The paper evaluates on 20 industrial M1 clips that are not public; this
//! crate substitutes a deterministic generator producing design-rule-clean
//! rectilinear wiring (tracks, jogs, line-ends, stubs) with comparable
//! feature statistics. See `DESIGN.md` at the workspace root for the full
//! substitution argument.
//!
//! * [`GeneratorConfig`] / [`generate_clip`] — seeded clip generation;
//! * [`DesignRules`] / [`check`] — width/space/area rule checking;
//! * [`benchmark_suite`] — the `case1..case20` workload of Table 1;
//! * [`generate_via_clip`] / [`pattern_diversity`] — a via-layer generator
//!   and the pattern-repetition analysis behind the paper's remark that
//!   template extraction suits via layers better than ILT.
//!
//! # Examples
//!
//! ```
//! use ilt_layout::{benchmark_suite, GeneratorConfig};
//!
//! let suite = benchmark_suite(&GeneratorConfig::with_size(192));
//! assert_eq!(suite.len(), 20);
//! assert!(suite.iter().all(|clip| clip.area > 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drc;
mod gen;
mod suite;
mod via;

pub use drc::{check, DesignRules, DrcReport};
pub use gen::{generate_clip, GeneratorConfig};
pub use suite::{benchmark_suite, suite_of_size, Clip};
pub use via::{generate_via_clip, pattern_diversity, PatternDiversity, ViaConfig};

//! Minimal design-rule definitions and checks for generated layouts.
//!
//! The generator in [`crate::gen`] is correct by construction, but the rule
//! checks here double as tests and as the manufacturability lens through
//! which stitched masks are judged (discontinuities at tile boundaries are
//! exactly MRC violations: slivers thinner than `min_width` and notches
//! narrower than `min_space`).

use ilt_grid::{connected_components, dilate, erode, BitGrid, Grid};

/// Width/space/area rules, all in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignRules {
    /// Minimum feature width.
    pub min_width: usize,
    /// Minimum spacing between distinct features.
    pub min_space: usize,
    /// Minimum feature area in pixels.
    pub min_area: usize,
}

impl DesignRules {
    /// Rules used by the default benchmark suite.
    pub fn m1_default() -> Self {
        DesignRules {
            min_width: 8,
            min_space: 10,
            min_area: 96,
        }
    }
}

impl Default for DesignRules {
    fn default() -> Self {
        DesignRules::m1_default()
    }
}

/// Result of checking a binary layout against [`DesignRules`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrcReport {
    /// Pixels that vanish under a `min_width`-preserving opening — i.e.
    /// pixels belonging to slivers thinner than the rule.
    pub width_violations: usize,
    /// Number of axis-aligned background runs strictly between metal that
    /// are shorter than `min_space`.
    pub space_violations: usize,
    /// Number of features smaller than `min_area`.
    pub area_violations: usize,
}

impl DrcReport {
    /// Returns `true` if no rule is violated.
    pub fn is_clean(&self) -> bool {
        self.width_violations == 0 && self.space_violations == 0 && self.area_violations == 0
    }
}

/// Checks a binary layout against the rules.
///
/// * **width** — an opening with a square of half the minimum width must not
///   remove any pixel;
/// * **space** — every horizontal and vertical background run strictly
///   between metal pixels must span at least `min_space` (exact for the
///   rectilinear geometry this workspace generates);
/// * **area** — every component must have at least `min_area` pixels.
pub fn check(layout: &BitGrid, rules: &DesignRules) -> DrcReport {
    // Width: radius r keeps features of width >= 2r+1.
    let r = rules.min_width.saturating_sub(1) / 2;
    let opened = dilate(&erode(layout, r), r);
    let width_violations = layout
        .as_slice()
        .iter()
        .zip(opened.as_slice())
        .filter(|(a, b)| **a != 0 && **b == 0)
        .count();

    let space_violations = short_gap_runs(layout, rules.min_space)
        + short_gap_runs(&transpose(layout), rules.min_space);

    let (_, components) = connected_components(layout);
    let area_violations = components
        .iter()
        .filter(|c| c.area < rules.min_area)
        .count();

    DrcReport {
        width_violations,
        space_violations,
        area_violations,
    }
}

/// Counts horizontal background runs between two metal pixels that are
/// shorter than `min_space`.
fn short_gap_runs(layout: &BitGrid, min_space: usize) -> usize {
    let mut violations = 0;
    for y in 0..layout.height() {
        let row = layout.row(y);
        let mut last_metal: Option<usize> = None;
        for (x, &v) in row.iter().enumerate() {
            if v != 0 {
                if let Some(prev) = last_metal {
                    let gap = x - prev - 1;
                    if gap > 0 && gap < min_space {
                        violations += 1;
                    }
                }
                last_metal = Some(x);
            }
        }
    }
    violations
}

fn transpose(img: &BitGrid) -> BitGrid {
    Grid::from_fn(img.height(), img.width(), |x, y| img.get(y, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::{Grid, Rect};

    fn rules() -> DesignRules {
        DesignRules {
            min_width: 5,
            min_space: 4,
            min_area: 20,
        }
    }

    #[test]
    fn clean_layout_passes() {
        let mut g = Grid::new(40, 40, 0u8);
        g.fill_rect(Rect::new(4, 4, 14, 14), 1); // 10x10
        g.fill_rect(Rect::new(22, 4, 32, 14), 1); // 8 px away
        let report = check(&g, &rules());
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn thin_sliver_flags_width() {
        let mut g = Grid::new(40, 40, 0u8);
        g.fill_rect(Rect::new(4, 4, 30, 6), 1); // 2 px tall wire
        let report = check(&g, &rules());
        assert!(report.width_violations > 0);
    }

    #[test]
    fn close_features_flag_spacing() {
        let mut g = Grid::new(40, 40, 0u8);
        g.fill_rect(Rect::new(4, 4, 14, 14), 1);
        g.fill_rect(Rect::new(16, 4, 26, 14), 1); // gap of 2 < 4
        let report = check(&g, &rules());
        assert!(report.space_violations > 0);
    }

    #[test]
    fn tiny_feature_flags_area() {
        let mut g = Grid::new(40, 40, 0u8);
        g.fill_rect(Rect::new(4, 4, 8, 8), 1); // 16 px < 20
        let report = check(&g, &rules());
        assert!(report.area_violations > 0);
    }

    #[test]
    fn empty_layout_is_clean() {
        let g: BitGrid = Grid::new(16, 16, 0);
        assert!(check(&g, &rules()).is_clean());
    }

    #[test]
    fn default_rules_are_consistent() {
        let d = DesignRules::default();
        assert_eq!(d, DesignRules::m1_default());
        assert!(d.min_width > 0 && d.min_space > 0);
        assert!(d.min_area >= d.min_width * d.min_width);
    }
}

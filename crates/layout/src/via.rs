//! Synthetic via-layer generation.
//!
//! The paper evaluates on the M1 metal layer only, noting that for via
//! layers "the method of extracting template patterns is more suitable" —
//! vias are small, repetitive squares, so a pattern library covers them.
//! This generator exists to make that comparison reproducible: via clips
//! can be pushed through the same flows, and their much lower
//! shape-diversity (measurable with [`pattern_diversity`]) shows why
//! template extraction wins there.

use ilt_grid::{BitGrid, Grid, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters of the synthetic via-layer generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViaConfig {
    /// Clip edge length in pixels.
    pub size: usize,
    /// Via edge length (vias are squares).
    pub via: usize,
    /// Placement-lattice pitch.
    pub pitch: usize,
    /// Empty border.
    pub border: usize,
    /// Probability a lattice site holds a via.
    pub fill: f64,
    /// Probability a filled site becomes a via *pair* (bar of two).
    pub pair_prob: f64,
}

impl ViaConfig {
    /// Defaults matched to the benchmark scale.
    pub fn v1_default() -> Self {
        ViaConfig {
            size: 512,
            via: 16,
            pitch: 48,
            border: 20,
            fill: 0.35,
            pair_prob: 0.15,
        }
    }

    /// Same statistics at another clip size.
    pub fn with_size(size: usize) -> Self {
        ViaConfig {
            size,
            ..ViaConfig::v1_default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the lattice cannot hold at least one via.
    pub fn validate(&self) {
        assert!(self.via >= 2, "via must be at least 2 px");
        assert!(self.pitch > self.via, "pitch must exceed the via size");
        assert!(
            (0.0..=1.0).contains(&self.fill) && (0.0..=1.0).contains(&self.pair_prob),
            "probabilities must lie in [0, 1]"
        );
        assert!(
            self.size > 2 * self.border + self.pitch,
            "clip too small for one via site"
        );
    }
}

impl Default for ViaConfig {
    fn default() -> Self {
        ViaConfig::v1_default()
    }
}

/// Generates a via clip; deterministic per `(config, seed)`.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn generate_via_clip(config: &ViaConfig, seed: u64) -> BitGrid {
    config.validate();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x51ED_2709).wrapping_add(3));
    let usable = config.size - 2 * config.border;
    let sites = usable / config.pitch;
    let mut clip: BitGrid = Grid::new(config.size, config.size, 0);
    for sy in 0..sites {
        for sx in 0..sites {
            if !rng.gen_bool(config.fill) {
                continue;
            }
            let x0 = (config.border + sx * config.pitch) as i64;
            let y0 = (config.border + sy * config.pitch) as i64;
            let v = config.via as i64;
            clip.fill_rect(Rect::new(x0, y0, x0 + v, y0 + v), 1);
            // A via pair: a second via one via-length away within the site
            // (vias never leave their pitch cell, preserving spacing).
            if rng.gen_bool(config.pair_prob) && 2 * config.via + 2 < config.pitch {
                let horizontal: bool = rng.gen_bool(0.5);
                let (dx, dy) = if horizontal { (v + 2, 0) } else { (0, v + 2) };
                clip.fill_rect(Rect::new(x0 + dx, y0 + dy, x0 + dx + v, y0 + dy + v), 1);
            }
        }
    }
    clip
}

/// Counts the distinct local pattern signatures of a layout: for every
/// feature, an exact raster snapshot of its bounding box. The ratio of
/// distinct patterns to features is the paper's implicit argument for
/// template methods on via layers (low diversity) versus ILT on metal
/// (high diversity).
pub fn pattern_diversity(layout: &BitGrid) -> PatternDiversity {
    let (_, components) = ilt_grid::connected_components(layout);
    let mut signatures: HashMap<Vec<u8>, usize> = HashMap::new();
    for c in &components {
        let (w, h) = (c.bbox.width() as usize, c.bbox.height() as usize);
        let mut sig = Vec::with_capacity(w * h + 2);
        sig.push(w as u8);
        sig.push(h as u8);
        for (x, y) in c.bbox.pixels() {
            sig.push(layout.get(x as usize, y as usize));
        }
        *signatures.entry(sig).or_insert(0) += 1;
    }
    PatternDiversity {
        features: components.len(),
        distinct_patterns: signatures.len(),
    }
}

/// Result of a [`pattern_diversity`] analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternDiversity {
    /// Number of connected features.
    pub features: usize,
    /// Number of distinct per-feature raster signatures.
    pub distinct_patterns: usize,
}

impl PatternDiversity {
    /// Fraction of features covered by reusing patterns (1 − distinct /
    /// features); high for via layers, low for metal.
    pub fn template_coverage(&self) -> f64 {
        if self.features == 0 {
            0.0
        } else {
            1.0 - self.distinct_patterns as f64 / self.features as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_clip, GeneratorConfig};

    fn cfg() -> ViaConfig {
        ViaConfig::with_size(256)
    }

    #[test]
    fn deterministic_and_distinct_by_seed() {
        assert_eq!(generate_via_clip(&cfg(), 1), generate_via_clip(&cfg(), 1));
        assert_ne!(generate_via_clip(&cfg(), 1), generate_via_clip(&cfg(), 2));
    }

    #[test]
    fn vias_are_square_and_spaced() {
        let clip = generate_via_clip(&cfg(), 7);
        let (_, comps) = ilt_grid::connected_components(&clip);
        assert!(!comps.is_empty());
        for c in &comps {
            // Every feature is one via or a pair: bounded size.
            assert!(c.bbox.width() <= 2 * 16 + 2);
            assert!(c.bbox.height() <= 2 * 16 + 2);
        }
    }

    #[test]
    fn respects_border() {
        let c = cfg();
        let clip = generate_via_clip(&c, 3);
        for i in 0..c.size {
            for b in 0..c.border {
                assert_eq!(clip.get(i, b), 0);
                assert_eq!(clip.get(b, i), 0);
            }
        }
    }

    #[test]
    fn via_layer_has_far_lower_pattern_diversity_than_metal() {
        // The quantitative version of the paper's Section 4 remark.
        let vias = generate_via_clip(&ViaConfig::with_size(256), 5);
        let metal = generate_clip(&GeneratorConfig::with_size(256), 5);
        let dv = pattern_diversity(&vias);
        let dm = pattern_diversity(&metal);
        assert!(
            dv.template_coverage() > dm.template_coverage(),
            "via coverage {:.2} vs metal {:.2}",
            dv.template_coverage(),
            dm.template_coverage()
        );
        assert!(dv.template_coverage() > 0.5, "{:?}", dv);
    }

    #[test]
    #[should_panic(expected = "pitch")]
    fn bad_config_rejected() {
        let c = ViaConfig {
            pitch: 8,
            via: 16,
            ..ViaConfig::v1_default()
        };
        c.validate();
    }

    #[test]
    fn diversity_handles_empty_layout() {
        let empty: BitGrid = Grid::new(32, 32, 0);
        let d = pattern_diversity(&empty);
        assert_eq!(d.features, 0);
        assert_eq!(d.template_coverage(), 0.0);
    }
}

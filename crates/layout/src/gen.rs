//! Seeded synthetic M1-layer generator.
//!
//! The paper evaluates on 20 industrial metal-1 clips we do not have; this
//! generator produces deterministic, design-rule-clean rectilinear wiring
//! with the geometric population that drives stitch mismatch: long wires
//! crossing tile boundaries, jogs, line-ends near boundaries, and short
//! isolated stubs that attract SRAFs.
//!
//! Geometry is laid out on a *track lattice* with cell size
//! `pitch = wire_width + wire_space`, which makes the minimum-space rule hold
//! by construction: distinct shapes are always at least `wire_space` apart in
//! at least one axis.

use ilt_grid::{BitGrid, Grid, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic M1 generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Clip edge length in pixels (clips are square).
    pub size: usize,
    /// Drawn wire width in pixels.
    pub wire_width: usize,
    /// Minimum space between wires in pixels.
    pub wire_space: usize,
    /// Empty border kept around the clip (reduces FFT wrap-around effects).
    pub border: usize,
    /// Probability that a lattice cell on a track is part of a wire.
    pub track_fill: f64,
    /// Probability of dropping a vertical jog at an eligible column.
    pub jog_prob: f64,
}

impl GeneratorConfig {
    /// Configuration used by the default benchmark suite (512-pixel clips).
    pub fn m1_default() -> Self {
        GeneratorConfig {
            size: 512,
            wire_width: 8,
            wire_space: 14,
            border: 12,
            track_fill: 0.58,
            jog_prob: 0.22,
        }
    }

    /// Same geometry statistics at an arbitrary clip size.
    pub fn with_size(size: usize) -> Self {
        GeneratorConfig {
            size,
            ..GeneratorConfig::m1_default()
        }
    }

    /// Lattice pitch (`wire_width + wire_space`).
    pub fn pitch(&self) -> usize {
        self.wire_width + self.wire_space
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the clip is too small to hold at least two tracks or any
    /// parameter is degenerate.
    pub fn validate(&self) {
        assert!(self.wire_width >= 2, "wire width must be at least 2 px");
        assert!(self.wire_space >= 2, "wire space must be at least 2 px");
        assert!(
            (0.0..=1.0).contains(&self.track_fill) && (0.0..=1.0).contains(&self.jog_prob),
            "probabilities must lie in [0, 1]"
        );
        assert!(
            self.size > 2 * self.border + 2 * self.pitch(),
            "clip of size {} cannot hold two tracks (border {}, pitch {})",
            self.size,
            self.border,
            self.pitch()
        );
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::m1_default()
    }
}

/// Generates one synthetic M1 clip. The same `(config, seed)` pair always
/// produces the same layout.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`GeneratorConfig::validate`]).
///
/// # Examples
///
/// ```
/// use ilt_layout::{generate_clip, GeneratorConfig};
///
/// let cfg = GeneratorConfig::with_size(256);
/// let a = generate_clip(&cfg, 7);
/// let b = generate_clip(&cfg, 7);
/// assert_eq!(a, b); // deterministic
/// assert!(a.count_ones() > 0);
/// ```
pub fn generate_clip(config: &GeneratorConfig, seed: u64) -> BitGrid {
    config.validate();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA24B_1DE5).wrapping_add(17));
    let pitch = config.pitch();
    let usable = config.size - 2 * config.border;
    let tracks = usable / pitch;
    let columns = usable / pitch;
    let x0 = config.border as i64;
    let y0 = config.border as i64;
    let w = config.wire_width as i64;
    let pitch_i = pitch as i64;

    let mut layout: BitGrid = Grid::new(config.size, config.size, 0);
    // Occupancy of lattice cells per track so jogs only connect real metal.
    let mut occupied = vec![vec![false; columns]; tracks];

    // Horizontal wire segments per track. Each track alternates between
    // "drawing" runs and gaps of at least one cell.
    for (t, row) in occupied.iter_mut().enumerate() {
        let mut c = 0usize;
        while c < columns {
            if rng.gen_bool(config.track_fill) {
                // Segment length: biased toward long wires with a tail of
                // short stubs (the SRAF-attracting population).
                let max_len = columns - c;
                let len = if rng.gen_bool(0.25) {
                    rng.gen_range(1..=2.min(max_len))
                } else {
                    rng.gen_range(2.min(max_len)..=max_len.min(10).max(2.min(max_len)))
                };
                let rect = Rect::new(
                    x0 + c as i64 * pitch_i,
                    y0 + t as i64 * pitch_i,
                    x0 + (c + len) as i64 * pitch_i - config.wire_space as i64,
                    y0 + t as i64 * pitch_i + w,
                );
                layout.fill_rect(rect, 1);
                for cell in row.iter_mut().skip(c).take(len) {
                    *cell = true;
                }
                // At least one empty cell after a segment keeps line-end
                // spacing comfortably above the rule.
                c += len + 1;
            } else {
                c += 1;
            }
        }
    }

    // Vertical jogs connecting vertically adjacent occupied cells.
    for t in 0..tracks.saturating_sub(1) {
        #[allow(clippy::needless_range_loop)]
        for c in 0..columns {
            if occupied[t][c] && occupied[t + 1][c] && rng.gen_bool(config.jog_prob) {
                let rect = Rect::new(
                    x0 + c as i64 * pitch_i,
                    y0 + t as i64 * pitch_i,
                    x0 + c as i64 * pitch_i + w,
                    y0 + (t + 1) as i64 * pitch_i + w,
                );
                layout.fill_rect(rect, 1);
            }
        }
    }

    // Half of the clips route vertically: transpose for orientation variety.
    if seed % 2 == 1 {
        layout = transpose(&layout);
    }
    layout
}

/// Transposes a binary grid (swaps x and y).
fn transpose(img: &BitGrid) -> BitGrid {
    Grid::from_fn(img.height(), img.width(), |x, y| img.get(y, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc::{check, DesignRules};

    fn small_config() -> GeneratorConfig {
        GeneratorConfig::with_size(192)
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = small_config();
        assert_eq!(generate_clip(&cfg, 3), generate_clip(&cfg, 3));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small_config();
        assert_ne!(generate_clip(&cfg, 1), generate_clip(&cfg, 2));
    }

    #[test]
    fn produces_reasonable_density() {
        let cfg = small_config();
        for seed in 0..6 {
            let clip = generate_clip(&cfg, seed);
            let density = clip.count_ones() as f64 / clip.len() as f64;
            assert!(
                (0.03..0.55).contains(&density),
                "seed {seed}: density {density}"
            );
        }
    }

    #[test]
    fn respects_border() {
        let cfg = small_config();
        let clip = generate_clip(&cfg, 4); // even seed: no transpose
        for i in 0..cfg.size {
            for b in 0..cfg.border {
                assert_eq!(clip.get(i, b), 0);
                assert_eq!(clip.get(b, i), 0);
                assert_eq!(clip.get(i, cfg.size - 1 - b), 0);
                assert_eq!(clip.get(cfg.size - 1 - b, i), 0);
            }
        }
    }

    #[test]
    fn generated_clips_are_drc_clean() {
        let cfg = small_config();
        let rules = DesignRules {
            min_width: cfg.wire_width,
            min_space: cfg.wire_space,
            // Shortest stub: 1 cell = pitch - space = width px long.
            min_area: cfg.wire_width * cfg.wire_width,
        };
        for seed in 0..8 {
            let clip = generate_clip(&cfg, seed);
            let report = check(&clip, &rules);
            assert!(report.is_clean(), "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn odd_seeds_are_vertical() {
        // Vertical clips have more column-aligned metal than row-aligned.
        let cfg = small_config();
        let clip = generate_clip(&cfg, 5);
        let mut row_runs = 0usize;
        let mut col_runs = 0usize;
        for i in 1..cfg.size {
            for j in 0..cfg.size {
                if clip.get(i, j) != 0 && clip.get(i - 1, j) != 0 {
                    row_runs += 1;
                }
                if clip.get(j, i) != 0 && clip.get(j, i - 1) != 0 {
                    col_runs += 1;
                }
            }
        }
        assert!(col_runs > row_runs, "vertical clip should be column-heavy");
    }

    #[test]
    #[should_panic(expected = "cannot hold two tracks")]
    fn tiny_clip_rejected() {
        let cfg = GeneratorConfig {
            size: 32,
            ..GeneratorConfig::m1_default()
        };
        let _ = generate_clip(&cfg, 0);
    }

    #[test]
    fn pitch_is_width_plus_space() {
        let cfg = GeneratorConfig::m1_default();
        assert_eq!(cfg.pitch(), cfg.wire_width + cfg.wire_space);
    }

    #[test]
    fn transpose_involution() {
        let cfg = small_config();
        let clip = generate_clip(&cfg, 2);
        assert_eq!(transpose(&transpose(&clip)), clip);
    }
}

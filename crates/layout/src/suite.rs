//! The 20-clip benchmark suite mirroring the paper's Table 1 workload.

use ilt_grid::{BitGrid, RealGrid};

use crate::gen::{generate_clip, GeneratorConfig};

/// One benchmark clip: a target layout plus the identifiers Table 1 reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// 1-based case number (`case1` .. `case20` in the paper).
    pub id: usize,
    /// Case name, e.g. `"case7"`.
    pub name: String,
    /// Binary target layout `Z_t`.
    pub target: BitGrid,
    /// Drawn metal area in pixels (the paper's `Area (nm^2)` column; one
    /// pixel corresponds to one square design unit).
    pub area: usize,
}

impl Clip {
    /// The target as a continuous 0/1 grid, the form the solvers consume.
    pub fn target_real(&self) -> RealGrid {
        self.target.to_real()
    }

    /// Clip edge length in pixels.
    pub fn size(&self) -> usize {
        self.target.width()
    }
}

/// Generates the deterministic 20-clip suite for a given generator
/// configuration. Clip `k` uses seed `k`, so the suite is stable across
/// runs and machines.
pub fn benchmark_suite(config: &GeneratorConfig) -> Vec<Clip> {
    suite_of_size(config, 20)
}

/// Generates the first `count` clips of the suite (smaller counts keep
/// test and CI runtimes down; the full harness uses all 20).
pub fn suite_of_size(config: &GeneratorConfig, count: usize) -> Vec<Clip> {
    (1..=count)
        .map(|id| {
            let target = generate_clip(config, id as u64);
            let area = target.count_ones();
            Clip {
                id,
                name: format!("case{id}"),
                target,
                area,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GeneratorConfig {
        GeneratorConfig::with_size(192)
    }

    #[test]
    fn suite_has_twenty_named_cases() {
        let suite = benchmark_suite(&cfg());
        assert_eq!(suite.len(), 20);
        assert_eq!(suite[0].name, "case1");
        assert_eq!(suite[19].name, "case20");
        for (i, clip) in suite.iter().enumerate() {
            assert_eq!(clip.id, i + 1);
            assert_eq!(clip.area, clip.target.count_ones());
            assert_eq!(clip.size(), 192);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite_of_size(&cfg(), 3);
        let b = suite_of_size(&cfg(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn clips_are_distinct() {
        let suite = suite_of_size(&cfg(), 5);
        for i in 0..suite.len() {
            for j in i + 1..suite.len() {
                assert_ne!(suite[i].target, suite[j].target, "clips {i} and {j}");
            }
        }
    }

    #[test]
    fn target_real_matches_bits() {
        let suite = suite_of_size(&cfg(), 1);
        let real = suite[0].target_real();
        assert_eq!(real.sum() as usize, suite[0].area);
    }
}

//! Error type for the full-chip ILT flows.

use std::error::Error;
use std::fmt;

use ilt_litho::LithoError;
use ilt_opt::OptError;
use ilt_tile::TileError;

/// Errors surfaced by the flows in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A single-tile solve failed.
    Solver(OptError),
    /// Partitioning or assembly failed.
    Tile(TileError),
    /// A lithography evaluation failed.
    Litho(LithoError),
}

impl CoreError {
    /// True when the error is a solver [`OptError::DeadlineExceeded`].
    /// Degradation logic treats this as fatal: the job's budget is spent,
    /// so falling back to a coarse mask and continuing would only burn
    /// more of it.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(self, CoreError::Solver(OptError::DeadlineExceeded { .. }))
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Solver(e) => write!(f, "solver failure: {e}"),
            CoreError::Tile(e) => write!(f, "tiling failure: {e}"),
            CoreError::Litho(e) => write!(f, "lithography failure: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Solver(e) => Some(e),
            CoreError::Tile(e) => Some(e),
            CoreError::Litho(e) => Some(e),
        }
    }
}

impl From<OptError> for CoreError {
    fn from(e: OptError) -> Self {
        CoreError::Solver(e)
    }
}

impl From<TileError> for CoreError {
    fn from(e: TileError) -> Self {
        CoreError::Tile(e)
    }
}

impl From<LithoError> for CoreError {
    fn from(e: LithoError) -> Self {
        CoreError::Litho(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = TileError::AssemblyMismatch {
            expected: 9,
            actual: 1,
        }
        .into();
        assert!(e.to_string().contains("tiling"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = OptError::BadConfig { reason: "x".into() }.into();
        assert!(e.to_string().contains("solver"));
        let e: CoreError = LithoError::GridMismatch {
            grid: 1,
            support: 2,
        }
        .into();
        assert!(e.to_string().contains("lithography"));
    }

    #[test]
    fn is_send_sync() {
        fn check<E: std::error::Error + Send + Sync>() {}
        check::<CoreError>();
    }
}

//! Incremental re-ILT: dirty-tile propagation and warm-started re-solve
//! (the ECO workflow).
//!
//! The Schwarz decomposition is local by construction: a layout edit can
//! only change the optimal mask inside the tiles it intersects and — through
//! the overlap boundary exchange of Eq. (11) — their overlap neighbours.
//! [`diff_layouts`] computes exactly that frontier: the *edited* set (tiles
//! whose rect contains a changed target pixel) and the *dirty* set (edited ∪
//! their [`Partition::neighbors`]). Everything else is *clean* and its final
//! mask from the base solve is still optimal, so [`run_incremental_in`]
//! reuses it verbatim from the mask store and re-solves only the dirty set,
//! warm-started from the base masks:
//!
//! 1. **Reuse**: every tile's slice of the *edited* target is hashed
//!    ([`ilt_store::tile_content_hash`]) and looked up. Clean tiles hit (the
//!    content is unchanged, so the key is the base key) and their stored
//!    masks are reassembled by the same weighted seam assembly the cold flow
//!    uses — overlapping crops of one layout agree exactly, so clean regions
//!    reproduce the base mask bit-for-bit.
//! 2. **Warm fine stages**: dirty tiles (plus any clean tile that missed,
//!    e.g. after eviction with no spill directory) re-solve, re-cropping
//!    from the assembled layout between stages exactly like the cold flow.
//!    Overlap-only neighbours — same target, just moved boundary conditions
//!    — run the warm schedule, half the cold fine budget
//!    ([`Schedule::warm_fine_iterations`]), warm-started from the base
//!    final mask. Tiles whose *target* changed (and any tile whose lookup
//!    missed, whose init is a cold target crop) keep the full cold budget:
//!    the base mask optimises a different geometry there, so halving their
//!    iterations trades real quality for little time.
//! 3. **Warm refine**: the multi-colour multiplicative polish runs over the
//!    re-solved tiles only; clean tiles are never touched (no global
//!    threshold — the reused masks are already post-refine).
//!
//! Finally the re-solved tiles' crops are stored under their new
//! content keys, so a follow-up edit warm-starts from *this* result.
//!
//! [`Schedule::warm_fine_iterations`]: crate::Schedule::warm_fine_iterations

use std::collections::BTreeSet;

use ilt_grid::{BitGrid, RealGrid};
use ilt_litho::LithoBank;
use ilt_opt::{SolveContext, SolveRequest, TileSolver};
use ilt_store::{tile_content_hash, MaskStore, StoreKey};
use ilt_telemetry as tele;
use ilt_tile::{
    assemble, multi_coloring, restrict, AssemblyMode, Partition, RetryPolicy, StreamingAssembler,
    Tile, TileExecutor,
};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::flows::{
    apply_weighted_update, multigrid_schwarz, recover_stage, trace, DegradedTile, FlowResult,
};

/// Store method tag for masks produced by the multigrid-Schwarz flow with
/// the pixel solver — the only flow the incremental path re-solves with.
pub const METHOD_OURS_PIXEL: &str = "ours:pixel";

/// The dirty-tile frontier of one layout edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutDiff {
    /// Number of target pixels that differ between base and edited layout.
    pub changed_pixels: usize,
    /// Tiles whose rect contains at least one changed pixel, ascending.
    pub edited: Vec<usize>,
    /// Edited tiles plus their Schwarz-overlap neighbours (Eq. (11) `N_j`),
    /// ascending — the set whose masks the edit can invalidate.
    pub dirty: Vec<usize>,
}

/// Diffs two same-sized target layouts against a partition.
///
/// # Panics
///
/// Panics if the layouts' dimensions differ or do not cover the partition.
pub fn diff_layouts(partition: &Partition, base: &BitGrid, edited: &BitGrid) -> LayoutDiff {
    assert_eq!(
        (base.width(), base.height()),
        (edited.width(), edited.height()),
        "base and edited layouts must have identical dimensions"
    );
    let mut changed_pixels = 0usize;
    for (a, b) in base.as_slice().iter().zip(edited.as_slice()) {
        if a != b {
            changed_pixels += 1;
        }
    }
    let mut edited_tiles = Vec::new();
    if changed_pixels > 0 {
        'tiles: for (i, tile) in partition.tiles().iter().enumerate() {
            for y in tile.rect.y0..tile.rect.y1 {
                for x in tile.rect.x0..tile.rect.x1 {
                    let (x, y) = (x as usize, y as usize);
                    if base.get(x, y) != edited.get(x, y) {
                        edited_tiles.push(i);
                        continue 'tiles;
                    }
                }
            }
        }
    }
    let mut dirty: BTreeSet<usize> = edited_tiles.iter().copied().collect();
    for &i in &edited_tiles {
        dirty.extend(partition.neighbors(i));
    }
    LayoutDiff {
        changed_pixels,
        edited: edited_tiles,
        dirty: dirty.into_iter().collect(),
    }
}

/// Result of an incremental re-solve: the flow output plus the reuse
/// accounting the report and serve layers surface.
#[derive(Debug, Clone)]
pub struct IncrementalOutcome {
    /// The warm flow: final mask, stage timings, wall clock, degradations.
    pub flow: FlowResult,
    /// The dirty frontier that drove the re-solve.
    pub diff: LayoutDiff,
    /// Tiles whose stored mask was reused verbatim.
    pub tiles_reused: usize,
    /// Tiles re-solved (the dirty set plus any clean store miss).
    pub tiles_resolved: usize,
    /// Store lookups that hit during this run (reuse + warm-start).
    pub store_hits: usize,
    /// Store lookups that missed during this run.
    pub store_misses: usize,
}

impl IncrementalOutcome {
    /// Fraction of the layout served from the store:
    /// `tiles_reused / total tiles`. This is the locality headline — for an
    /// edit confined to tile `j` of a `T`-tile M×N partition it is
    /// `(T - 1 - |neighbors(j)|) / T` (the edited tile and its overlap
    /// neighbours re-solve, everything else is reused). A corner edit on a
    /// uniform 3×3 grid has 3 neighbours, hence the 5/9 of the ECO smoke
    /// drill; larger grids reuse proportionally more.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.tiles_reused + self.tiles_resolved;
        if total == 0 {
            0.0
        } else {
            self.tiles_reused as f64 / total as f64
        }
    }
}

/// Per-tile store key over `target`'s content.
fn tile_key(target: &BitGrid, partition: &Partition, index: usize, config_fp: u64) -> StoreKey {
    StoreKey::new(
        tile_content_hash(target, partition.tile(index).rect),
        config_fp,
        METHOD_OURS_PIXEL,
    )
}

/// Patches an edited tile's warm-start mask: pixels whose target changed
/// are snapped to their *new* target value. The base mask is near-optimal
/// everywhere the targets agree, so after the patch the warm solver only
/// has to smooth the seam of the edit instead of discovering it by
/// gradient descent from a stale geometry.
fn patch_changed_pixels(mask: &mut RealGrid, tile: &Tile, base: &BitGrid, edited: &BitGrid) {
    let rect = tile.rect;
    for y in rect.y0..rect.y1 {
        for x in rect.x0..rect.x1 {
            let (xu, yu) = (x as usize, y as usize);
            let new = edited.get(xu, yu);
            if base.get(xu, yu) != new {
                mask.set(
                    (x - rect.x0) as usize,
                    (y - rect.y0) as usize,
                    f64::from(new),
                );
            }
        }
    }
}

/// Stores every tile's crop of a solved full-clip mask under the target's
/// content keys. Returns the number of tiles stored.
///
/// # Errors
///
/// Returns [`CoreError`] on partitioning failure.
pub fn store_tiles(
    store: &MaskStore,
    config: &ExperimentConfig,
    target: &BitGrid,
    mask: &RealGrid,
) -> Result<usize, CoreError> {
    let partition = Partition::new(target.width(), target.height(), config.partition)?;
    let config_fp = config.fingerprint();
    for i in 0..partition.tiles().len() {
        let key = tile_key(target, &partition, i, config_fp);
        store.put_crop(key, mask, partition.tile(i).rect);
    }
    Ok(partition.tiles().len())
}

/// Runs the cold multigrid-Schwarz flow and populates the store with the
/// final mask's tile crops, making the result warm-startable.
///
/// # Errors
///
/// Propagates flow failures.
pub fn run_and_store(
    config: &ExperimentConfig,
    bank: &LithoBank,
    store: &MaskStore,
    target: &BitGrid,
    solver: &dyn TileSolver,
    executor: &TileExecutor,
) -> Result<FlowResult, CoreError> {
    let flow = multigrid_schwarz(config, bank, target, solver, executor)?;
    store_tiles(store, config, target, &flow.mask)?;
    Ok(flow)
}

/// Incremental re-solve of `edited` given that `base` was previously solved
/// (and stored) under the same config. See the module docs for the
/// three-phase structure.
///
/// # Errors
///
/// Returns [`CoreError`] on partitioning, solver, or assembly failure.
///
/// # Panics
///
/// Panics if `config` is inconsistent or the layouts' dimensions differ.
pub fn run_incremental_in(
    config: &ExperimentConfig,
    bank: &LithoBank,
    store: &MaskStore,
    base: &BitGrid,
    edited: &BitGrid,
    solver: &dyn TileSolver,
    executor: &TileExecutor,
) -> Result<IncrementalOutcome, CoreError> {
    config.validate();
    let name = format!("ours-eco:{}", solver.name());
    let fspan = trace::flow_span(&name);
    let n = config.partition.tile;
    let partition = Partition::new(edited.width(), edited.height(), config.partition)?;
    let config_fp = config.fingerprint();
    let target_real = edited.to_real();
    let tile_count = partition.tiles().len();
    let policy = RetryPolicy::from_env();
    let mut stages = Vec::new();
    let mut degraded: Vec<DegradedTile> = Vec::new();
    let mut store_hits = 0usize;
    let mut store_misses = 0usize;

    let diff = diff_layouts(&partition, base, edited);
    let dirty: BTreeSet<usize> = diff.dirty.iter().copied().collect();

    // Phase 1: reuse. Look up every tile under its *edited* content key;
    // clean hits are reused verbatim, everything else joins the re-solve
    // set. Dirty tiles warm-start from the *base* content key (the mask the
    // base solve stored for the geometry they used to contain); a miss
    // falls back to the edited target crop.
    let mut resolve: Vec<usize> = Vec::new();
    // Tiles that need the *full* fine budget: their target changed (the
    // base mask optimises a different geometry there) or their lookup
    // missed (the init is a cold target crop, not a converged mask).
    // Overlap-only neighbours keep the halved warm budget — their targets
    // are identical, only the boundary conditions moved.
    let edited_tiles: BTreeSet<usize> = diff.edited.iter().copied().collect();
    let mut cold_budget: BTreeSet<usize> = edited_tiles.clone();
    let blend = if config.blend_band == 0 {
        AssemblyMode::weighted_default(&partition)
    } else {
        AssemblyMode::Weighted {
            band: config.blend_band,
        }
    };
    let reuse_stage = trace::stage("eco reuse".to_string());
    // The `lookup` closure borrows the reuse counters and the re-solve set
    // mutably; scoping it to this block releases the borrows once every
    // tile has been looked up.
    let (mut mask, timing) = {
        let mut lookup = |i: usize| {
            if dirty.contains(&i) {
                resolve.push(i);
                let warm_key = tile_key(base, &partition, i, config_fp);
                match store.get(&warm_key) {
                    Some(mut mask) => {
                        store_hits += 1;
                        if edited_tiles.contains(&i) {
                            patch_changed_pixels(&mut mask, partition.tile(i), base, edited);
                        }
                        Ok::<_, CoreError>(mask)
                    }
                    None => {
                        store_misses += 1;
                        cold_budget.insert(i);
                        Ok(restrict(&target_real, partition.tile(i)))
                    }
                }
            } else {
                match store.get(&tile_key(edited, &partition, i, config_fp)) {
                    Some(mask) => {
                        store_hits += 1;
                        Ok(mask)
                    }
                    None => {
                        store_misses += 1;
                        resolve.push(i);
                        cold_budget.insert(i);
                        Ok(restrict(&target_real, partition.tile(i)))
                    }
                }
            }
        };
        if config.stream_tiles {
            // Stream the lookups straight into the assembler one colour band at
            // a time: a reused crop is resident only while its band folds, so
            // the reuse phase holds O(one band) masks instead of all T.
            let mut assembler = StreamingAssembler::new(&partition, blend);
            let mut tile_seconds = vec![0.0; tile_count];
            let mut assembly_seconds = 0.0;
            for group in multi_coloring(&partition).groups() {
                if group.is_empty() {
                    continue;
                }
                let mut band: Vec<RealGrid> = Vec::with_capacity(group.len());
                for &i in &group {
                    let (crop, seconds) = trace::timed_tile(i, || lookup(i))?;
                    tile_seconds[i] = seconds;
                    band.push(crop);
                }
                let ((), fold_seconds) = trace::assembly_fold(|| {
                    for (crop, &i) in band.iter().zip(&group) {
                        assembler.push(i, crop)?;
                    }
                    Ok::<_, CoreError>(())
                })?;
                assembly_seconds += fold_seconds;
            }
            let (out, finish_seconds) =
                trace::assembly_fold(|| assembler.finish().map_err(CoreError::from))?;
            assembly_seconds += finish_seconds;
            (
                out,
                reuse_stage.finish_streamed(tile_seconds, assembly_seconds),
            )
        } else {
            let mut looked_up: Vec<(RealGrid, f64)> = Vec::with_capacity(tile_count);
            for i in 0..tile_count {
                looked_up.push(trace::timed_tile(i, || lookup(i))?);
            }
            reuse_stage.finish(looked_up, |masks| {
                assemble(&partition, &masks, blend).map_err(CoreError::from)
            })?
        }
    };
    resolve.sort_unstable();
    let tiles_resolved = resolve.len();
    let tiles_reused = tile_count - tiles_resolved;
    stages.push(timing);

    tele::counter_add("incremental.tiles_reused", tiles_reused as u64);
    tele::counter_add("incremental.tiles_resolved", tiles_resolved as u64);

    // Phase 2: warm fine stages over the re-solve set, with the same
    // assemble-and-re-crop boundary exchange as the cold flow (clean tiles
    // contribute their current crops, so assembly is the identity there).
    for fine_stage in 0..config.schedule.fine_stages {
        let label = format!("eco fine stage {}", fine_stage + 1);
        let stage = trace::stage(label.clone());
        let results = executor.run_recoverable(resolve.len(), policy, |k| {
            let tile = partition.tile(resolve[k]);
            let iterations = if cold_budget.contains(&resolve[k]) {
                config.schedule.fine_per_stage(fine_stage)
            } else {
                config.schedule.warm_per_stage(fine_stage)
            };
            let tile_target = restrict(&target_real, tile);
            let tile_init = restrict(&mask, tile);
            let ctx = SolveContext { bank, n, scale: 1 };
            let request = SolveRequest {
                target: &tile_target,
                initial: &tile_init,
                iterations,
                lr_scale: config.schedule.fine_lr_scale,
                gentle: false,
                warm: true,
            };
            let (outcome, elapsed) = trace::timed_tile(resolve[k], || {
                Ok::<_, CoreError>(solver.solve(&ctx, &request)?)
            })?;
            ilt_diag::observe_solve(&name, &label, resolve[k], &outcome.loss_history);
            Ok::<_, CoreError>((outcome.mask, elapsed))
        });
        let solved = recover_stage(
            &name,
            &label,
            results,
            |k| resolve[k],
            |k| restrict(&mask, partition.tile(resolve[k])),
            &mut degraded,
        )?;
        let (assembled, timing) = if config.stream_tiles {
            // Hold only the re-solved masks; every clean tile's crop is
            // materialised lazily, pushed, and dropped — peak residency is
            // O(dirty) plus one tile, not O(T).
            let (new_masks, times): (Vec<RealGrid>, Vec<f64>) = solved.into_iter().unzip();
            let held: std::collections::BTreeMap<usize, RealGrid> =
                resolve.iter().copied().zip(new_masks).collect();
            let mut assembler = StreamingAssembler::new(&partition, blend);
            let order = assembler.canonical_order().to_vec();
            let (out, assembly_seconds) = trace::assembly_fold(|| {
                for &i in &order {
                    match held.get(&i) {
                        Some(new_mask) => assembler.push(i, new_mask)?,
                        None => {
                            let crop = restrict(&mask, partition.tile(i));
                            assembler.push(i, &crop)?;
                        }
                    }
                }
                assembler.finish().map_err(CoreError::from)
            })?;
            (out, stage.finish_streamed(times, assembly_seconds))
        } else {
            stage.finish(solved, |new_masks| {
                let mut all: Vec<RealGrid> = (0..tile_count)
                    .map(|i| restrict(&mask, partition.tile(i)))
                    .collect();
                for (k, new_mask) in new_masks.into_iter().enumerate() {
                    all[resolve[k]] = new_mask;
                }
                assemble(&partition, &all, blend).map_err(CoreError::from)
            })?
        };
        mask = assembled;
        stages.push(timing);
    }

    // Phase 3: warm multi-colour refine over the re-solve set only. No
    // global threshold first: the reused masks are post-refine already, and
    // re-thresholding would perturb clean tiles the edit never touched.
    let coloring = multi_coloring(&partition);
    for (color, group) in coloring.groups().into_iter().enumerate() {
        let group: Vec<usize> = group.into_iter().filter(|i| resolve.contains(i)).collect();
        if group.is_empty() {
            continue;
        }
        let label = format!("eco refine color {}", color + 1);
        let stage = trace::stage(label.clone());
        let results = executor.run_recoverable(group.len(), policy, |k| {
            let tile = partition.tile(group[k]);
            let tile_target = restrict(&target_real, tile);
            let tile_init = restrict(&mask, tile);
            let ctx = SolveContext { bank, n, scale: 1 };
            let request = SolveRequest {
                target: &tile_target,
                initial: &tile_init,
                iterations: config.schedule.refine_iterations,
                lr_scale: config.schedule.refine_lr_scale,
                gentle: true,
                warm: true,
            };
            let (outcome, elapsed) = trace::timed_tile(group[k], || {
                Ok::<_, CoreError>(solver.solve(&ctx, &request)?)
            })?;
            ilt_diag::observe_solve(&name, &label, group[k], &outcome.loss_history);
            Ok::<_, CoreError>((outcome.mask, elapsed))
        });
        let solved = recover_stage(
            &name,
            &label,
            results,
            |k| group[k],
            |k| restrict(&mask, partition.tile(group[k])),
            &mut degraded,
        )?;
        let replace = AssemblyMode::ExtendedCore {
            margin: match blend {
                AssemblyMode::Weighted { band } => band,
                _ => config.partition.overlap / 4,
            },
        };
        let ((), timing) = stage.finish(solved, |masks| {
            for (k, new_mask) in masks.iter().enumerate() {
                apply_weighted_update(&mut mask, &partition, group[k], new_mask, replace);
            }
            Ok::<_, CoreError>(())
        })?;
        stages.push(timing);
    }

    // Store the re-solved tiles under their edited content keys, so the
    // next edit on top of this layout warm-starts from here.
    for &i in &resolve {
        let key = tile_key(edited, &partition, i, config_fp);
        store.put_crop(key, &mask, partition.tile(i).rect);
    }

    let wall_seconds = fspan.end();
    Ok(IncrementalOutcome {
        flow: FlowResult {
            name,
            mask,
            stages,
            wall_seconds,
            degraded,
        },
        diff,
        tiles_reused,
        tiles_resolved,
        store_hits,
        store_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Rect;
    use ilt_tile::PartitionConfig;

    fn partition_3x3() -> Partition {
        Partition::new(
            128,
            128,
            PartitionConfig {
                tile: 64,
                overlap: 32,
            },
        )
        .unwrap()
    }

    #[test]
    fn identical_layouts_have_empty_diff() {
        let partition = partition_3x3();
        let layout = BitGrid::from_fn(128, 128, |x, y| u8::from((x + y) % 3 == 0));
        let diff = diff_layouts(&partition, &layout, &layout);
        assert_eq!(diff.changed_pixels, 0);
        assert!(diff.edited.is_empty());
        assert!(diff.dirty.is_empty());
    }

    #[test]
    fn corner_edit_marks_tile_and_overlap_neighbors_dirty() {
        // Pixel (5,5) lies only in tile 0 (tiles are 64 wide at stride 32).
        let partition = partition_3x3();
        let base = BitGrid::new(128, 128, 0);
        let mut edited = base.clone();
        edited.set(5, 5, 1);
        let diff = diff_layouts(&partition, &base, &edited);
        assert_eq!(diff.changed_pixels, 1);
        assert_eq!(diff.edited, vec![0]);
        // Dirty = edited ∪ overlap neighbours of tile 0 = {0, 1, 3, 4}.
        let mut expected = vec![0usize];
        expected.extend(partition.neighbors(0));
        expected.sort_unstable();
        assert_eq!(diff.dirty, expected);
        assert_eq!(diff.dirty, vec![0, 1, 3, 4]);
    }

    #[test]
    fn center_edit_dirties_every_tile() {
        // The centre pixel lies in the overlap of several tiles; its tile's
        // neighbour set covers the whole 3×3 grid.
        let partition = partition_3x3();
        let base = BitGrid::new(128, 128, 0);
        let mut edited = base.clone();
        edited.fill_rect(Rect::new(60, 60, 68, 68), 1);
        let diff = diff_layouts(&partition, &base, &edited);
        assert_eq!(diff.dirty, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn edit_in_exclusive_core_of_edge_tile() {
        // Pixel (64, 5): x=64 lies in tiles at columns 1 and 2... columns
        // with x0 <= 64 < x0+64 → x0 ∈ {32, 64} (cols 1, 2); y=5 → row 0.
        let partition = partition_3x3();
        let base = BitGrid::new(128, 128, 0);
        let mut edited = base.clone();
        edited.set(64, 5, 1);
        let diff = diff_layouts(&partition, &base, &edited);
        assert_eq!(diff.edited, vec![1, 2]);
        // Neighbours of 1 and 2 span all of rows 0-1.
        assert_eq!(diff.dirty, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn clamped_grid_frontier_uses_generalized_neighbors() {
        // 184×120 at tile 64 / stride 32 clamps both axes (x origins end at
        // 120, y origins at 56), yielding a non-square 5×3 grid whose last
        // row/column overlap their predecessors by more than the nominal
        // stride. A corner edit must dirty exactly the edited tile plus its
        // generalized M×N overlap neighbours, not a hardcoded 3×3 pattern.
        let partition = Partition::new(
            184,
            120,
            PartitionConfig {
                tile: 64,
                overlap: 32,
            },
        )
        .unwrap();
        let base = BitGrid::new(184, 120, 0);
        let mut edited = base.clone();
        edited.set(2, 2, 1);
        let diff = diff_layouts(&partition, &base, &edited);
        assert_eq!(diff.edited, vec![0]);
        let mut expected = vec![0usize];
        expected.extend(partition.neighbors(0));
        expected.sort_unstable();
        assert_eq!(diff.dirty, expected);
        // Clamped columns overlap more than the nominal stride, but the
        // frontier is still "tiles whose rects overlap tile 0".
        for &i in &diff.dirty {
            assert!(
                i == 0 || partition.tile(i).rect.overlaps(partition.tile(0).rect),
                "tile {i} in the frontier without overlapping the edit"
            );
        }
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn dimension_mismatch_rejected() {
        let partition = partition_3x3();
        let base = BitGrid::new(128, 128, 0);
        let edited = BitGrid::new(64, 64, 0);
        diff_layouts(&partition, &base, &edited);
    }
}

//! The Table 1 experiment engine: run every flow on a clip, inspect the
//! results over the whole region (Eq. (3)), and aggregate across the suite.

use ilt_grid::{BitGrid, RealGrid};
use ilt_layout::Clip;
use ilt_litho::{Corner, LithoBank, LithoSystem};
use ilt_metrics::{
    check_mask, edge_placement_error, mask_quality, stitch_loss, EpeConfig, MrcRules, StitchReport,
};
use ilt_opt::{LevelSetIlt, PixelIlt};
use ilt_tile::{restrict, Partition, StitchLine, TileExecutor};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::flows::{divide_and_conquer, full_chip, multigrid_schwarz, FlowResult};

/// The four metric columns Table 1 reports per method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodMetrics {
    /// L2 loss (Definition 2) in pixels.
    pub l2: usize,
    /// PVBand (Definition 3) in pixels.
    pub pvband: usize,
    /// Stitch loss (Definition 1).
    pub stitch: f64,
    /// Turn-around time in seconds.
    pub tat: f64,
}

/// One method's outcome on one clip.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method identifier (the Table 1 column group).
    pub method: String,
    /// The metric columns.
    pub metrics: MethodMetrics,
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Case number (1-based).
    pub id: usize,
    /// Case name (`case1` ...).
    pub name: String,
    /// Drawn area in pixels.
    pub area: usize,
    /// Per-method results, in column order.
    pub methods: Vec<MethodResult>,
}

impl CaseResult {
    /// The metrics of a method by name.
    pub fn metrics_of(&self, method: &str) -> Option<&MethodMetrics> {
        self.methods
            .iter()
            .find(|m| m.method == method)
            .map(|m| &m.metrics)
    }
}

/// Inspects a flow result: binarises the mask, prints it over the whole
/// clip, and computes every Table 1 metric.
///
/// # Errors
///
/// Propagates lithography failures.
pub fn inspect(
    config: &ExperimentConfig,
    inspection: &LithoSystem,
    lines: &[StitchLine],
    target: &BitGrid,
    flow: &FlowResult,
) -> Result<MethodMetrics, CoreError> {
    let (quality, report) = inspect_detailed(config, inspection, lines, target, &flow.mask)?;
    Ok(MethodMetrics {
        l2: quality.l2,
        pvband: quality.pvband,
        stitch: report.total,
        tat: flow.wall_seconds,
    })
}

/// Like [`inspect`], but returns the full stitch report (used by the
/// Fig. 3/7/8 harnesses) and takes a raw mask.
///
/// # Errors
///
/// Propagates lithography failures.
pub fn inspect_detailed(
    config: &ExperimentConfig,
    inspection: &LithoSystem,
    lines: &[StitchLine],
    target: &BitGrid,
    mask: &RealGrid,
) -> Result<(ilt_metrics::MaskQuality, StitchReport), CoreError> {
    // Manufactured masks are binary; inspect the binarised mask. The
    // whole-clip print and metric pass bills to the inspect stage.
    let _stage = ilt_prof::stage_scope(ilt_prof::Stage::Inspect);
    let binary = mask.threshold(0.5);
    let quality = mask_quality(inspection, &binary.to_real(), target)?;
    let report = stitch_loss(&binary, lines, &config.stitch);
    Ok((quality, report))
}

/// L2 loss (Definition 2) measured tile by tile instead of through one
/// full-clip print: binarises the mask, prints each tile of the clip's
/// partition through a `tile`-sized system (tile sides are always powers
/// of two, so the system always builds), and counts wafer/target
/// mismatches over each tile's **core** pixels. Cores are disjoint and
/// cover the clip, so every pixel is counted exactly once.
///
/// This is the quality measurement for the paper-scale sweep, whose
/// `M x N` clip sides (e.g. `3 x tile/2`) are not powers of two and
/// therefore cannot feed `bank.system(clip, ..)` for [`inspect`]. The
/// absolute value differs slightly from the full-clip print (each tile's
/// print window cuts off optical influence from outside its halo), but it
/// is consistent across clip sizes, which is what the convergence-flatness
/// gate compares.
///
/// # Errors
///
/// Propagates partition and lithography failures.
pub fn tiled_print_loss(
    config: &ExperimentConfig,
    bank: &LithoBank,
    target: &BitGrid,
    mask: &RealGrid,
) -> Result<usize, CoreError> {
    let window = ilt_grid::Rect::new(0, 0, target.width() as i64, target.height() as i64);
    tiled_print_loss_in(config, bank, target, mask, window)
}

/// Like [`tiled_print_loss`], but counts mismatches only inside `window`
/// (chip coordinates). Tiles are still printed with their full halo, so
/// the window restricts *where* loss is counted, not the optical context
/// it is measured with. The convergence-flatness test uses this to
/// compare chip sizes on their interiors: the outermost ring of any chip
/// prints against missing off-chip context, so its loss density depends
/// on the perimeter-to-area ratio rather than on how well the tile
/// hierarchy converged.
///
/// # Errors
///
/// Propagates partition and lithography failures.
pub fn tiled_print_loss_in(
    config: &ExperimentConfig,
    bank: &LithoBank,
    target: &BitGrid,
    mask: &RealGrid,
    window: ilt_grid::Rect,
) -> Result<usize, CoreError> {
    let _stage = ilt_prof::stage_scope(ilt_prof::Stage::Inspect);
    let partition = Partition::new(target.width(), target.height(), config.partition)?;
    let system = bank.system(config.partition.tile, 1)?;
    let binary = mask.threshold(0.5).to_real();
    let mut loss = 0usize;
    for tile in partition.tiles() {
        let Some(count) = tile.core.intersect(window) else {
            continue;
        };
        let printed = system.print(&restrict(&binary, tile), Corner::Nominal)?;
        for y in count.y0..count.y1 {
            for x in count.x0..count.x1 {
                let wafer = printed.get((x - tile.rect.x0) as usize, (y - tile.rect.y0) as usize);
                if wafer != target.get(x as usize, y as usize) {
                    loss += 1;
                }
            }
        }
    }
    Ok(loss)
}

/// The standard four methods of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Divide-and-conquer with the level-set solver.
    GlsDnc,
    /// Divide-and-conquer with the multi-level pixel solver.
    MultiLevelDnc,
    /// Un-partitioned full-chip ILT.
    FullChip,
    /// The multigrid-Schwarz flow.
    Ours,
}

impl Method {
    /// All four, in the paper's column order.
    pub fn all() -> [Method; 4] {
        [
            Method::GlsDnc,
            Method::MultiLevelDnc,
            Method::FullChip,
            Method::Ours,
        ]
    }

    /// Table column label.
    pub fn label(&self) -> &'static str {
        match self {
            Method::GlsDnc => "GLS-ILT",
            Method::MultiLevelDnc => "Multi-level-ILT",
            Method::FullChip => "Full-chip ILT",
            Method::Ours => "Ours",
        }
    }
}

/// Runs one method on one clip.
///
/// # Errors
///
/// Propagates flow failures.
pub fn run_method(
    method: Method,
    config: &ExperimentConfig,
    bank: &LithoBank,
    target: &BitGrid,
    executor: &TileExecutor,
) -> Result<FlowResult, CoreError> {
    let pixel = PixelIlt::new();
    let gls = LevelSetIlt::new();
    match method {
        Method::GlsDnc => divide_and_conquer(config, bank, target, &gls, executor),
        Method::MultiLevelDnc => divide_and_conquer(config, bank, target, &pixel, executor),
        Method::FullChip => full_chip(config, bank, target, &pixel),
        Method::Ours => multigrid_schwarz(config, bank, target, &pixel, executor),
    }
}

/// Runs all four methods on one clip and inspects each, producing one row
/// of Table 1.
///
/// Builds a fresh inspection system for the clip; multi-case runs should
/// build one up front (or use [`crate::Session`]) and call [`run_case_in`]
/// so the kernel resampling and FFT setup happen once, not per case.
///
/// # Errors
///
/// Propagates flow and inspection failures.
pub fn run_case(
    config: &ExperimentConfig,
    bank: &LithoBank,
    clip: &Clip,
    executor: &TileExecutor,
) -> Result<CaseResult, CoreError> {
    let inspection = bank.system(config.clip, config.inspection_scale())?;
    run_case_in(config, bank, &inspection, clip, executor)
}

/// Like [`run_case`], but inspects with a prebuilt full-clip system
/// instead of constructing one internally — the entry point for callers
/// that amortise setup across cases or jobs.
///
/// `inspection` must cover the whole clip at full resolution, i.e. be
/// `bank.system(config.clip, config.inspection_scale())`.
///
/// # Errors
///
/// Propagates flow and inspection failures.
pub fn run_case_in(
    config: &ExperimentConfig,
    bank: &LithoBank,
    inspection: &LithoSystem,
    clip: &Clip,
    executor: &TileExecutor,
) -> Result<CaseResult, CoreError> {
    // Each bench case gets its own trace id (unless the caller already
    // installed one, e.g. a serve job), so the flight recorder can tell
    // concurrent or consecutive cases apart.
    let _trace = match ilt_telemetry::current_trace() {
        Some(_) => None,
        None => Some(ilt_telemetry::new_trace_scope()),
    };
    let partition = Partition::new(clip.size(), clip.size(), config.partition)?;
    let lines = partition.stitch_lines();
    let mut methods = Vec::new();
    for method in Method::all() {
        let flow = run_method(method, config, bank, &clip.target, executor)?;
        let metrics = inspect(config, inspection, &lines, &clip.target, &flow)?;
        if ilt_telemetry::enabled() {
            record_quality_diagnostics(
                config,
                inspection,
                &partition,
                &lines,
                &clip.name,
                method.label(),
                &clip.target,
                &flow.mask,
            )?;
        }
        methods.push(MethodResult {
            method: method.label().to_string(),
            metrics,
        });
    }
    Ok(CaseResult {
        id: clip.id,
        name: clip.name.clone(),
        area: clip.area,
        methods,
    })
}

/// Builds and records the spatial quality diagnostics for one (case,
/// method) result into the `ilt-diag` sink: the per-tile quality matrix
/// plus the EPE-hotspot, seam-mismatch, and MRC-overlay heatmaps. Only
/// called while tracing is enabled — it re-prints the binarised mask, which
/// is too expensive for untraced runs.
#[allow(clippy::too_many_arguments)]
fn record_quality_diagnostics(
    config: &ExperimentConfig,
    inspection: &LithoSystem,
    partition: &Partition,
    lines: &[StitchLine],
    case: &str,
    method: &str,
    target: &BitGrid,
    mask: &RealGrid,
) -> Result<(), CoreError> {
    let binary = mask.threshold(0.5);
    let printed = inspection.print(&binary.to_real(), Corner::Nominal)?;
    let epe_config = EpeConfig::m1_default();
    let epe = edge_placement_error(target, &printed, &epe_config);
    let stitch = stitch_loss(&binary, lines, &config.stitch);
    let mrc = check_mask(&binary, &MrcRules::m1_default());
    let cell = ilt_diag::HEATMAP_CELL;
    ilt_diag::sink::record_case(ilt_diag::CaseQuality {
        case: case.to_string(),
        method: method.to_string(),
        tiles: ilt_diag::tile_quality_matrix(partition, &epe, &epe_config, &stitch, &mrc),
        epe_heatmap: ilt_diag::epe_hotspot_grid(partition, &epe, &epe_config, cell),
        seam_map: ilt_diag::seam_mismatch_map(partition, &stitch, cell),
        mrc_overlay: ilt_diag::mrc_overlay(partition, &mrc, cell),
    });
    Ok(())
}

/// Column averages over a set of case rows, per method.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodAverage {
    /// Method label.
    pub method: String,
    /// Average L2.
    pub l2: f64,
    /// Average PVBand.
    pub pvband: f64,
    /// Average stitch loss.
    pub stitch: f64,
    /// Average TAT.
    pub tat: f64,
}

/// Computes per-method averages (the paper's `Average` row).
///
/// # Panics
///
/// Panics if `cases` is empty or rows disagree on their method sets.
pub fn averages(cases: &[CaseResult]) -> Vec<MethodAverage> {
    assert!(!cases.is_empty(), "no cases to average");
    let n = cases.len() as f64;
    cases[0]
        .methods
        .iter()
        .map(|m| &m.method)
        .map(|name| {
            let mut acc = MethodAverage {
                method: name.clone(),
                l2: 0.0,
                pvband: 0.0,
                stitch: 0.0,
                tat: 0.0,
            };
            for case in cases {
                let m = case
                    .metrics_of(name)
                    .expect("method missing from a case row");
                acc.l2 += m.l2 as f64;
                acc.pvband += m.pvband as f64;
                acc.stitch += m.stitch;
                acc.tat += m.tat;
            }
            acc.l2 /= n;
            acc.pvband /= n;
            acc.stitch /= n;
            acc.tat /= n;
            acc
        })
        .collect()
}

/// Computes the paper's `Ratio` row: every method's averages normalised to
/// the reference method (the paper normalises to "Ours").
///
/// # Panics
///
/// Panics if the reference method is missing or has a zero column.
pub fn ratios(avgs: &[MethodAverage], reference: &str) -> Vec<MethodAverage> {
    let base = avgs
        .iter()
        .find(|a| a.method == reference)
        .expect("reference method missing");
    avgs.iter()
        .map(|a| MethodAverage {
            method: a.method.clone(),
            l2: a.l2 / base.l2,
            pvband: a.pvband / base.pvband,
            stitch: a.stitch / base.stitch,
            tat: a.tat / base.tat,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_layout::suite_of_size;
    use ilt_litho::ResistModel;

    #[test]
    fn method_labels() {
        let labels: Vec<&str> = Method::all().iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec!["GLS-ILT", "Multi-level-ILT", "Full-chip ILT", "Ours"]
        );
    }

    #[test]
    fn run_case_produces_full_row() {
        let config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let suite = suite_of_size(&config.generator, 1);
        let row = run_case(&config, &bank, &suite[0], &TileExecutor::sequential()).unwrap();
        assert_eq!(row.methods.len(), 4);
        assert_eq!(row.name, "case1");
        for m in &row.methods {
            assert!(m.metrics.l2 > 0, "{}: zero L2 is implausible", m.method);
            assert!(m.metrics.tat > 0.0);
            assert!(m.metrics.stitch >= 0.0);
        }
        assert!(row.metrics_of("Ours").is_some());
        assert!(row.metrics_of("nonexistent").is_none());
    }

    #[test]
    fn averages_and_ratios() {
        let mk = |l2: usize, tat: f64| MethodMetrics {
            l2,
            pvband: 10,
            stitch: 2.0,
            tat,
        };
        let case = |id: usize, l2a: usize, l2b: usize| CaseResult {
            id,
            name: format!("case{id}"),
            area: 100,
            methods: vec![
                MethodResult {
                    method: "A".into(),
                    metrics: mk(l2a, 1.0),
                },
                MethodResult {
                    method: "B".into(),
                    metrics: mk(l2b, 2.0),
                },
            ],
        };
        let cases = vec![case(1, 100, 200), case(2, 300, 400)];
        let avgs = averages(&cases);
        assert_eq!(avgs[0].l2, 200.0);
        assert_eq!(avgs[1].l2, 300.0);
        let r = ratios(&avgs, "B");
        assert!((r[0].l2 - 200.0 / 300.0).abs() < 1e-12);
        assert_eq!(r[1].l2, 1.0);
        assert_eq!(r[1].tat, 1.0);
    }

    #[test]
    #[should_panic(expected = "no cases")]
    fn empty_average_panics() {
        let _ = averages(&[]);
    }

    #[test]
    fn tiled_print_loss_counts_every_core_pixel_once() {
        // An all-dark mask prints nothing, so the tiled loss must equal
        // the target's drawn area exactly — every core pixel counted once,
        // none twice (cores are disjoint and covering).
        let config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let clip = suite_of_size(&config.generator, 1).remove(0);
        let dark = RealGrid::new(config.clip, config.clip, 0.0);
        let loss = tiled_print_loss(&config, &bank, &clip.target, &dark).unwrap();
        assert_eq!(loss, clip.area);

        // A non-power-of-two clip (the paper-scale case) also measures:
        // regenerate the suite at 3/2 tile so the full-clip system could
        // not even be built, and check the same identity.
        let mut wide = config.clone();
        wide.generator.size = 3 * wide.partition.tile / 2;
        let clip = suite_of_size(&wide.generator, 1).remove(0);
        let dark = RealGrid::new(wide.generator.size, wide.generator.size, 0.0);
        let loss = tiled_print_loss(&wide, &bank, &clip.target, &dark).unwrap();
        assert_eq!(loss, clip.area);
    }
}

//! A prepared experiment session: the kernel bank (from the process-wide
//! [`ilt_litho::cache`]) plus the prebuilt full-clip inspection system.
//!
//! Everything expensive and configuration-determined is paid once here —
//! TCC eigendecomposition via the shared bank cache, kernel resampling and
//! FFT plan setup for the inspection system — so repeated case runs (the
//! bench binaries) and repeated jobs (`ilt-serve`) only pay per-solve
//! costs. A [`Session`] is cheap to construct once its bank is cached:
//! warm construction is a cache hit plus one inspection-system resample.
//!
//! Simulators and FFT plans are `Sync` (scratch lives in per-call
//! [`ilt_litho::SimWorkspace`] arenas, not in the plans), but sessions are
//! still best treated as per-worker state: give each worker thread its own
//! `Session` and let the bank cache dedupe the heavy state underneath.

use std::sync::Arc;

use ilt_grid::{BitGrid, RealGrid};
use ilt_layout::Clip;
use ilt_litho::{LithoBank, LithoSystem};
use ilt_metrics::StitchReport;
use ilt_tile::TileExecutor;

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::experiment::{inspect_detailed, run_case_in, run_method, CaseResult, Method};
use crate::flows::FlowResult;

/// A reusable experiment session over one configuration.
#[derive(Debug)]
pub struct Session {
    config: ExperimentConfig,
    bank: Arc<LithoBank>,
    inspection: LithoSystem,
}

impl Session {
    /// Prepares a session: fetches (or builds) the shared kernel bank for
    /// the configuration's optics and resist, and builds the full-clip
    /// inspection system.
    ///
    /// # Errors
    ///
    /// Propagates kernel-construction and inspection-system failures.
    ///
    /// # Panics
    ///
    /// Panics if `config` is internally inconsistent (see
    /// [`ExperimentConfig::validate`]).
    pub fn new(config: ExperimentConfig) -> Result<Self, CoreError> {
        config.validate();
        // Construction costs (TCC eigendecomposition, kernel resampling,
        // FFT plan setup) bill to the kernel-build profiling stage.
        let _stage = ilt_prof::stage_scope(ilt_prof::Stage::KernelBuild);
        let bank = ilt_litho::shared_bank(&config.optics, config.resist)?;
        // The inspection-system resample is the other construction cost a
        // cold session pays; the `build` span makes it visible in the
        // latency budget next to the bank build.
        let mut build = ilt_telemetry::span(ilt_telemetry::names::BUILD);
        build.add_field("what", "inspection_system");
        let inspection = bank.system(config.clip, config.inspection_scale())?;
        drop(build);
        Ok(Session {
            config,
            bank,
            inspection,
        })
    }

    /// The configuration this session was prepared for.
    #[inline]
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The shared kernel bank.
    #[inline]
    pub fn bank(&self) -> &LithoBank {
        &self.bank
    }

    /// The prebuilt full-clip inspection system.
    #[inline]
    pub fn inspection(&self) -> &LithoSystem {
        &self.inspection
    }

    /// Runs one method on one target, reusing the session's bank.
    ///
    /// # Errors
    ///
    /// Propagates flow failures.
    pub fn run_method(
        &self,
        method: Method,
        target: &BitGrid,
        executor: &TileExecutor,
    ) -> Result<FlowResult, CoreError> {
        // The `session` span groups the flow (and its stages/tiles) under
        // one node of the per-job trace: queue → session → tiles →
        // assembly in `/debug/jobs/{id}/trace`.
        let mut span = ilt_telemetry::span(ilt_telemetry::names::SESSION);
        span.add_field("method", method.label());
        run_method(method, &self.config, &self.bank, target, executor)
    }

    /// Runs the multigrid-Schwarz flow and stores the final mask's tile
    /// crops in the shared mask store (`ilt-store`), making the result
    /// warm-startable by [`Session::run_incremental`]. When the store is
    /// disabled (`ILT_STORE=0`) this is plain [`Session::run_method`] with
    /// [`Method::Ours`].
    ///
    /// # Errors
    ///
    /// Propagates flow failures.
    pub fn run_and_store(
        &self,
        target: &BitGrid,
        executor: &TileExecutor,
    ) -> Result<FlowResult, CoreError> {
        let mut span = ilt_telemetry::span(ilt_telemetry::names::SESSION);
        span.add_field("method", "ours+store");
        if !ilt_store::MaskStore::enabled() {
            return crate::flows::multigrid_schwarz(
                &self.config,
                &self.bank,
                target,
                &ilt_opt::PixelIlt::new(),
                executor,
            );
        }
        crate::incremental::run_and_store(
            &self.config,
            &self.bank,
            ilt_store::shared_store(),
            target,
            &ilt_opt::PixelIlt::new(),
            executor,
        )
    }

    /// Incremental (ECO) re-solve: diffs `edited` against `base`, reuses
    /// clean tiles verbatim from the shared mask store, and re-solves only
    /// the dirty set warm-started from the base masks. The base layout must
    /// have been solved with [`Session::run_and_store`] under this
    /// session's config for warm starts to hit; on a cold store every tile
    /// re-solves (correct, just not fast).
    ///
    /// # Errors
    ///
    /// Propagates flow failures.
    pub fn run_incremental(
        &self,
        base: &BitGrid,
        edited: &BitGrid,
        executor: &TileExecutor,
    ) -> Result<crate::incremental::IncrementalOutcome, CoreError> {
        let mut span = ilt_telemetry::span(ilt_telemetry::names::SESSION);
        span.add_field("method", "ours-eco");
        crate::incremental::run_incremental_in(
            &self.config,
            &self.bank,
            ilt_store::shared_store(),
            base,
            edited,
            &ilt_opt::PixelIlt::new(),
            executor,
        )
    }

    /// Runs all four methods on one clip (one Table 1 row), reusing the
    /// session's bank and inspection system.
    ///
    /// # Errors
    ///
    /// Propagates flow and inspection failures.
    pub fn run_case(&self, clip: &Clip, executor: &TileExecutor) -> Result<CaseResult, CoreError> {
        run_case_in(&self.config, &self.bank, &self.inspection, clip, executor)
    }

    /// Inspects a raw mask against a target over the whole clip with the
    /// prebuilt inspection system (see
    /// [`inspect_detailed`](crate::experiment::inspect_detailed)).
    ///
    /// # Errors
    ///
    /// Propagates lithography failures.
    pub fn inspect_mask(
        &self,
        lines: &[ilt_tile::StitchLine],
        target: &BitGrid,
        mask: &RealGrid,
    ) -> Result<(ilt_metrics::MaskQuality, StitchReport), CoreError> {
        inspect_detailed(&self.config, &self.inspection, lines, target, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_layout::suite_of_size;
    use ilt_litho::{LithoBank, ResistModel};
    use ilt_tile::Partition;

    #[test]
    fn session_matches_direct_run_case() {
        let config = ExperimentConfig::test_tiny();
        let session = Session::new(config.clone()).unwrap();
        let clip = suite_of_size(&config.generator, 1).remove(0);
        let executor = TileExecutor::sequential();
        let via_session = session.run_case(&clip, &executor).unwrap();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let direct = crate::experiment::run_case(&config, &bank, &clip, &executor).unwrap();
        // Metrics must agree exactly except TAT, which is a wall clock.
        assert_eq!(via_session.methods.len(), direct.methods.len());
        for (a, b) in via_session.methods.iter().zip(&direct.methods) {
            assert_eq!(a.method, b.method);
            assert_eq!(a.metrics.l2, b.metrics.l2);
            assert_eq!(a.metrics.pvband, b.metrics.pvband);
            assert_eq!(a.metrics.stitch, b.metrics.stitch);
        }
    }

    #[test]
    fn sessions_share_the_cached_bank() {
        let config = ExperimentConfig::test_tiny();
        let a = Session::new(config.clone()).unwrap();
        let b = Session::new(config).unwrap();
        assert!(Arc::ptr_eq(&a.bank, &b.bank));
    }

    #[test]
    fn inspect_mask_runs_on_the_prebuilt_system() {
        let config = ExperimentConfig::test_tiny();
        let session = Session::new(config.clone()).unwrap();
        let clip = suite_of_size(&config.generator, 1).remove(0);
        let partition = Partition::new(clip.size(), clip.size(), config.partition).unwrap();
        let lines = partition.stitch_lines();
        let (quality, report) = session
            .inspect_mask(&lines, &clip.target, &clip.target_real())
            .unwrap();
        assert!(quality.l2 > 0);
        assert!(report.total >= 0.0);
    }
}

//! The parallel-speedup model for the Section 4 experiment.
//!
//! The paper measures speedup on 4 GPUs whose transfers are staged through
//! host memory. This repository runs on CPU (and possibly a single core),
//! so rather than pretending wall-clock parallel numbers, the model
//! replays the *measured* per-tile compute times of a flow through a
//! longest-processing-time list schedule with `k` workers, and charges the
//! host-staged communication for every tile result once per assembly
//! (communication does not parallelise — there is one host).

use crate::flows::{FlowResult, StageTiming};

/// Communication-cost model for tile results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    /// Seconds to move one tile between a worker and the host per assembly
    /// (both directions folded in). The paper's GPUs lack direct links, so
    /// every exchange is staged through the host.
    pub seconds_per_tile: f64,
}

impl CommModel {
    /// A model calibrated from a flow's own measured assembly times: the
    /// average assembly cost per tile is used as the transfer charge.
    pub fn from_measured(flow: &FlowResult) -> Self {
        let tiles: usize = flow.stages.iter().map(|s| s.tile_seconds.len()).sum();
        let assembly: f64 = flow.stages.iter().map(|s| s.assembly_seconds).sum();
        CommModel {
            seconds_per_tile: if tiles == 0 {
                0.0
            } else {
                assembly / tiles as f64
            },
        }
    }
}

/// Longest-processing-time list schedule: the makespan of `jobs` on
/// `workers` machines.
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn lpt_makespan(jobs: &[f64], workers: usize) -> f64 {
    assert!(workers > 0, "need at least one worker");
    if jobs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = jobs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("job times are finite"));
    let mut load = vec![0.0f64; workers];
    for job in sorted {
        // Assign to the least-loaded worker.
        let (idx, _) = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
            .expect("workers is nonzero");
        load[idx] += job;
    }
    load.into_iter().fold(0.0, f64::max)
}

/// Modeled wall-clock of one stage on `workers` workers: the parallel tile
/// schedule plus the sequential assembly and per-tile host transfers.
pub fn stage_makespan(stage: &StageTiming, workers: usize, comm: CommModel) -> f64 {
    lpt_makespan(&stage.tile_seconds, workers)
        + stage.assembly_seconds
        + comm.seconds_per_tile * stage.tile_seconds.len() as f64
}

/// Modeled wall-clock of a whole flow (stages are sequential by
/// construction: each needs the previous assembly).
pub fn flow_makespan(flow: &FlowResult, workers: usize, comm: CommModel) -> f64 {
    flow.stages
        .iter()
        .map(|s| stage_makespan(s, workers, comm))
        .sum()
}

/// One point of the speedup curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Worker count.
    pub workers: usize,
    /// Modeled makespan in seconds.
    pub makespan: f64,
    /// Speedup relative to one worker.
    pub speedup: f64,
}

/// Computes the speedup curve of a flow for the given worker counts.
pub fn speedup_curve(flow: &FlowResult, workers: &[usize], comm: CommModel) -> Vec<SpeedupPoint> {
    let base = flow_makespan(flow, 1, comm);
    workers
        .iter()
        .map(|&w| {
            let makespan = flow_makespan(flow, w, comm);
            SpeedupPoint {
                workers: w,
                makespan,
                speedup: if makespan > 0.0 { base / makespan } else { 1.0 },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Grid;

    fn flow(stages: Vec<StageTiming>) -> FlowResult {
        FlowResult {
            name: "test".into(),
            mask: Grid::new(2, 2, 0.0),
            stages,
            wall_seconds: 0.0,
            degraded: Vec::new(),
        }
    }

    fn stage(times: &[f64], asm: f64) -> StageTiming {
        StageTiming {
            label: "s".into(),
            tile_seconds: times.to_vec(),
            assembly_seconds: asm,
        }
    }

    #[test]
    fn lpt_basics() {
        assert_eq!(lpt_makespan(&[], 4), 0.0);
        assert_eq!(lpt_makespan(&[3.0, 1.0, 2.0], 1), 6.0);
        // 4 equal jobs on 2 workers: perfectly balanced.
        assert_eq!(lpt_makespan(&[1.0; 4], 2), 2.0);
        // LPT puts the long job alone.
        assert_eq!(lpt_makespan(&[4.0, 1.0, 1.0, 1.0, 1.0], 2), 4.0);
    }

    #[test]
    #[should_panic(expected = "worker")]
    fn zero_workers_panics() {
        let _ = lpt_makespan(&[1.0], 0);
    }

    #[test]
    fn more_workers_never_slower() {
        let s = stage(&[3.0, 2.5, 2.0, 1.5, 1.0, 0.5, 2.2, 0.9, 1.8], 0.2);
        let comm = CommModel {
            seconds_per_tile: 0.05,
        };
        let mut prev = f64::INFINITY;
        for w in 1..=8 {
            let m = stage_makespan(&s, w, comm);
            assert!(m <= prev + 1e-12, "workers {w}: {m} > {prev}");
            prev = m;
        }
    }

    #[test]
    fn communication_limits_speedup() {
        // 9 unit tiles: ideal 4-worker speedup would be 9 / 3 = 3, but
        // adding communication drags it below — mirroring the paper's
        // 2.76x on 4 GPUs without direct links.
        let f = flow(vec![stage(&[1.0; 9], 0.0)]);
        let no_comm = speedup_curve(
            &f,
            &[4],
            CommModel {
                seconds_per_tile: 0.0,
            },
        );
        assert!((no_comm[0].speedup - 3.0).abs() < 1e-12);
        let comm = speedup_curve(
            &f,
            &[4],
            CommModel {
                seconds_per_tile: 0.1,
            },
        );
        assert!(comm[0].speedup < 3.0);
        assert!(comm[0].speedup > 2.0);
    }

    #[test]
    fn stages_are_sequential_barriers() {
        // Two stages of 2 x 1s tiles: with 2 workers each stage takes 1s,
        // total 2s — not 2s of one big pool that could finish in 2s anyway;
        // but with 4 workers it still takes 2s (barrier between stages).
        let f = flow(vec![stage(&[1.0, 1.0], 0.0), stage(&[1.0, 1.0], 0.0)]);
        let comm = CommModel {
            seconds_per_tile: 0.0,
        };
        assert_eq!(flow_makespan(&f, 4, comm), 2.0);
        assert_eq!(flow_makespan(&f, 1, comm), 4.0);
    }

    #[test]
    fn measured_comm_model() {
        let f = flow(vec![stage(&[1.0; 4], 0.8), stage(&[1.0; 4], 0.0)]);
        let comm = CommModel::from_measured(&f);
        assert!((comm.seconds_per_tile - 0.1).abs() < 1e-12);
    }

    #[test]
    fn curve_is_normalised_to_one_worker() {
        let f = flow(vec![stage(&[2.0, 1.0, 1.0], 0.1)]);
        let curve = speedup_curve(
            &f,
            &[1, 2],
            CommModel {
                seconds_per_tile: 0.0,
            },
        );
        assert!((curve[0].speedup - 1.0).abs() < 1e-12);
        assert!(curve[1].speedup > 1.0);
    }
}

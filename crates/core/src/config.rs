//! Experiment configuration shared by all flows and the bench harness.

use ilt_layout::GeneratorConfig;
use ilt_litho::{OpticsConfig, ResistModel};
use ilt_metrics::StitchConfig;
use ilt_tile::PartitionConfig;

/// The iteration schedule of the paper's Section 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// Iterations for each divide-and-conquer / full-chip solve (paper:
    /// 100).
    pub baseline_iterations: usize,
    /// Coarse-grid ILT iterations at scale `s = 2` (paper: 60).
    pub coarse_iterations: usize,
    /// Total fine-grid ILT iterations (paper: 40)...
    pub fine_iterations: usize,
    /// ...split into this many additive-Schwarz stages with assembly and
    /// boundary exchange in between (paper: 2).
    pub fine_stages: usize,
    /// Learning-rate multiplier of the fine-grid stages. Warm starts from
    /// the coarse solution need gentler steps than cold starts.
    pub fine_lr_scale: f64,
    /// Refine-ILT iterations per tile in the multi-colour pass (paper: 4).
    pub refine_iterations: usize,
    /// Learning-rate multiplier of the refine pass ("relatively small").
    pub refine_lr_scale: f64,
    /// Iterations per healing window in the stitch-and-heal baseline \[6\].
    pub heal_iterations: usize,
}

impl Schedule {
    /// The paper's schedule.
    pub fn paper_default() -> Self {
        Schedule {
            baseline_iterations: 100,
            coarse_iterations: 60,
            fine_iterations: 40,
            fine_stages: 2,
            fine_lr_scale: 0.4,
            refine_iterations: 4,
            refine_lr_scale: 0.1,
            heal_iterations: 20,
        }
    }

    /// A drastically shortened schedule for unit tests.
    pub fn test_tiny() -> Self {
        Schedule {
            baseline_iterations: 8,
            coarse_iterations: 5,
            fine_iterations: 4,
            fine_stages: 2,
            fine_lr_scale: 0.4,
            refine_iterations: 1,
            refine_lr_scale: 0.1,
            heal_iterations: 2,
        }
    }

    /// Validates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if any stage count is zero or the stage split does not divide
    /// the fine budget.
    pub fn validate(&self) {
        assert!(self.baseline_iterations > 0, "baseline iterations zero");
        assert!(self.coarse_iterations > 0, "coarse iterations zero");
        assert!(self.fine_stages > 0, "fine stages zero");
        assert!(
            self.fine_iterations >= self.fine_stages,
            "fewer fine iterations than stages"
        );
        assert!(self.refine_lr_scale > 0.0, "refine lr scale zero");
        assert!(self.fine_lr_scale > 0.0, "fine lr scale zero");
    }

    /// Fine iterations per stage (last stage absorbs the remainder).
    pub fn fine_per_stage(&self, stage: usize) -> usize {
        Self::split(self.fine_iterations, self.fine_stages, stage)
    }

    /// Total fine-grid iterations for a warm-started (incremental) re-solve:
    /// half the cold budget, floored at one iteration per stage. Warm starts
    /// begin at the base layout's *final* mask rather than a coarse-grid
    /// promotion, so they sit far closer to the optimum — the observation
    /// ILILT (Yang & Ren 2024) makes systematic.
    pub fn warm_fine_iterations(&self) -> usize {
        (self.fine_iterations / 2).max(self.fine_stages)
    }

    /// Warm fine iterations for one stage (last stage absorbs the
    /// remainder), mirroring [`Schedule::fine_per_stage`].
    pub fn warm_per_stage(&self, stage: usize) -> usize {
        Self::split(self.warm_fine_iterations(), self.fine_stages, stage)
    }

    fn split(total: usize, stages: usize, stage: usize) -> usize {
        let base = total / stages;
        if stage + 1 == stages {
            total - base * (stages - 1)
        } else {
            base
        }
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::paper_default()
    }
}

/// Everything a flow needs to know about the experimental setup.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Clip edge length in pixels (paper: 4096; default here: 256 — see the
    /// scale-mapping table in `DESIGN.md`).
    pub clip: usize,
    /// Tile partitioning (tile edge must equal the optics' base grid).
    pub partition: PartitionConfig,
    /// Optical system.
    pub optics: OpticsConfig,
    /// Resist model.
    pub resist: ResistModel,
    /// Synthetic layout generator settings.
    pub generator: GeneratorConfig,
    /// Iteration schedule.
    pub schedule: Schedule,
    /// Stitch-loss metric settings.
    pub stitch: StitchConfig,
    /// Weighted-smoothing blend band `D` in pixels (0 selects the default,
    /// a quarter of the overlap).
    pub blend_band: usize,
    /// Largest multigrid scale factor `s_max` (paper: 2). The coarse
    /// hierarchy has `log2(s_max) + 1` levels: scales `s_max, s_max/2, …, 2`
    /// then the fine level; the coarsest level is solved directly (it is a
    /// single tile whenever `clip <= s_max * tile`).
    pub s_max: usize,
    /// Stream tile assembly: solve tiles one colour band at a time and fold
    /// each band into the output immediately, bounding peak resident fine
    /// tiles at one colour band instead of the whole grid. `false` holds
    /// every tile until the stage ends (the pre-streaming behaviour, kept
    /// for memory-comparison benches). Both paths fold in the same
    /// canonical order and are bit-identical.
    pub stream_tiles: bool,
    /// Worker threads for per-tile execution.
    pub workers: usize,
}

impl ExperimentConfig {
    /// The default benchmark setup: the paper's geometry ratios at 1/16
    /// linear scale (clip 256, tile 128, overlap 2 x 32, 3 x 3 tiles,
    /// coarse scale 2 covering the whole clip).
    pub fn paper_default() -> Self {
        let optics = OpticsConfig::m1_default();
        let mut generator = GeneratorConfig::with_size(2 * optics.base_n);
        // Features are kept wide enough (in pixels) that one coarse-grid
        // pixel stays a small fraction of a feature, as at the paper's
        // 1 nm pitch, and narrow enough relative to the optical resolution
        // to sit in the sub-Rayleigh regime; see DESIGN.md.
        generator.wire_width = 16;
        generator.wire_space = 24;
        generator.border = 20;
        ExperimentConfig {
            clip: 2 * optics.base_n,
            partition: PartitionConfig {
                tile: optics.base_n,
                overlap: optics.base_n / 2,
            },
            optics,
            resist: ResistModel::m1_default(),
            generator,
            schedule: Schedule::paper_default(),
            stitch: StitchConfig::paper_default(),
            blend_band: 0,
            s_max: 2,
            stream_tiles: true,
            workers: 1,
        }
    }

    /// The paper's literal scale: 4096-pixel clips, 2048-pixel tiles,
    /// overlap 2 x 512, with the optics scaled so features keep the same
    /// `k1`. Accepted by every flow unchanged, but expect hours per clip on
    /// a CPU — the default scale exists precisely so the experiments run on
    /// a laptop.
    pub fn paper_scale() -> Self {
        let mut cfg = ExperimentConfig::paper_default();
        let factor = 2048 / cfg.optics.base_n;
        cfg.optics.base_n = 2048;
        cfg.optics.pupil_radius_bins *= factor as f64;
        cfg.optics.source_step_bins *= factor as f64;
        cfg.clip = 4096;
        cfg.partition = PartitionConfig {
            tile: 2048,
            overlap: 1024,
        };
        cfg.generator = GeneratorConfig::with_size(4096);
        cfg.generator.wire_width = 16 * factor;
        cfg.generator.wire_space = 24 * factor;
        cfg.generator.border = 20 * factor;
        cfg
    }

    /// A miniature setup for unit tests: 128-pixel clips over the
    /// `test_small` optics (64-pixel tiles, 3 x 3 partition).
    pub fn test_tiny() -> Self {
        let optics = OpticsConfig::test_small();
        let mut generator = GeneratorConfig::with_size(2 * optics.base_n);
        // Keep features resolvable by the small test pupil.
        generator.wire_width = 9;
        generator.wire_space = 13;
        generator.border = 8;
        ExperimentConfig {
            clip: 2 * optics.base_n,
            partition: PartitionConfig {
                tile: optics.base_n,
                overlap: optics.base_n / 2,
            },
            optics,
            resist: ResistModel::m1_default(),
            generator,
            schedule: Schedule::test_tiny(),
            stitch: StitchConfig {
                window: 24,
                ..StitchConfig::paper_default()
            },
            blend_band: 0,
            s_max: 2,
            stream_tiles: true,
            workers: 1,
        }
    }

    /// Validates cross-field consistency.
    ///
    /// # Panics
    ///
    /// Panics if the tile size differs from the optics base grid, the clip
    /// is not `s_max` times coverable, or any sub-configuration is invalid.
    pub fn validate(&self) {
        self.optics.validate();
        self.resist.validate();
        self.generator.validate();
        self.schedule.validate();
        self.stitch.validate();
        assert_eq!(
            self.partition.tile, self.optics.base_n,
            "tile size must equal the litho base grid"
        );
        assert_eq!(
            self.generator.size, self.clip,
            "generator clip size must match the experiment clip"
        );
        assert!(self.s_max >= 1, "s_max must be at least 1");
        assert!(
            self.s_max.is_power_of_two(),
            "s_max must be a power of two (Algorithm 1 halves it)"
        );
        assert!(
            self.clip >= self.s_max * self.optics.base_n,
            "coarsest tiles (s_max * N = {}) must fit in the clip ({}); \
             non-divisible clips clamp the last row/column",
            self.s_max * self.optics.base_n,
            self.clip
        );
        assert!(self.workers >= 1, "need at least one worker");
    }

    /// The scale factor of the full-clip inspection system (Eq. (3)):
    /// `clip / base_n`.
    pub fn inspection_scale(&self) -> usize {
        self.clip / self.optics.base_n
    }

    /// Litho-config fingerprint for the mask store (`ilt-store`): a stable
    /// digest of every field that shapes a solved tile mask. Two configs
    /// with the same fingerprint produce interchangeable tile masks, so a
    /// store entry keyed under one may warm-start the other. `workers` is
    /// excluded — the executor width changes scheduling, never values.
    /// Over-keying (hashing fields like the generator that don't influence
    /// a solve given its target) only costs reuse, never correctness, so
    /// the digest conservatively covers the whole config via its `Debug`
    /// rendering.
    pub fn fingerprint(&self) -> u64 {
        let mut canonical = self.clone();
        canonical.workers = 1;
        // Streaming changes when contributions fold, never their values
        // (streamed and batch assembly are bit-identical), so it is
        // canonicalized out like `workers`.
        canonical.stream_tiles = true;
        let mut fp = ilt_store::Fingerprint::new();
        fp.write_str("ilt-experiment-config-v1");
        fp.write_str(&format!("{canonical:?}"));
        fp.finish()
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ExperimentConfig::paper_default().validate();
        ExperimentConfig::test_tiny().validate();
    }

    #[test]
    fn paper_schedule_counts() {
        let s = Schedule::paper_default();
        assert_eq!(s.baseline_iterations, 100);
        assert_eq!(s.coarse_iterations, 60);
        assert_eq!(s.fine_iterations, 40);
        assert_eq!(s.fine_stages, 2);
        assert_eq!(s.refine_iterations, 4);
    }

    #[test]
    fn fine_stage_split() {
        let s = Schedule::paper_default();
        assert_eq!(s.fine_per_stage(0), 20);
        assert_eq!(s.fine_per_stage(1), 20);
        let odd = Schedule {
            fine_iterations: 7,
            fine_stages: 3,
            ..Schedule::paper_default()
        };
        assert_eq!(
            odd.fine_per_stage(0) + odd.fine_per_stage(1) + odd.fine_per_stage(2),
            7
        );
        assert_eq!(odd.fine_per_stage(2), 3);
    }

    #[test]
    fn warm_schedule_halves_the_fine_budget() {
        let paper = Schedule::paper_default();
        assert_eq!(paper.warm_fine_iterations(), 20);
        assert_eq!(paper.warm_per_stage(0) + paper.warm_per_stage(1), 20);
        let tiny = Schedule::test_tiny();
        assert_eq!(tiny.warm_fine_iterations(), 2);
        assert_eq!(tiny.warm_per_stage(0), 1);
        assert_eq!(tiny.warm_per_stage(1), 1);
        // The floor: never fewer than one iteration per stage.
        let minimal = Schedule {
            fine_iterations: 3,
            fine_stages: 3,
            ..Schedule::paper_default()
        };
        assert_eq!(minimal.warm_fine_iterations(), 3);
    }

    #[test]
    fn fingerprint_tracks_solve_shaping_fields_only() {
        let base = ExperimentConfig::test_tiny();
        assert_eq!(
            base.fingerprint(),
            ExperimentConfig::test_tiny().fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ExperimentConfig::paper_default().fingerprint()
        );
        let mut retuned = ExperimentConfig::test_tiny();
        retuned.schedule.fine_iterations += 2;
        assert_ne!(base.fingerprint(), retuned.fingerprint());
        let mut wider = ExperimentConfig::test_tiny();
        wider.workers = 8;
        assert_eq!(base.fingerprint(), wider.fingerprint());
        let mut held = ExperimentConfig::test_tiny();
        held.stream_tiles = false;
        assert_eq!(base.fingerprint(), held.fingerprint());
    }

    #[test]
    fn clamped_clips_validate() {
        // 160 = 2.5 tiles: valid now that the partition clamps; the coarse
        // hierarchy requirement is only that one coarsest tile fits.
        let mut cfg = ExperimentConfig::test_tiny();
        cfg.clip = 160;
        cfg.generator.size = 160;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "must fit in the clip")]
    fn coarsest_level_must_fit() {
        let mut cfg = ExperimentConfig::test_tiny();
        cfg.clip = 96;
        cfg.generator.size = 96;
        cfg.s_max = 2; // coarsest tile 128 > clip 96
        cfg.validate();
    }

    #[test]
    fn paper_scale_matches_the_papers_numbers() {
        let cfg = ExperimentConfig::paper_scale();
        cfg.validate();
        assert_eq!(cfg.clip, 4096);
        assert_eq!(cfg.partition.tile, 2048);
        assert_eq!(cfg.partition.overlap, 2 * 512);
        assert_eq!(cfg.optics.base_n, 2048);
        // Same k1: pupil radius scales with the grid.
        let default = ExperimentConfig::paper_default();
        let ratio = cfg.optics.pupil_radius_bins / default.optics.pupil_radius_bins;
        assert_eq!(ratio as usize, 2048 / default.optics.base_n);
    }

    #[test]
    fn paper_geometry_ratios() {
        let cfg = ExperimentConfig::paper_default();
        // Same ratios as the paper: clip = 2 tiles, overlap = tile / 2.
        assert_eq!(cfg.clip, 2 * cfg.partition.tile);
        assert_eq!(cfg.partition.overlap, cfg.partition.tile / 2);
        assert_eq!(cfg.inspection_scale(), 2);
    }

    #[test]
    #[should_panic(expected = "tile size must equal")]
    fn tile_base_mismatch_rejected() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.partition.tile = 64;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "fewer fine iterations")]
    fn bad_schedule_rejected() {
        let s = Schedule {
            fine_iterations: 1,
            fine_stages: 2,
            ..Schedule::paper_default()
        };
        s.validate();
    }
}

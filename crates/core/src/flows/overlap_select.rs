//! The error-norm selection baseline (\[5\] in the paper): tiles are
//! optimised independently as in divide-and-conquer, but the assembly
//! resolves each overlap region by *selecting* the tile whose own
//! lithography error is smaller there, instead of cutting at the core
//! boundary. Selection avoids some bad cuts but still cannot reconcile
//! genuinely different solutions, so discontinuities move rather than
//! disappear.

use ilt_grid::{BitGrid, RealGrid};
use ilt_litho::{Corner, LithoBank};
use ilt_opt::{SolveContext, SolveRequest, TileSolver};
use ilt_tile::{multi_coloring, restrict, Partition, TileExecutor};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::flows::{trace, FlowResult};

/// Runs the overlap-error-selection flow.
///
/// # Errors
///
/// Returns [`CoreError`] on partitioning, solver, or simulation failure.
pub fn overlap_select(
    config: &ExperimentConfig,
    bank: &LithoBank,
    target: &BitGrid,
    solver: &dyn TileSolver,
    executor: &TileExecutor,
) -> Result<FlowResult, CoreError> {
    config.validate();
    let name = format!("overlap-select:{}", solver.name());
    let fspan = trace::flow_span(&name);
    let partition = Partition::new(target.width(), target.height(), config.partition)?;
    let target_real = target.to_real();
    let iterations = config.schedule.baseline_iterations;
    let n = config.partition.tile;

    // Independent solves, exactly as divide-and-conquer, but each job also
    // returns the tile's per-pixel squared print error (its own view).
    let solve = |i: usize| {
        let tile = partition.tile(i);
        let tile_target = restrict(&target_real, tile);
        let ctx = SolveContext { bank, n, scale: 1 };
        trace::timed_tile(i, || {
            let outcome = solver.solve(
                &ctx,
                &SolveRequest::new(&tile_target, &tile_target, iterations),
            )?;
            ilt_diag::observe_solve(&name, "overlap-select", i, &outcome.loss_history);
            let system = ctx.system()?;
            let aerial = system.aerial(&outcome.mask, Corner::Nominal)?;
            let wafer = system.resist().sigmoid(&aerial);
            let error = RealGrid::from_fn(n, n, |x, y| {
                let e = wafer.get(x, y) - tile_target.get(x, y);
                e * e
            });
            Ok::<_, CoreError>((outcome.mask, error))
        })
    };

    // Per-pixel selection: each pixel takes the value of the covering tile
    // with the smallest local error. The strict `<` makes the fold order
    // observable at exact ties, so both the streamed and the hold-everything
    // paths visit tiles in the same canonical colour-band order — the first
    // tile in that order wins ties and the two paths stay bit-identical.
    let groups = multi_coloring(&partition).groups();
    let mut mask = RealGrid::new(partition.width(), partition.height(), 0.0);
    let mut best = RealGrid::new(partition.width(), partition.height(), f64::INFINITY);
    let stage = trace::stage("overlap-select".to_string());
    // The `select` closure borrows `mask` and `best` mutably; scoping it to
    // the timing block releases the borrows once selection is done.
    let timing = {
        let mut select = |i: usize, tile_mask: &RealGrid, error: &RealGrid| {
            let tile = partition.tile(i);
            for y in 0..n {
                let gy = tile.rect.y0 as usize + y;
                for x in 0..n {
                    let gx = tile.rect.x0 as usize + x;
                    let e = error.get(x, y);
                    if e < best.get(gx, gy) {
                        best.set(gx, gy, e);
                        mask.set(gx, gy, tile_mask.get(x, y));
                    }
                }
            }
        };

        if config.stream_tiles {
            // One colour band of (mask, error) pairs resident at a time.
            let mut tile_seconds = vec![0.0; partition.tiles().len()];
            let mut assembly_seconds = 0.0;
            for group in groups {
                if group.is_empty() {
                    continue;
                }
                let band = executor.run_fallible_over(&group, solve)?;
                let ((), fold_seconds) = trace::assembly_fold(|| {
                    for (((tile_mask, error), seconds), &i) in band.into_iter().zip(&group) {
                        tile_seconds[i] = seconds;
                        select(i, &tile_mask, &error);
                    }
                    Ok::<_, CoreError>(())
                })?;
                assembly_seconds += fold_seconds;
            }
            stage.finish_streamed(tile_seconds, assembly_seconds)
        } else {
            let order: Vec<usize> = groups.into_iter().flatten().collect();
            let solved = executor.run_fallible(partition.tiles().len(), solve)?;
            let ((), timing) = stage.finish(solved, |tiles| {
                for &i in &order {
                    let (tile_mask, error) = &tiles[i];
                    select(i, tile_mask, error);
                }
                Ok::<_, CoreError>(())
            })?;
            timing
        }
    };

    let wall_seconds = fspan.end();
    Ok(FlowResult {
        name,
        mask,
        stages: vec![timing],
        wall_seconds,
        degraded: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_layout::generate_clip;
    use ilt_litho::ResistModel;
    use ilt_opt::PixelIlt;

    #[test]
    fn selects_a_complete_mask() {
        let config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 5);
        let result = overlap_select(
            &config,
            &bank,
            &target,
            &PixelIlt::new(),
            &TileExecutor::sequential(),
        )
        .unwrap();
        assert_eq!(result.mask.width(), config.clip);
        // Every pixel was claimed by some tile (error < inf implies write).
        assert!(result.mask.as_slice().iter().all(|v| v.is_finite()));
        assert!(result.name.starts_with("overlap-select:"));
        assert_eq!(result.stages[0].tile_seconds.len(), 9);
    }

    #[test]
    fn differs_from_hard_core_cut() {
        // Selection moves the effective boundary, so the assembled mask
        // differs from the restricted divide-and-conquer assembly somewhere
        // in the overlaps.
        use crate::flows::divide_and_conquer;
        let config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 5);
        let executor = TileExecutor::sequential();
        let solver = PixelIlt::new();
        let select = overlap_select(&config, &bank, &target, &solver, &executor).unwrap();
        let dnc = divide_and_conquer(&config, &bank, &target, &solver, &executor).unwrap();
        assert_ne!(select.mask, dnc.mask);
    }

    #[test]
    fn streamed_matches_hold_everything() {
        // Selection's tie-break makes fold order observable; both paths use
        // the canonical colour-band order, so they must agree exactly.
        let mut config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 6);
        let solver = PixelIlt::new();
        let executor = TileExecutor::sequential();
        config.stream_tiles = true;
        let streamed = overlap_select(&config, &bank, &target, &solver, &executor).unwrap();
        config.stream_tiles = false;
        let held = overlap_select(&config, &bank, &target, &solver, &executor).unwrap();
        assert_eq!(streamed.mask, held.mask);
    }
}

//! The 'stitch-and-heal' baseline (\[6\] in the paper): after a traditional
//! divide-and-conquer pass, re-optimise windows along each stitch line and
//! paste their central bands back. Healing fixes the original seams but the
//! pasted bands introduce **new** partition edges — the failure mode the
//! paper demonstrates in Fig. 7.

use ilt_grid::{BitGrid, RealGrid, Rect};
use ilt_litho::LithoBank;
use ilt_opt::{SolveContext, SolveRequest, TileSolver};
use ilt_tile::{restrict, Orientation, Partition, StitchLine, Tile, TileExecutor};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::flows::{trace, FlowResult};

/// Result of the stitch-and-heal flow: the healed mask plus the seam
/// bookkeeping needed to reproduce the Fig. 7 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct HealOutcome {
    /// The healed mask and its timing.
    pub result: FlowResult,
    /// The original stitch lines the heal pass targeted.
    pub healed_lines: Vec<StitchLine>,
    /// The partition edges the healing itself created: the band borders
    /// and the joints between adjacent healing windows.
    pub new_lines: Vec<StitchLine>,
}

/// Runs the heal pass on top of an existing divide-and-conquer mask.
///
/// # Errors
///
/// Returns [`CoreError`] on partitioning or solver failure.
pub fn stitch_and_heal(
    config: &ExperimentConfig,
    bank: &LithoBank,
    target: &BitGrid,
    dnc_mask: &RealGrid,
    solver: &dyn TileSolver,
    executor: &TileExecutor,
) -> Result<HealOutcome, CoreError> {
    config.validate();
    let name = format!("stitch-and-heal:{}", solver.name());
    let fspan = trace::flow_span(&name);
    let partition = Partition::new(target.width(), target.height(), config.partition)?;
    let lines = partition.stitch_lines();
    let t = config.partition.tile;
    let band = (t / 4) as i64;
    let target_real = target.to_real();
    let mut mask = dnc_mask.clone();
    let mut stages = Vec::new();
    let mut new_lines = Vec::new();

    for (line_idx, line) in lines.iter().enumerate() {
        let windows = heal_windows(line, t, target.width(), target.height());
        let label = format!("heal line {}", line_idx + 1);
        let stage = trace::stage(label.clone());
        let solved = executor.run_fallible(windows.len(), |k| {
            let rect = windows[k];
            let fake_tile = Tile {
                index: k,
                grid_pos: (0, 0),
                rect,
                core: rect,
            };
            let tile_target = restrict(&target_real, &fake_tile);
            let tile_init = restrict(&mask, &fake_tile);
            let ctx = SolveContext {
                bank,
                n: t,
                scale: 1,
            };
            // Healing refines an existing solution: warm-start semantics.
            let request = SolveRequest {
                target: &tile_target,
                initial: &tile_init,
                iterations: config.schedule.heal_iterations,
                lr_scale: config.schedule.fine_lr_scale,
                gentle: false,
                warm: true,
            };
            let (outcome, elapsed) =
                trace::timed_tile(k, || Ok::<_, CoreError>(solver.solve(&ctx, &request)?))?;
            ilt_diag::observe_solve(&name, &label, k, &outcome.loss_history);
            Ok::<_, CoreError>((outcome.mask, elapsed))
        })?;

        let ((), timing) = stage.finish(solved, |healed_masks| {
            for (k, healed) in healed_masks.iter().enumerate() {
                // Paste back only the central band around the original
                // line — a hard cut, exactly what creates the new seams.
                let rect = windows[k];
                let band_rect = match line.orientation {
                    Orientation::Vertical => Rect::new(
                        line.position as i64 - band,
                        rect.y0,
                        line.position as i64 + band,
                        rect.y1,
                    ),
                    Orientation::Horizontal => Rect::new(
                        rect.x0,
                        line.position as i64 - band,
                        rect.x1,
                        line.position as i64 + band,
                    ),
                };
                for (gx, gy) in band_rect.pixels() {
                    let lx = (gx - rect.x0) as usize;
                    let ly = (gy - rect.y0) as usize;
                    mask.set(gx as usize, gy as usize, healed.get(lx, ly));
                }
            }
            Ok::<_, CoreError>(())
        })?;

        // New seams: the band borders along the full line...
        match line.orientation {
            Orientation::Vertical => {
                for offset in [-band, band] {
                    new_lines.push(StitchLine {
                        orientation: Orientation::Vertical,
                        position: (line.position as i64 + offset) as usize,
                        start: line.start,
                        end: line.end,
                    });
                }
                // ...and the joints between adjacent windows, crossing the band.
                for pair in windows.windows(2) {
                    new_lines.push(StitchLine {
                        orientation: Orientation::Horizontal,
                        position: pair[1].y0 as usize,
                        start: (line.position as i64 - band) as usize,
                        end: (line.position as i64 + band) as usize,
                    });
                }
            }
            Orientation::Horizontal => {
                for offset in [-band, band] {
                    new_lines.push(StitchLine {
                        orientation: Orientation::Horizontal,
                        position: (line.position as i64 + offset) as usize,
                        start: line.start,
                        end: line.end,
                    });
                }
                for pair in windows.windows(2) {
                    new_lines.push(StitchLine {
                        orientation: Orientation::Vertical,
                        position: pair[1].x0 as usize,
                        start: (line.position as i64 - band) as usize,
                        end: (line.position as i64 + band) as usize,
                    });
                }
            }
        }

        stages.push(timing);
    }

    let wall_seconds = fspan.end();
    Ok(HealOutcome {
        result: FlowResult {
            name,
            mask,
            stages,
            wall_seconds,
            degraded: Vec::new(),
        },
        healed_lines: lines,
        new_lines,
    })
}

/// Square healing windows of edge `t` tiled along a stitch line. The line
/// always sits at least `t/2` from the layout edge (it is an interior core
/// boundary), so windows never need clipping.
fn heal_windows(line: &StitchLine, t: usize, width: usize, height: usize) -> Vec<Rect> {
    let half = (t / 2) as i64;
    let mut windows = Vec::new();
    match line.orientation {
        Orientation::Vertical => {
            let x0 = line.position as i64 - half;
            let mut y = 0i64;
            while y + (t as i64) <= height as i64 {
                windows.push(Rect::new(x0, y, x0 + t as i64, y + t as i64));
                y += t as i64;
            }
        }
        Orientation::Horizontal => {
            let y0 = line.position as i64 - half;
            let mut x = 0i64;
            while x + (t as i64) <= width as i64 {
                windows.push(Rect::new(x, y0, x + t as i64, y0 + t as i64));
                x += t as i64;
            }
        }
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::divide_and_conquer;
    use ilt_layout::generate_clip;
    use ilt_litho::ResistModel;
    use ilt_opt::PixelIlt;

    #[test]
    fn window_tiling_along_lines() {
        let line = StitchLine {
            orientation: Orientation::Vertical,
            position: 48,
            start: 0,
            end: 128,
        };
        let ws = heal_windows(&line, 64, 128, 128);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0], Rect::new(16, 0, 80, 64));
        assert_eq!(ws[1], Rect::new(16, 64, 80, 128));
        let hline = StitchLine {
            orientation: Orientation::Horizontal,
            position: 80,
            start: 0,
            end: 128,
        };
        let ws = heal_windows(&hline, 64, 128, 128);
        assert_eq!(ws[0], Rect::new(0, 48, 64, 112));
    }

    #[test]
    fn heal_changes_band_and_reports_new_seams() {
        let config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 3);
        let executor = TileExecutor::sequential();
        let solver = PixelIlt::new();
        let dnc = divide_and_conquer(&config, &bank, &target, &solver, &executor).unwrap();
        let healed =
            stitch_and_heal(&config, &bank, &target, &dnc.mask, &solver, &executor).unwrap();

        assert_eq!(healed.healed_lines.len(), 4);
        // Each line contributes 2 band borders + 1 window joint.
        assert_eq!(healed.new_lines.len(), 4 * 3);
        // The mask changed somewhere inside a band...
        assert_ne!(healed.result.mask, dnc.mask);
        // ...but not outside all bands (probe a point far from every line).
        assert_eq!(healed.result.mask.get(4, 4), dnc.mask.get(4, 4));
        assert!(healed.result.name.starts_with("stitch-and-heal:"));
    }
}

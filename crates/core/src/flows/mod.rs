//! The full-chip mask-optimisation flows: the paper's multigrid-Schwarz
//! method and every comparison flow of its evaluation.

mod divide_and_conquer;
mod full_chip;
mod multigrid;
mod overlap_select;
mod stitch_heal;
pub(crate) mod trace;

pub use divide_and_conquer::divide_and_conquer;
pub use full_chip::full_chip;
pub use multigrid::multigrid_schwarz;
pub(crate) use multigrid::{apply_weighted_update, recover_stage};
pub use overlap_select::overlap_select;
pub use stitch_heal::{stitch_and_heal, HealOutcome};

use ilt_grid::RealGrid;

/// Timing of one flow stage: the per-tile compute times (parallelisable)
/// and the sequential assembly/communication time that follows them.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage label, e.g. `"coarse s=2"`, `"fine stage 1"`, `"refine color 2"`.
    pub label: String,
    /// Wall-clock seconds of each tile solve in this stage.
    pub tile_seconds: Vec<f64>,
    /// Seconds spent assembling/stitching after the tiles finished — the
    /// sequential, host-side portion.
    pub assembly_seconds: f64,
}

impl StageTiming {
    /// Total compute across tiles (the single-worker stage cost).
    pub fn total_tile_seconds(&self) -> f64 {
        self.tile_seconds.iter().sum()
    }
}

/// One tile that fell back to its pre-stage mask after its solve failed
/// every retry attempt (see `multigrid_schwarz` graceful degradation).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedTile {
    /// Stage label whose solve failed (e.g. `"fine stage 1"`).
    pub stage: String,
    /// Tile index within the stage's partition.
    pub tile: usize,
    /// The failure that exhausted the retries.
    pub error: String,
}

/// Result of one flow: the optimised mask plus its runtime breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResult {
    /// Flow identifier (e.g. `"ours"`, `"dnc:multi-level-ilt"`).
    pub name: String,
    /// Optimised continuous mask over the whole clip.
    pub mask: RealGrid,
    /// Per-stage timing, in execution order.
    pub stages: Vec<StageTiming>,
    /// Total wall-clock seconds of the flow as actually executed.
    pub wall_seconds: f64,
    /// Tiles that kept their coarse-grid (pre-stage) mask because their
    /// solve failed after retries. Empty on a fully healthy run.
    pub degraded: Vec<DegradedTile>,
}

impl FlowResult {
    /// Turn-around time: the wall-clock seconds column of Table 1.
    pub fn tat(&self) -> f64 {
        self.wall_seconds
    }

    /// Total per-tile compute summed over all stages (the sequential-
    /// schedule lower bound used by the speedup model).
    pub fn total_tile_seconds(&self) -> f64 {
        self.stages
            .iter()
            .map(StageTiming::total_tile_seconds)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Grid;

    #[test]
    fn stage_and_flow_totals() {
        let flow = FlowResult {
            name: "x".into(),
            mask: Grid::new(2, 2, 0.0),
            stages: vec![
                StageTiming {
                    label: "a".into(),
                    tile_seconds: vec![1.0, 2.0],
                    assembly_seconds: 0.5,
                },
                StageTiming {
                    label: "b".into(),
                    tile_seconds: vec![3.0],
                    assembly_seconds: 0.25,
                },
            ],
            wall_seconds: 7.0,
            degraded: Vec::new(),
        };
        assert_eq!(flow.stages[0].total_tile_seconds(), 3.0);
        assert_eq!(flow.total_tile_seconds(), 6.0);
        assert_eq!(flow.tat(), 7.0);
    }
}

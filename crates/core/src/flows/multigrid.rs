//! The paper's contribution: the multigrid-Schwarz flow ("Ours").
//!
//! Three phases, exactly as Section 3 describes:
//!
//! 1. **Coarse-grid ILT** (Algorithm 1): for `s = s_max, s_max/2, ..., 2`,
//!    partition the clip into `sN`-sized tiles, downsample each tile by `s`,
//!    solve with `s`-scaled kernels (Eq. (9)), and assemble with the hard
//!    RAS interpolation of Eq. (6) — stitching errors are deliberately left
//!    for the fine grid.
//! 2. **Staged fine-grid ILT** (modified additive Schwarz): the fine
//!    iteration budget is split into stages; after each stage the tiles are
//!    assembled with the weighted interpolation of Eq. (14) and the next
//!    stage re-crops its tiles from the assembled layout, so margins carry
//!    the neighbours' latest solutions (the boundary condition Eq. (11)).
//! 3. **Multi-colour multiplicative Schwarz refine**: tiles are processed
//!    colour by colour with a small learning rate; same-colour tiles never
//!    overlap and run in parallel, and the layout is updated between
//!    colours so later colours see earlier results.

use ilt_grid::{resample, BitGrid, RealGrid};
use ilt_litho::LithoBank;
use ilt_opt::{SolveContext, SolveRequest, TileSolver};
use ilt_telemetry as tele;
use ilt_tile::{
    assemble, multi_coloring, restrict, weight_map, AssemblyMode, Partition, PartitionConfig,
    RetryPolicy, TileExecutor, TileFailure,
};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::flows::{trace, DegradedTile, FlowResult};

/// What [`TileExecutor::run_recoverable`] hands back per tile: the outer
/// layer is panic-vs-completed, the inner the solver's own result.
type RecoveredTile = Result<Result<(RealGrid, f64), CoreError>, TileFailure>;

/// Folds one recoverable stage's per-tile results into the `(mask, seconds)`
/// pairs the assembly expects. A tile whose solve failed after retries —
/// by panicking ([`TileFailure`]) or by returning a typed error — degrades
/// gracefully: it keeps `fallback` (its pre-stage, i.e. coarse-grid, mask),
/// gets flagged in diagnostics and the `flow.tiles_degraded` counter, and
/// the stage's normal weighted-smoothing assembly stitches it in. The one
/// exception is [`ilt_opt::OptError::DeadlineExceeded`]: the job's budget is
/// already blown, so the whole flow aborts with the typed error instead of
/// burning the remaining stages.
pub(crate) fn recover_stage(
    flow: &str,
    label: &str,
    results: Vec<RecoveredTile>,
    tile_of: impl Fn(usize) -> usize,
    fallback: impl Fn(usize) -> RealGrid,
    degraded: &mut Vec<DegradedTile>,
) -> Result<Vec<(RealGrid, f64)>, CoreError> {
    let mut solved = Vec::with_capacity(results.len());
    for (k, result) in results.into_iter().enumerate() {
        let error = match result {
            Ok(Ok(pair)) => {
                solved.push(pair);
                continue;
            }
            Ok(Err(e)) => {
                if e.is_deadline_exceeded() {
                    return Err(e);
                }
                e.to_string()
            }
            Err(failure) => failure.to_string(),
        };
        let tile = tile_of(k);
        tele::counter_add("flow.tiles_degraded", 1);
        ilt_diag::observe_degraded(flow, label, tile, &error);
        degraded.push(DegradedTile {
            stage: label.to_string(),
            tile,
            error,
        });
        solved.push((fallback(k), 0.0));
    }
    Ok(solved)
}

/// Runs the multigrid-Schwarz flow.
///
/// # Errors
///
/// Returns [`CoreError`] on partitioning, solver, or assembly failure.
pub fn multigrid_schwarz(
    config: &ExperimentConfig,
    bank: &LithoBank,
    target: &BitGrid,
    solver: &dyn TileSolver,
    executor: &TileExecutor,
) -> Result<FlowResult, CoreError> {
    config.validate();
    let name = format!("ours:{}", solver.name());
    let fspan = trace::flow_span(&name);
    let n = config.partition.tile;
    let clip_w = target.width();
    let clip_h = target.height();
    let target_real = target.to_real();
    // Algorithm 1 line 4: M <- Z_t.
    let mut mask = target_real.clone();
    let mut stages = Vec::new();
    let mut degraded: Vec<DegradedTile> = Vec::new();
    let policy = RetryPolicy::from_env();

    // Phase 1: coarse grids, s = s_max .. 2 (Algorithm 1 stops addressing
    // stitching; assembly is the plain Eq. (6)).
    let mut s = config.s_max;
    while s >= 2 {
        let coarse = PartitionConfig {
            tile: s * n,
            overlap: s * config.partition.overlap,
        };
        let partition = Partition::new(clip_w, clip_h, coarse)?;
        let label = format!("coarse s={s}");
        let stage = trace::stage(label.clone());
        let results = executor.run_recoverable(partition.tiles().len(), policy, |i| {
            let tile = partition.tile(i);
            let tile_target = resample::downsample(&restrict(&target_real, tile), s);
            let tile_init = resample::downsample(&restrict(&mask, tile), s);
            let ctx = SolveContext { bank, n, scale: s };
            let (outcome, elapsed) = trace::timed_tile(i, || {
                Ok::<_, CoreError>(solver.solve(
                    &ctx,
                    &SolveRequest::new(&tile_target, &tile_init, config.schedule.coarse_iterations),
                )?)
            })?;
            ilt_diag::observe_solve(&name, &label, i, &outcome.loss_history);
            // Promote the coarse solution back to the fine grid with a
            // band-limited interpolation: bilinear alone leaves blocky
            // staircases that the fine stages (optically blind to them)
            // would never remove.
            let up = resample::upsample_bilinear(&outcome.mask, s);
            let filter = ilt_grid::GaussianFilter::new(0.5 * s as f64);
            Ok::<_, CoreError>((filter.apply(&up), elapsed))
        });
        let solved = recover_stage(
            &name,
            &label,
            results,
            |k| k,
            |k| restrict(&mask, partition.tile(k)),
            &mut degraded,
        )?;
        let (assembled, timing) = stage.finish(solved, |masks| {
            assemble(&partition, &masks, AssemblyMode::Restricted).map_err(CoreError::from)
        })?;
        mask = assembled;
        stages.push(timing);
        s /= 2;
    }

    // Phase 2: staged fine-grid additive Schwarz with weighted assembly.
    let partition = Partition::new(clip_w, clip_h, config.partition)?;
    let blend = if config.blend_band == 0 {
        AssemblyMode::weighted_default(&partition)
    } else {
        AssemblyMode::Weighted {
            band: config.blend_band,
        }
    };
    for fine_stage in 0..config.schedule.fine_stages {
        let iterations = config.schedule.fine_per_stage(fine_stage);
        let label = format!("fine stage {}", fine_stage + 1);
        let stage = trace::stage(label.clone());
        let results = executor.run_recoverable(partition.tiles().len(), policy, |i| {
            let tile = partition.tile(i);
            let tile_target = restrict(&target_real, tile);
            let tile_init = restrict(&mask, tile);
            let ctx = SolveContext { bank, n, scale: 1 };
            let request = SolveRequest {
                target: &tile_target,
                initial: &tile_init,
                iterations,
                lr_scale: config.schedule.fine_lr_scale,
                gentle: false,
                warm: true,
            };
            let (outcome, elapsed) =
                trace::timed_tile(i, || Ok::<_, CoreError>(solver.solve(&ctx, &request)?))?;
            ilt_diag::observe_solve(&name, &label, i, &outcome.loss_history);
            Ok::<_, CoreError>((outcome.mask, elapsed))
        });
        // A degraded fine tile keeps its coarse-grid mask (= its crop of
        // the assembled layout) and is stitched by the same weighted blend.
        let solved = recover_stage(
            &name,
            &label,
            results,
            |k| k,
            |k| restrict(&mask, partition.tile(k)),
            &mut degraded,
        )?;
        let (assembled, timing) = stage.finish(solved, |masks| {
            assemble(&partition, &masks, blend).map_err(CoreError::from)
        })?;
        mask = assembled;
        stages.push(timing);
    }

    // Between the fine stages and the refine pass, resolve the remaining
    // gray ambiguity of the blend bands: at exactly 0.5 the binarisation
    // penalty's gradient vanishes, so gradient steps alone cannot break the
    // tie between two tiles' disagreeing proposals, while thresholding
    // commits to definite, manufacturable shapes the refine pass then
    // polishes.
    mask = mask.threshold(0.5).to_real();

    // Phase 3: multi-colour multiplicative refine.
    let coloring = multi_coloring(&partition);
    for (color, group) in coloring.groups().into_iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let label = format!("refine color {}", color + 1);
        let stage = trace::stage(label.clone());
        let results = executor.run_recoverable(group.len(), policy, |k| {
            let tile = partition.tile(group[k]);
            let tile_target = restrict(&target_real, tile);
            let tile_init = restrict(&mask, tile);
            let ctx = SolveContext { bank, n, scale: 1 };
            let request = SolveRequest {
                target: &tile_target,
                initial: &tile_init,
                iterations: config.schedule.refine_iterations,
                lr_scale: config.schedule.refine_lr_scale,
                gentle: true,
                warm: true,
            };
            let (outcome, elapsed) = trace::timed_tile(group[k], || {
                Ok::<_, CoreError>(solver.solve(&ctx, &request)?)
            })?;
            ilt_diag::observe_solve(&name, &label, group[k], &outcome.loss_history);
            Ok::<_, CoreError>((outcome.mask, elapsed))
        });
        // A degraded refine tile keeps its fine-stage mask: feeding its
        // current crop back through the weighted update is a no-op.
        let solved = recover_stage(
            &name,
            &label,
            results,
            |k| group[k],
            |k| restrict(&mask, partition.tile(group[k])),
            &mut degraded,
        )?;
        // Multiplicative replacement over the extended core: later colours
        // re-author the boundary bands consistently instead of averaging
        // into them.
        let replace = AssemblyMode::ExtendedCore {
            margin: match blend {
                AssemblyMode::Weighted { band } => band,
                _ => config.partition.overlap / 4,
            },
        };
        let ((), timing) = stage.finish(solved, |masks| {
            for (k, new_mask) in masks.iter().enumerate() {
                apply_weighted_update(&mut mask, &partition, group[k], new_mask, replace);
            }
            Ok::<_, CoreError>(())
        })?;
        stages.push(timing);
    }

    let wall_seconds = fspan.end();
    Ok(FlowResult {
        name,
        mask,
        stages,
        wall_seconds,
        degraded,
    })
}

/// Multiplicative partial update: replaces tile `index`'s weighted
/// contribution in `layout` with `new_mask`, leaving every other tile's
/// contribution untouched:
/// `M <- M + W_j (M_j_new - R_j M)`.
pub(crate) fn apply_weighted_update(
    layout: &mut RealGrid,
    partition: &Partition,
    index: usize,
    new_mask: &RealGrid,
    blend: AssemblyMode,
) {
    let tile = partition.tile(index);
    let w = weight_map(partition, index, blend);
    let t = partition.config().tile;
    for y in 0..t {
        let gy = tile.rect.y0 as usize + y;
        for x in 0..t {
            let weight = w.get(x, y);
            if weight == 0.0 {
                continue;
            }
            let gx = tile.rect.x0 as usize + x;
            let old = layout.get(gx, gy);
            let local_old = old; // R_j M at this pixel
            let updated = old + weight * (new_mask.get(x, y) - local_old);
            layout.set(gx, gy, updated);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_layout::generate_clip;
    use ilt_litho::ResistModel;
    use ilt_opt::PixelIlt;

    fn run_tiny() -> (ExperimentConfig, FlowResult, BitGrid) {
        let config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 1);
        let result = multigrid_schwarz(
            &config,
            &bank,
            &target,
            &PixelIlt::new(),
            &TileExecutor::sequential(),
        )
        .unwrap();
        (config, result, target)
    }

    #[test]
    fn runs_all_three_phases() {
        let (config, result, _) = run_tiny();
        assert_eq!(result.mask.width(), config.clip);
        let labels: Vec<&str> = result.stages.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"coarse s=2"));
        assert!(labels.contains(&"fine stage 1"));
        assert!(labels.contains(&"fine stage 2"));
        assert!(labels.iter().any(|l| l.starts_with("refine color")));
        assert!(result.name.starts_with("ours:"));
    }

    #[test]
    fn coarse_stage_has_single_tile_at_paper_geometry() {
        // With clip = 2N and s = 2, one coarse tile covers the whole clip.
        let (_, result, _) = run_tiny();
        let coarse = result
            .stages
            .iter()
            .find(|s| s.label == "coarse s=2")
            .unwrap();
        assert_eq!(coarse.tile_seconds.len(), 1);
        let fine = result
            .stages
            .iter()
            .find(|s| s.label == "fine stage 1")
            .unwrap();
        assert_eq!(fine.tile_seconds.len(), 9);
    }

    #[test]
    fn refine_covers_every_tile_once_across_colors() {
        let (_, result, _) = run_tiny();
        let refined: usize = result
            .stages
            .iter()
            .filter(|s| s.label.starts_with("refine"))
            .map(|s| s.tile_seconds.len())
            .sum();
        assert_eq!(refined, 9);
    }

    #[test]
    fn mask_stays_in_unit_range() {
        let (_, result, _) = run_tiny();
        assert!(result.mask.min() >= -1e-9);
        assert!(result.mask.max() <= 1.0 + 1e-9);
    }

    #[test]
    fn weighted_update_is_local() {
        let partition = Partition::new(
            128,
            128,
            PartitionConfig {
                tile: 64,
                overlap: 32,
            },
        )
        .unwrap();
        let mut layout = RealGrid::new(128, 128, 0.25);
        let new_mask = RealGrid::new(64, 64, 1.0);
        apply_weighted_update(
            &mut layout,
            &partition,
            0,
            &new_mask,
            AssemblyMode::Weighted { band: 8 },
        );
        // Inside tile 0's full-weight region the value is replaced.
        assert!((layout.get(5, 5) - 1.0).abs() < 1e-12);
        // Outside tile 0 nothing changed.
        assert_eq!(layout.get(100, 100), 0.25);
        // Within the blend band around the core boundary (x = 48, default
        // band 8) the update is partial.
        let mid = layout.get(46, 5);
        assert!(mid > 0.25 && mid < 1.0, "mid {mid}");
    }
}

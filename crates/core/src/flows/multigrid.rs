//! The paper's contribution: the multigrid-Schwarz flow ("Ours").
//!
//! Three phases, exactly as Section 3 describes:
//!
//! 1. **Multi-level coarse-grid ILT** (Algorithm 1): for
//!    `s = s_max, s_max/2, ..., 2`, partition the clip into `sN`-sized
//!    tiles (clamped M×N grids when the clip is not lattice-divisible),
//!    downsample each tile by `s`, solve with `s`-scaled kernels (Eq. (9)),
//!    and assemble with the hard RAS interpolation of Eq. (6) — stitching
//!    errors are deliberately left for the fine grid. The coarsest level is
//!    solved directly (a single tile whenever `clip <= s_max * N`); every
//!    finer level warm-starts from the prolongated coarse mask.
//! 2. **Staged fine-grid ILT** (modified additive Schwarz): the fine
//!    iteration budget is split into stages; after each stage the tiles are
//!    assembled with the weighted interpolation of Eq. (14) and the next
//!    stage re-crops its tiles from the assembled layout, so margins carry
//!    the neighbours' latest solutions (the boundary condition Eq. (11)).
//! 3. **Multi-colour multiplicative Schwarz refine**: tiles are processed
//!    colour by colour with a small learning rate; same-colour tiles never
//!    overlap and run in parallel, and the layout is updated between
//!    colours so later colours see earlier results.
//!
//! With `stream_tiles` (the default) the coarse and fine stages solve one
//! colour band at a time and fold each band into a
//! [`StreamingAssembler`] immediately, so peak resident tile masks are one
//! colour band instead of the whole M×N grid; `stream_tiles: false` keeps
//! the hold-everything path. Both fold in the assembler's canonical order
//! and produce bit-identical layouts.

use ilt_grid::{resample, BitGrid, RealGrid};
use ilt_litho::LithoBank;
use ilt_opt::{SolveContext, SolveRequest, TileSolver};
use ilt_telemetry as tele;
use ilt_tile::{
    assemble, multi_coloring, normalized_weight_map, restrict, AssemblyMode, Partition,
    PartitionConfig, RetryPolicy, StreamingAssembler, TileExecutor, TileFailure,
};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::flows::{trace, DegradedTile, FlowResult, StageTiming};

/// What [`TileExecutor::run_recoverable`] hands back per tile: the outer
/// layer is panic-vs-completed, the inner the solver's own result.
type RecoveredTile = Result<Result<(RealGrid, f64), CoreError>, TileFailure>;

/// Folds one recoverable stage's per-tile results into the `(mask, seconds)`
/// pairs the assembly expects. A tile whose solve failed after retries —
/// by panicking ([`TileFailure`]) or by returning a typed error — degrades
/// gracefully: it keeps `fallback` (its pre-stage, i.e. coarse-grid, mask),
/// gets flagged in diagnostics and the `flow.tiles_degraded` counter, and
/// the stage's normal weighted-smoothing assembly stitches it in. The one
/// exception is [`ilt_opt::OptError::DeadlineExceeded`]: the job's budget is
/// already blown, so the whole flow aborts with the typed error instead of
/// burning the remaining stages.
pub(crate) fn recover_stage(
    flow: &str,
    label: &str,
    results: Vec<RecoveredTile>,
    tile_of: impl Fn(usize) -> usize,
    fallback: impl Fn(usize) -> RealGrid,
    degraded: &mut Vec<DegradedTile>,
) -> Result<Vec<(RealGrid, f64)>, CoreError> {
    let mut solved = Vec::with_capacity(results.len());
    for (k, result) in results.into_iter().enumerate() {
        let error = match result {
            Ok(Ok(pair)) => {
                solved.push(pair);
                continue;
            }
            Ok(Err(e)) => {
                if e.is_deadline_exceeded() {
                    return Err(e);
                }
                e.to_string()
            }
            Err(failure) => failure.to_string(),
        };
        let tile = tile_of(k);
        tele::counter_add("flow.tiles_degraded", 1);
        ilt_diag::observe_degraded(flow, label, tile, &error);
        degraded.push(DegradedTile {
            stage: label.to_string(),
            tile,
            error,
        });
        solved.push((fallback(k), 0.0));
    }
    Ok(solved)
}

/// Bytes one solved tile mask keeps resident, for the
/// [`ilt_prof::residency`] high-water accounting around assembly.
fn grid_bytes(mask: &RealGrid) -> usize {
    mask.width() * mask.height() * std::mem::size_of::<f64>()
}

/// Solves one additive stage's tiles and assembles them into a layout.
///
/// With `stream: true`, tiles are solved one colour band at a time (in the
/// streaming assembler's canonical order) and each band is folded into the
/// output as soon as it is recovered, so at most one colour band of tile
/// masks is resident at once. With `stream: false`, every tile is solved
/// first (index order, the pre-streaming behaviour) and the batch
/// [`assemble`] folds them at the end. Both paths fold contributions in
/// the same canonical order and return bit-identical layouts.
///
/// `solve` and `fallback` both take **tile indices**; `tile_seconds` in the
/// returned timing is indexed by tile.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_banded_stage(
    flow_name: &str,
    label: String,
    partition: &Partition,
    mode: AssemblyMode,
    stream: bool,
    executor: &TileExecutor,
    policy: RetryPolicy,
    solve: impl Fn(usize) -> Result<(RealGrid, f64), CoreError> + Sync,
    fallback: impl Fn(usize) -> RealGrid,
    degraded: &mut Vec<DegradedTile>,
) -> Result<(RealGrid, StageTiming), CoreError> {
    let stage = trace::stage(label.clone());
    let total = partition.tiles().len();
    if !stream {
        let results = executor.run_recoverable(total, policy, &solve);
        let solved = recover_stage(flow_name, &label, results, |k| k, &fallback, degraded)?;
        let resident: usize = solved.iter().map(|(m, _)| grid_bytes(m)).sum();
        ilt_prof::residency::acquire(resident);
        let out = stage.finish(solved, |masks| {
            assemble(partition, &masks, mode).map_err(CoreError::from)
        });
        ilt_prof::residency::release(resident);
        return out;
    }
    let mut assembler = StreamingAssembler::new(partition, mode);
    let mut tile_seconds = vec![0.0; total];
    let mut assembly_seconds = 0.0;
    for group in multi_coloring(partition).groups() {
        if group.is_empty() {
            continue;
        }
        let results = executor.run_recoverable_over(&group, policy, &solve);
        let solved = recover_stage(
            flow_name,
            &label,
            results,
            |k| group[k],
            |k| fallback(group[k]),
            degraded,
        )?;
        let band: Vec<RealGrid> = solved
            .into_iter()
            .zip(&group)
            .map(|((mask, seconds), &i)| {
                tile_seconds[i] = seconds;
                mask
            })
            .collect();
        let band_bytes: usize = band.iter().map(grid_bytes).sum();
        ilt_prof::residency::acquire(band_bytes);
        let ((), fold_seconds) = trace::assembly_fold(|| {
            for (mask, &i) in band.iter().zip(&group) {
                assembler.push(i, mask)?;
            }
            Ok::<_, CoreError>(())
        })?;
        assembly_seconds += fold_seconds;
        ilt_prof::residency::release(band_bytes);
        // `band` drops here: the streamed path never holds more than one
        // colour band of fine tiles.
    }
    let (layout, finish_seconds) =
        trace::assembly_fold(|| assembler.finish().map_err(CoreError::from))?;
    assembly_seconds += finish_seconds;
    Ok((
        layout,
        stage.finish_streamed(tile_seconds, assembly_seconds),
    ))
}

/// Runs the multigrid-Schwarz flow.
///
/// # Errors
///
/// Returns [`CoreError`] on partitioning, solver, or assembly failure.
pub fn multigrid_schwarz(
    config: &ExperimentConfig,
    bank: &LithoBank,
    target: &BitGrid,
    solver: &dyn TileSolver,
    executor: &TileExecutor,
) -> Result<FlowResult, CoreError> {
    config.validate();
    let name = format!("ours:{}", solver.name());
    let fspan = trace::flow_span(&name);
    let n = config.partition.tile;
    let clip_w = target.width();
    let clip_h = target.height();
    let target_real = target.to_real();
    // Algorithm 1 line 4: M <- Z_t.
    let mut mask = target_real.clone();
    let mut stages = Vec::new();
    let mut degraded: Vec<DegradedTile> = Vec::new();
    let policy = RetryPolicy::from_env();

    // Phase 1: coarse grids, s = s_max .. 2 (Algorithm 1 stops addressing
    // stitching; assembly is the plain Eq. (6)).
    let mut s = config.s_max;
    while s >= 2 {
        let coarse = PartitionConfig {
            tile: s * n,
            overlap: s * config.partition.overlap,
        };
        let partition = Partition::new(clip_w, clip_h, coarse)?;
        let label = format!("coarse s={s}");
        let (assembled, timing) = run_banded_stage(
            &name,
            label.clone(),
            &partition,
            AssemblyMode::Restricted,
            config.stream_tiles,
            executor,
            policy,
            |i| {
                let tile = partition.tile(i);
                let tile_target = resample::downsample(&restrict(&target_real, tile), s);
                let tile_init = resample::downsample(&restrict(&mask, tile), s);
                let ctx = SolveContext { bank, n, scale: s };
                let (outcome, elapsed) = trace::timed_tile(i, || {
                    Ok::<_, CoreError>(solver.solve(
                        &ctx,
                        &SolveRequest::new(
                            &tile_target,
                            &tile_init,
                            config.schedule.coarse_iterations,
                        ),
                    )?)
                })?;
                ilt_diag::observe_solve(&name, &label, i, &outcome.loss_history);
                // Promote the coarse solution back to the fine grid with a
                // band-limited interpolation: bilinear alone leaves blocky
                // staircases that the fine stages (optically blind to them)
                // would never remove.
                let up = resample::upsample_bilinear(&outcome.mask, s);
                let filter = ilt_grid::GaussianFilter::new(0.5 * s as f64);
                Ok::<_, CoreError>((filter.apply(&up), elapsed))
            },
            |i| restrict(&mask, partition.tile(i)),
            &mut degraded,
        )?;
        mask = assembled;
        stages.push(timing);
        s /= 2;
    }

    // Phase 2: staged fine-grid additive Schwarz with weighted assembly.
    let partition = Partition::new(clip_w, clip_h, config.partition)?;
    let blend = if config.blend_band == 0 {
        AssemblyMode::weighted_default(&partition)
    } else {
        AssemblyMode::Weighted {
            band: config.blend_band,
        }
    };
    for fine_stage in 0..config.schedule.fine_stages {
        let iterations = config.schedule.fine_per_stage(fine_stage);
        let label = format!("fine stage {}", fine_stage + 1);
        // A degraded fine tile keeps its coarse-grid mask (= its crop of
        // the assembled layout) and is stitched by the same weighted blend.
        let (assembled, timing) = run_banded_stage(
            &name,
            label.clone(),
            &partition,
            blend,
            config.stream_tiles,
            executor,
            policy,
            |i| {
                let tile = partition.tile(i);
                let tile_target = restrict(&target_real, tile);
                let tile_init = restrict(&mask, tile);
                let ctx = SolveContext { bank, n, scale: 1 };
                let request = SolveRequest {
                    target: &tile_target,
                    initial: &tile_init,
                    iterations,
                    lr_scale: config.schedule.fine_lr_scale,
                    gentle: false,
                    warm: true,
                };
                let (outcome, elapsed) =
                    trace::timed_tile(i, || Ok::<_, CoreError>(solver.solve(&ctx, &request)?))?;
                ilt_diag::observe_solve(&name, &label, i, &outcome.loss_history);
                Ok::<_, CoreError>((outcome.mask, elapsed))
            },
            |i| restrict(&mask, partition.tile(i)),
            &mut degraded,
        )?;
        mask = assembled;
        stages.push(timing);
    }

    // Between the fine stages and the refine pass, resolve the remaining
    // gray ambiguity of the blend bands: at exactly 0.5 the binarisation
    // penalty's gradient vanishes, so gradient steps alone cannot break the
    // tie between two tiles' disagreeing proposals, while thresholding
    // commits to definite, manufacturable shapes the refine pass then
    // polishes.
    mask = mask.threshold(0.5).to_real();

    // Phase 3: multi-colour multiplicative refine.
    let coloring = multi_coloring(&partition);
    for (color, group) in coloring.groups().into_iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let label = format!("refine color {}", color + 1);
        let stage = trace::stage(label.clone());
        let results = executor.run_recoverable(group.len(), policy, |k| {
            let tile = partition.tile(group[k]);
            let tile_target = restrict(&target_real, tile);
            let tile_init = restrict(&mask, tile);
            let ctx = SolveContext { bank, n, scale: 1 };
            let request = SolveRequest {
                target: &tile_target,
                initial: &tile_init,
                iterations: config.schedule.refine_iterations,
                lr_scale: config.schedule.refine_lr_scale,
                gentle: true,
                warm: true,
            };
            let (outcome, elapsed) = trace::timed_tile(group[k], || {
                Ok::<_, CoreError>(solver.solve(&ctx, &request)?)
            })?;
            ilt_diag::observe_solve(&name, &label, group[k], &outcome.loss_history);
            Ok::<_, CoreError>((outcome.mask, elapsed))
        });
        // A degraded refine tile keeps its fine-stage mask: feeding its
        // current crop back through the weighted update is a no-op.
        let solved = recover_stage(
            &name,
            &label,
            results,
            |k| group[k],
            |k| restrict(&mask, partition.tile(group[k])),
            &mut degraded,
        )?;
        // Multiplicative replacement over the extended core: later colours
        // re-author the boundary bands consistently instead of averaging
        // into them.
        let replace = AssemblyMode::ExtendedCore {
            margin: match blend {
                AssemblyMode::Weighted { band } => band,
                _ => config.partition.overlap / 4,
            },
        };
        let ((), timing) = stage.finish(solved, |masks| {
            for (k, new_mask) in masks.iter().enumerate() {
                apply_weighted_update(&mut mask, &partition, group[k], new_mask, replace);
            }
            Ok::<_, CoreError>(())
        })?;
        stages.push(timing);
    }

    let wall_seconds = fspan.end();
    Ok(FlowResult {
        name,
        mask,
        stages,
        wall_seconds,
        degraded,
    })
}

/// Multiplicative partial update: replaces tile `index`'s weighted
/// contribution in `layout` with `new_mask`, leaving every other tile's
/// contribution untouched:
/// `M <- M + W_j (M_j_new - R_j M)`.
pub(crate) fn apply_weighted_update(
    layout: &mut RealGrid,
    partition: &Partition,
    index: usize,
    new_mask: &RealGrid,
    blend: AssemblyMode,
) {
    let tile = partition.tile(index);
    let w = normalized_weight_map(partition, index, blend);
    let t = partition.config().tile;
    for y in 0..t {
        let gy = tile.rect.y0 as usize + y;
        for x in 0..t {
            let weight = w.get(x, y);
            if weight == 0.0 {
                continue;
            }
            let gx = tile.rect.x0 as usize + x;
            let old = layout.get(gx, gy);
            let local_old = old; // R_j M at this pixel
            let updated = old + weight * (new_mask.get(x, y) - local_old);
            layout.set(gx, gy, updated);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_layout::generate_clip;
    use ilt_litho::ResistModel;
    use ilt_opt::PixelIlt;

    fn run_tiny() -> (ExperimentConfig, FlowResult, BitGrid) {
        let config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 1);
        let result = multigrid_schwarz(
            &config,
            &bank,
            &target,
            &PixelIlt::new(),
            &TileExecutor::sequential(),
        )
        .unwrap();
        (config, result, target)
    }

    #[test]
    fn runs_all_three_phases() {
        let (config, result, _) = run_tiny();
        assert_eq!(result.mask.width(), config.clip);
        let labels: Vec<&str> = result.stages.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"coarse s=2"));
        assert!(labels.contains(&"fine stage 1"));
        assert!(labels.contains(&"fine stage 2"));
        assert!(labels.iter().any(|l| l.starts_with("refine color")));
        assert!(result.name.starts_with("ours:"));
    }

    #[test]
    fn coarse_stage_has_single_tile_at_paper_geometry() {
        // With clip = 2N and s = 2, one coarse tile covers the whole clip.
        let (_, result, _) = run_tiny();
        let coarse = result
            .stages
            .iter()
            .find(|s| s.label == "coarse s=2")
            .unwrap();
        assert_eq!(coarse.tile_seconds.len(), 1);
        let fine = result
            .stages
            .iter()
            .find(|s| s.label == "fine stage 1")
            .unwrap();
        assert_eq!(fine.tile_seconds.len(), 9);
    }

    #[test]
    fn refine_covers_every_tile_once_across_colors() {
        let (_, result, _) = run_tiny();
        let refined: usize = result
            .stages
            .iter()
            .filter(|s| s.label.starts_with("refine"))
            .map(|s| s.tile_seconds.len())
            .sum();
        assert_eq!(refined, 9);
    }

    #[test]
    fn mask_stays_in_unit_range() {
        let (_, result, _) = run_tiny();
        assert!(result.mask.min() >= -1e-9);
        assert!(result.mask.max() <= 1.0 + 1e-9);
    }

    #[test]
    fn streamed_flow_is_bit_identical_to_held() {
        let mut streamed = ExperimentConfig::test_tiny();
        streamed.stream_tiles = true;
        let mut held = streamed.clone();
        held.stream_tiles = false;
        let bank = LithoBank::new(streamed.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&streamed.generator, 7);
        let executor = TileExecutor::sequential();
        let solver = PixelIlt::new();
        let a = multigrid_schwarz(&streamed, &bank, &target, &solver, &executor).unwrap();
        let b = multigrid_schwarz(&held, &bank, &target, &solver, &executor).unwrap();
        assert_eq!(
            a.mask.as_slice(),
            b.mask.as_slice(),
            "streamed and hold-everything flows diverged"
        );
        // Same stages, same per-tile accounting shape.
        assert_eq!(a.stages.len(), b.stages.len());
        for (sa, sb) in a.stages.iter().zip(&b.stages) {
            assert_eq!(sa.label, sb.label);
            assert_eq!(sa.tile_seconds.len(), sb.tile_seconds.len());
        }
    }

    #[test]
    fn deeper_hierarchy_runs_every_coarse_level() {
        // s_max = 4 at a 256-pixel clip: levels s = 4 (direct coarsest
        // solve, a single 256-wide tile) and s = 2 (warm-started from the
        // prolongated s = 4 mask), then the fine stages.
        let mut config = ExperimentConfig::test_tiny();
        config.clip = 256;
        config.generator.size = 256;
        config.s_max = 4;
        config.validate();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 3);
        let result = multigrid_schwarz(
            &config,
            &bank,
            &target,
            &PixelIlt::new(),
            &TileExecutor::sequential(),
        )
        .unwrap();
        let labels: Vec<&str> = result.stages.iter().map(|s| s.label.as_str()).collect();
        let s4 = labels.iter().position(|l| *l == "coarse s=4").unwrap();
        let s2 = labels.iter().position(|l| *l == "coarse s=2").unwrap();
        assert!(s4 < s2, "coarsest level must run first: {labels:?}");
        // The coarsest level covers the clip with one tile (256 = 4 * 64).
        assert_eq!(result.stages[s4].tile_seconds.len(), 1);
        // s = 2 tiles are 128 wide with 32 overlap on a 256 clip: clamped
        // geometry still yields a proper multi-tile level.
        assert!(result.stages[s2].tile_seconds.len() > 1);
        assert_eq!(result.mask.width(), 256);
        assert!(result.mask.min() >= -1e-9 && result.mask.max() <= 1.0 + 1e-9);
    }

    #[test]
    fn weighted_update_is_local() {
        let partition = Partition::new(
            128,
            128,
            PartitionConfig {
                tile: 64,
                overlap: 32,
            },
        )
        .unwrap();
        let mut layout = RealGrid::new(128, 128, 0.25);
        let new_mask = RealGrid::new(64, 64, 1.0);
        apply_weighted_update(
            &mut layout,
            &partition,
            0,
            &new_mask,
            AssemblyMode::Weighted { band: 8 },
        );
        // Inside tile 0's full-weight region the value is replaced.
        assert!((layout.get(5, 5) - 1.0).abs() < 1e-12);
        // Outside tile 0 nothing changed.
        assert_eq!(layout.get(100, 100), 0.25);
        // Within the blend band around the core boundary (x = 48, default
        // band 8) the update is partial.
        let mid = layout.get(46, 5);
        assert!(mid > 0.25 && mid < 1.0, "mid {mid}");
    }
}

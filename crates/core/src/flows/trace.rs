//! Shared telemetry plumbing for the flows.
//!
//! Every flow opens a `flow` span, wraps each stage in a `stage` span,
//! times each tile solve in a `tile` span, and derives its public
//! [`StageTiming`] from the *same* duration measurements the trace
//! records — so the report and the trace cannot disagree. The helpers
//! also fix a long-standing attribution bug: result unpacking used to be
//! billed to `assembly_seconds` because each flow started its assembly
//! clock before unzipping the solver results. [`StageGuard::finish`]
//! unpacks first and only then starts the `assembly` span.

use ilt_telemetry as tele;

use crate::flows::StageTiming;

/// Opens the flow-level span, tagged with the flow's report name. Ending
/// the guard ([`ilt_telemetry::SpanGuard::end`]) yields the flow wall
/// time, which doubles as `FlowResult::wall_seconds`.
pub(crate) fn flow_span(name: &str) -> tele::SpanGuard {
    let mut span = tele::span(tele::names::FLOW);
    span.add_field("name", name);
    span
}

/// An open stage: a `stage` span plus the label it will report under.
/// Keep the guard alive while the stage's tiles run so their spans nest
/// under it, then call [`StageGuard::finish`] with the solved tiles.
pub(crate) struct StageGuard {
    label: String,
    span: tele::SpanGuard,
    /// Profiling stage tag derived from the label: while the guard is
    /// alive, allocations on this thread (and on executor workers, which
    /// inherit the tag) bill to the matching `ilt-prof` stage bucket.
    stage_tag: ilt_prof::StageScope,
}

/// Opens a `stage` span labelled `label`.
pub(crate) fn stage(label: String) -> StageGuard {
    let mut span = tele::span(tele::names::STAGE);
    span.add_field("label", label.clone());
    let stage_tag = ilt_prof::stage_scope(ilt_prof::Stage::from_label(&label));
    StageGuard {
        label,
        span,
        stage_tag,
    }
}

impl StageGuard {
    /// Ends the stage: unpacks the per-tile `(payload, seconds)` pairs
    /// produced by [`timed_tile`], runs `apply` — the sequential
    /// assembly — inside an `assembly` span, and reports that span's own
    /// duration as the stage's `assembly_seconds`. Unpacking happens
    /// *before* the assembly clock starts, so per-tile bookkeeping is
    /// never billed to assembly.
    pub(crate) fn finish<T, R, E>(
        self,
        solved: Vec<(T, f64)>,
        apply: impl FnOnce(Vec<T>) -> Result<R, E>,
    ) -> Result<(R, StageTiming), E> {
        let StageGuard {
            label,
            span,
            stage_tag,
        } = self;
        drop(stage_tag);
        let (payloads, times): (Vec<_>, Vec<_>) = solved.into_iter().unzip();
        let _assembly_tag = ilt_prof::stage_scope(ilt_prof::Stage::Assembly);
        let asm = tele::span(tele::names::ASSEMBLY);
        let out = apply(payloads)?;
        let assembly_seconds = asm.end();
        drop(span);
        Ok((
            out,
            StageTiming {
                label,
                tile_seconds: times,
                assembly_seconds,
            },
        ))
    }
}

impl StageGuard {
    /// Ends a stage whose assembly happened *incrementally* (one colour
    /// band at a time, via [`assembly_fold`]) while the guard was alive:
    /// the caller supplies the per-tile durations it recorded and the sum
    /// of the fold spans' durations. Counterpart of [`StageGuard::finish`]
    /// for streamed stages, where solving and assembly interleave instead
    /// of forming two sequential blocks.
    pub(crate) fn finish_streamed(
        self,
        tile_seconds: Vec<f64>,
        assembly_seconds: f64,
    ) -> StageTiming {
        let StageGuard {
            label,
            span,
            stage_tag,
        } = self;
        drop(stage_tag);
        drop(span);
        StageTiming {
            label,
            tile_seconds,
            assembly_seconds,
        }
    }
}

/// Runs one incremental assembly fold (a colour band pushed into a
/// streaming assembler, or its final validation) inside an `assembly`
/// span billed to the assembly profiling stage, and returns the body's
/// result with the span's duration so streamed stages report the same
/// `assembly_seconds` the trace records.
pub(crate) fn assembly_fold<R, E>(body: impl FnOnce() -> Result<R, E>) -> Result<(R, f64), E> {
    let _assembly_tag = ilt_prof::stage_scope(ilt_prof::Stage::Assembly);
    let span = tele::span(tele::names::ASSEMBLY);
    let out = body()?;
    Ok((out, span.end()))
}

/// Runs one tile's compute inside a `tile` span tagged with its index and
/// returns the payload together with the span's own duration, so the
/// reported `tile_seconds` equal the traced span exactly.
pub(crate) fn timed_tile<T, E>(
    index: usize,
    body: impl FnOnce() -> Result<T, E>,
) -> Result<(T, f64), E> {
    let mut span = tele::span(tele::names::TILE);
    span.add_field("tile", index);
    let out = body()?;
    Ok((out, span.end()))
}

//! The traditional divide-and-conquer flow: optimise every tile
//! independently, then assemble the cores with the hard RAS interpolation
//! of Eq. (6). No communication ever happens between tiles — this is the
//! flow whose boundary mismatches motivate the paper.
//!
//! With `stream_tiles` the tiles are solved one colour band at a time and
//! folded straight into a [`StreamingAssembler`], so peak resident masks
//! are one band instead of the whole M×N grid; the maths is unchanged
//! (restricted assembly writes disjoint cores, so fold order is moot, but
//! the streamed and held paths still share one canonical order).

use ilt_grid::{BitGrid, RealGrid};
use ilt_litho::LithoBank;
use ilt_opt::{SolveContext, SolveRequest, TileSolver};
use ilt_tile::{
    assemble, multi_coloring, restrict, AssemblyMode, Partition, StreamingAssembler, TileExecutor,
};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::flows::{trace, FlowResult};

/// Runs the divide-and-conquer flow with the given single-tile solver.
///
/// # Errors
///
/// Returns [`CoreError`] on partitioning, solver, or assembly failure.
pub fn divide_and_conquer(
    config: &ExperimentConfig,
    bank: &LithoBank,
    target: &BitGrid,
    solver: &dyn TileSolver,
    executor: &TileExecutor,
) -> Result<FlowResult, CoreError> {
    config.validate();
    let name = format!("dnc:{}", solver.name());
    let fspan = trace::flow_span(&name);
    let partition = Partition::new(target.width(), target.height(), config.partition)?;
    let target_real = target.to_real();
    let iterations = config.schedule.baseline_iterations;

    let solve = |i: usize| {
        let tile = partition.tile(i);
        let tile_target = restrict(&target_real, tile);
        let ctx = SolveContext {
            bank,
            n: config.partition.tile,
            scale: 1,
        };
        let (outcome, elapsed) = trace::timed_tile(i, || {
            Ok::<_, CoreError>(solver.solve(
                &ctx,
                &SolveRequest::new(&tile_target, &tile_target, iterations),
            )?)
        })?;
        ilt_diag::observe_solve(&name, "dnc", i, &outcome.loss_history);
        Ok::<_, CoreError>((outcome.mask, elapsed))
    };

    let stage = trace::stage("dnc".to_string());
    let (mask, timing) = if config.stream_tiles {
        let total = partition.tiles().len();
        let mut assembler = StreamingAssembler::new(&partition, AssemblyMode::Restricted);
        let mut tile_seconds = vec![0.0; total];
        let mut assembly_seconds = 0.0;
        for group in multi_coloring(&partition).groups() {
            if group.is_empty() {
                continue;
            }
            let band: Vec<RealGrid> = executor
                .run_fallible_over(&group, solve)?
                .into_iter()
                .zip(&group)
                .map(|((mask, seconds), &i)| {
                    tile_seconds[i] = seconds;
                    mask
                })
                .collect();
            let ((), fold_seconds) = trace::assembly_fold(|| {
                for (mask, &i) in band.iter().zip(&group) {
                    assembler.push(i, mask)?;
                }
                Ok::<_, CoreError>(())
            })?;
            assembly_seconds += fold_seconds;
        }
        let (mask, finish_seconds) =
            trace::assembly_fold(|| assembler.finish().map_err(CoreError::from))?;
        assembly_seconds += finish_seconds;
        (mask, stage.finish_streamed(tile_seconds, assembly_seconds))
    } else {
        let solved = executor.run_fallible(partition.tiles().len(), solve)?;
        stage.finish(solved, |masks| {
            assemble(&partition, &masks, AssemblyMode::Restricted).map_err(CoreError::from)
        })?
    };

    let wall_seconds = fspan.end();
    Ok(FlowResult {
        name,
        mask,
        stages: vec![timing],
        wall_seconds,
        degraded: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_layout::generate_clip;
    use ilt_litho::{LithoBank, ResistModel};
    use ilt_opt::PixelIlt;

    #[test]
    fn produces_full_clip_mask_with_timings() {
        let config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 1);
        let result = divide_and_conquer(
            &config,
            &bank,
            &target,
            &PixelIlt::new(),
            &TileExecutor::sequential(),
        )
        .unwrap();
        assert_eq!(result.mask.width(), config.clip);
        assert_eq!(result.name, "dnc:multi-level-ilt");
        assert_eq!(result.stages.len(), 1);
        assert_eq!(result.stages[0].tile_seconds.len(), 9);
        assert!(result.wall_seconds > 0.0);
        assert!(result.mask.min() >= 0.0 && result.mask.max() <= 1.0);
    }

    #[test]
    fn parallel_executor_matches_sequential() {
        let config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 2);
        let solver = PixelIlt::new();
        let seq = divide_and_conquer(
            &config,
            &bank,
            &target,
            &solver,
            &TileExecutor::sequential(),
        )
        .unwrap();
        let par =
            divide_and_conquer(&config, &bank, &target, &solver, &TileExecutor::new(3)).unwrap();
        // Identical math regardless of worker count.
        assert_eq!(seq.mask, par.mask);
    }

    #[test]
    fn streamed_matches_hold_everything() {
        let mut config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 4);
        let solver = PixelIlt::new();
        let executor = TileExecutor::sequential();
        config.stream_tiles = true;
        let streamed = divide_and_conquer(&config, &bank, &target, &solver, &executor).unwrap();
        config.stream_tiles = false;
        let held = divide_and_conquer(&config, &bank, &target, &solver, &executor).unwrap();
        assert_eq!(streamed.mask, held.mask);
        assert_eq!(streamed.stages[0].tile_seconds.len(), 9);
    }
}

//! The "Full-chip ILT" reference flow: one un-partitioned solve over the
//! entire clip, simulated with the large-area extension of Eq. (3). The
//! paper treats this as the quality target that no single real GPU could
//! actually hold at production scale.

use ilt_grid::BitGrid;
use ilt_litho::LithoBank;
use ilt_opt::{SolveContext, SolveRequest, TileSolver};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::flows::{trace, FlowResult};

/// Runs the full-chip flow.
///
/// # Errors
///
/// Returns [`CoreError`] on solver failure (including the case where the
/// scaled kernel support cannot fit the clip grid).
pub fn full_chip(
    config: &ExperimentConfig,
    bank: &LithoBank,
    target: &BitGrid,
    solver: &dyn TileSolver,
) -> Result<FlowResult, CoreError> {
    config.validate();
    let name = format!("full-chip:{}", solver.name());
    let fspan = trace::flow_span(&name);
    let target_real = target.to_real();
    let ctx = SolveContext {
        bank,
        n: config.clip,
        scale: config.inspection_scale(),
    };
    let stage = trace::stage("full-chip".to_string());
    let (outcome, solve_seconds) = trace::timed_tile(0, || {
        Ok::<_, CoreError>(solver.solve(
            &ctx,
            &SolveRequest::new(
                &target_real,
                &target_real,
                config.schedule.baseline_iterations,
            ),
        )?)
    })?;
    ilt_diag::observe_solve(&name, "full-chip", 0, &outcome.loss_history);
    // No partition means no assembly work: the single "tile" is the mask.
    let (mask, timing) = stage.finish(vec![(outcome.mask, solve_seconds)], |mut masks| {
        Ok::<_, CoreError>(masks.pop().expect("exactly one full-chip tile"))
    })?;

    let wall_seconds = fspan.end();
    Ok(FlowResult {
        name,
        mask,
        stages: vec![timing],
        wall_seconds,
        degraded: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_layout::generate_clip;
    use ilt_litho::{LithoBank, ResistModel};
    use ilt_opt::PixelIlt;

    #[test]
    fn optimises_whole_clip_without_partitioning() {
        let config = ExperimentConfig::test_tiny();
        let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
        let target = generate_clip(&config.generator, 1);
        let result = full_chip(&config, &bank, &target, &PixelIlt::new()).unwrap();
        assert_eq!(result.mask.width(), config.clip);
        assert_eq!(result.stages.len(), 1);
        assert_eq!(result.stages[0].tile_seconds.len(), 1);
        assert!(result.name.starts_with("full-chip:"));
    }
}

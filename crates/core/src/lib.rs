//! # ilt-core
//!
//! The paper's contribution — the **multigrid-Schwarz full-chip ILT
//! framework** — together with every flow its evaluation compares against:
//!
//! * [`flows::multigrid_schwarz`] — coarse-grid ILT (Algorithm 1) →
//!   staged fine-grid modified-additive-Schwarz ILT with weighted-smoothing
//!   assembly (Eq. (10)–(14)) → multi-colour multiplicative-Schwarz refine
//!   (Section 3.4);
//! * [`flows::divide_and_conquer`] — the traditional baseline: independent
//!   tiles, hard RAS assembly (Eq. (6));
//! * [`flows::full_chip`] — the un-partitioned reference solve (Eq. (3));
//! * [`flows::stitch_and_heal`] — the heal-the-boundary baseline \[6\],
//!   including the new seams it creates (Fig. 7);
//! * [`experiment`] — the Table 1 engine (run, inspect, average, ratio);
//! * [`speedup`] — the measured-runtime scheduling model for the 4-GPU
//!   speedup experiment;
//! * [`incremental`] — the ECO workflow: dirty-tile propagation over the
//!   Schwarz overlap structure and warm-started re-solve of only the dirty
//!   set, reusing clean tiles verbatim from the `ilt-store` mask store.
//!
//! # Examples
//!
//! Running the paper's method on one synthetic clip:
//!
//! ```no_run
//! use ilt_core::{flows, ExperimentConfig};
//! use ilt_layout::generate_clip;
//! use ilt_litho::{LithoBank, ResistModel};
//! use ilt_opt::PixelIlt;
//! use ilt_tile::TileExecutor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ExperimentConfig::paper_default();
//! let bank = LithoBank::new(config.optics, ResistModel::m1_default())?;
//! let target = generate_clip(&config.generator, 1);
//! let result = flows::multigrid_schwarz(
//!     &config,
//!     &bank,
//!     &target,
//!     &PixelIlt::new(),
//!     &TileExecutor::sequential(),
//! )?;
//! println!("optimised {} in {:.1}s", result.name, result.tat());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
pub mod experiment;
pub mod flows;
pub mod incremental;
mod session;
pub mod speedup;

pub use config::{ExperimentConfig, Schedule};
pub use error::CoreError;
pub use incremental::{diff_layouts, IncrementalOutcome, LayoutDiff};
pub use session::Session;

//! Graceful-degradation behaviour of the multigrid-Schwarz flow under
//! injected tile faults.
//!
//! These live in their own integration binary (one process) because the
//! fault registry is process-global: arming `tile.panic` here must not be
//! observable by the crate's other test binaries. Within this binary the
//! tests serialize on a local lock.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use ilt_core::flows::multigrid_schwarz;
use ilt_core::ExperimentConfig;
use ilt_fault::{points, FaultSpec};
use ilt_layout::generate_clip;
use ilt_litho::{LithoBank, ResistModel};
use ilt_opt::PixelIlt;
use ilt_tile::TileExecutor;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn run_tiny() -> Result<ilt_core::flows::FlowResult, ilt_core::CoreError> {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let target = generate_clip(&config.generator, 1);
    multigrid_schwarz(
        &config,
        &bank,
        &target,
        &PixelIlt::new(),
        &TileExecutor::sequential(),
    )
}

#[test]
fn one_fine_tile_failure_degrades_to_the_coarse_mask() {
    let _g = lock();
    ilt_fault::quiet_injected_panics();
    // Skip the single coarse tile's attempt, then fire on both retry
    // attempts of the first fine-stage tile (default policy = 2 attempts).
    ilt_fault::configure(vec![FaultSpec {
        limit: Some(2),
        skip: 1,
        ..FaultSpec::always(points::TILE_PANIC, 1913)
    }]);
    let result = run_tiny();
    ilt_fault::clear();
    let result = result.expect("flow must complete despite the failed tile");
    assert_eq!(result.degraded.len(), 1, "exactly one degraded tile");
    let d = &result.degraded[0];
    assert_eq!(d.stage, "fine stage 1");
    assert_eq!(d.tile, 0);
    assert!(
        d.error.contains("injected fault"),
        "error should carry the panic message, got {:?}",
        d.error
    );
    // The assembled mask is still a full, valid layout.
    let config = ExperimentConfig::test_tiny();
    assert_eq!(result.mask.width(), config.clip);
    assert_eq!(result.mask.height(), config.clip);
    assert!(result.mask.min() >= -1e-9 && result.mask.max() <= 1.0 + 1e-9);
    // Every stage still reports a slot per tile (the degraded one at 0 s).
    let fine = result
        .stages
        .iter()
        .find(|s| s.label == "fine stage 1")
        .unwrap();
    assert_eq!(fine.tile_seconds.len(), 9);
    assert_eq!(fine.tile_seconds[0], 0.0);
}

#[test]
fn fault_pattern_is_deterministic_for_a_fixed_seed() {
    let _g = lock();
    ilt_fault::quiet_injected_panics();
    let run_with_seed = |seed: u64| {
        ilt_fault::configure(vec![FaultSpec {
            limit: Some(2),
            skip: 1,
            ..FaultSpec::always(points::TILE_PANIC, seed)
        }]);
        let result = run_tiny().expect("flow completes");
        ilt_fault::clear();
        (
            result
                .degraded
                .iter()
                .map(|d| (d.stage.clone(), d.tile))
                .collect::<Vec<_>>(),
            result.mask,
        )
    };
    let (degraded_a, mask_a) = run_with_seed(7);
    let (degraded_b, mask_b) = run_with_seed(7);
    assert_eq!(degraded_a, degraded_b);
    assert_eq!(mask_a.as_slice(), mask_b.as_slice(), "bit-identical masks");
}

#[test]
fn slow_tiles_do_not_change_the_result() {
    let _g = lock();
    let clean = run_tiny().expect("clean run");
    ilt_fault::configure(vec![FaultSpec {
        rate: 0.25,
        ..FaultSpec::always(points::TILE_SLOW, 11)
    }]);
    let slowed = run_tiny().expect("slowed run");
    ilt_fault::clear();
    assert!(slowed.degraded.is_empty());
    assert_eq!(
        clean.mask.as_slice(),
        slowed.mask.as_slice(),
        "tile.slow must be numerically inert"
    );
}

#[test]
fn expired_deadline_aborts_the_flow_with_a_typed_error() {
    let _g = lock();
    let _scope = ilt_fault::deadline::scope(Some(Instant::now() - Duration::from_millis(1)));
    let err = run_tiny().expect_err("expired deadline must abort");
    assert!(err.is_deadline_exceeded(), "got {err:?}");
    assert!(err.to_string().contains("deadline exceeded"));
}

#[test]
fn all_tiles_failing_still_yields_a_complete_mask() {
    let _g = lock();
    ilt_fault::quiet_injected_panics();
    ilt_fault::configure(vec![FaultSpec::always(points::TILE_PANIC, 3)]);
    let result = run_tiny();
    ilt_fault::clear();
    let result = result.expect("total failure still degrades, never aborts");
    let config = ExperimentConfig::test_tiny();
    // 1 coarse + 2 x 9 fine + 9 refine tiles, all degraded.
    assert_eq!(result.degraded.len(), 1 + 9 + 9 + 9);
    assert_eq!(result.mask.width(), config.clip);
    assert!(result.mask.min() >= -1e-9 && result.mask.max() <= 1.0 + 1e-9);
}

//! Convergence flatness across tile counts (the paper-scale claim).
//!
//! The multigrid-Schwarz quality argument is that partitioning is free:
//! solving a region as part of a bigger chip (more tiles, more seams)
//! must not cost L2 loss compared to solving it as a small chip. The
//! comparison needs identical pattern content on both sides — the
//! synthetic generator's statistics drift with clip size (track
//! truncation, border fraction), so comparing losses of independently
//! generated chips mostly measures the generator, not the flow. Instead
//! the 2x2 chip's target IS a crop of the 4x4 chip's target, both masks
//! are measured through the same tiled print operator on the shared
//! window's interior, and the hierarchy depth is pinned equal (`s_max`
//! 1; a 2-level hierarchy cannot fit the 2x2 clip, and an unmatched
//! depth is a real quality difference, as the companion test shows).

use ilt_core::experiment::{run_method, tiled_print_loss_in, Method};
use ilt_core::ExperimentConfig;
use ilt_grid::{BitGrid, Rect};
use ilt_layout::generate_clip;
use ilt_litho::{LithoBank, ResistModel};
use ilt_tile::TileExecutor;

/// The 4x4 chip at the tiny geometry: tile 64, stride 32, clip 160.
fn chip_config(clip: usize, s_max: usize) -> ExperimentConfig {
    let mut config = ExperimentConfig::test_tiny();
    config.clip = clip;
    config.generator.size = clip;
    config.s_max = s_max;
    config.validate();
    config
}

/// The 96-pixel window of the 160-pixel chip the 2x2 chip solves,
/// anchored on a tile origin so both partitions see comparable seams.
const WINDOW: Rect = Rect {
    x0: 32,
    y0: 32,
    x1: 128,
    y1: 128,
};

/// Loss is counted on the window's interior: the outer 16-pixel ring of
/// the small chip prints against missing off-chip context, a
/// perimeter effect that would otherwise swamp the seam signal.
const INTERIOR: Rect = Rect {
    x0: 16,
    y0: 16,
    x1: 80,
    y1: 80,
};

/// Shared-window losses of the small (2x2) and big (4x4) chips, summed
/// over `seeds` layouts. Both masks are measured with the small chip's
/// partition and print operator so the measurement cancels exactly.
fn window_losses(bank: &LithoBank, big: &ExperimentConfig, seeds: u64) -> (usize, usize) {
    let small = chip_config(96, 1);
    let executor = TileExecutor::sequential();
    let mut small_loss = 0;
    let mut big_loss = 0;
    for seed in 1..=seeds {
        let target_big: BitGrid = generate_clip(&big.generator, seed);
        let target_small = target_big.crop(WINDOW);
        let mask_big = run_method(Method::Ours, big, bank, &target_big, &executor)
            .unwrap()
            .mask;
        let mask_small = run_method(Method::Ours, &small, bank, &target_small, &executor)
            .unwrap()
            .mask;
        small_loss +=
            tiled_print_loss_in(&small, bank, &target_small, &mask_small, INTERIOR).unwrap();
        big_loss += tiled_print_loss_in(
            &small,
            bank,
            &target_small,
            &mask_big.crop(WINDOW),
            INTERIOR,
        )
        .unwrap();
    }
    (small_loss, big_loss)
}

#[test]
fn loss_is_flat_from_2x2_to_4x4_tiles() {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let big = chip_config(160, 1);
    let (small_loss, big_loss) = window_losses(&bank, &big, 8);
    assert!(small_loss > 0, "a zero interior loss is implausible");
    let rel = (big_loss as f64 - small_loss as f64).abs() / small_loss as f64;
    assert!(
        rel <= 0.05,
        "interior loss must stay flat as the chip grows 2x2 -> 4x4: \
         small {small_loss}, big {big_loss}, rel diff {rel:.4}"
    );
}

#[test]
fn deeper_hierarchy_does_not_cost_loss() {
    // The 4x4 chip admits a 2-level hierarchy (2 * 64 <= 160). Warm-starting
    // the fine grid from the prolongated coarse solve must not regress the
    // shared-window loss beyond the flatness budget (in practice it helps).
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let (_, flat) = window_losses(&bank, &chip_config(160, 1), 8);
    let (_, deep) = window_losses(&bank, &chip_config(160, 2), 8);
    assert!(
        (deep as f64) <= 1.05 * flat as f64,
        "2-level hierarchy regressed the 4x4 window loss: {deep} vs {flat}"
    );
}

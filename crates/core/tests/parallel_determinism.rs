//! The executor changes scheduling only: every flow must produce a
//! bit-identical mask under any worker count, and executor failures must
//! stay contained — a panicking job propagates to the caller without
//! deadlocking the pool or poisoning later `run` calls.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use ilt_core::flows::{divide_and_conquer, multigrid_schwarz, overlap_select, stitch_and_heal};
use ilt_core::ExperimentConfig;
use ilt_layout::generate_clip;
use ilt_litho::{LithoBank, ResistModel};
use ilt_opt::PixelIlt;
use ilt_tile::TileExecutor;

/// Silences the default panic-hook backtrace for the deliberate test
/// panics below (marker `boom-tile`) while leaving every other panic loud.
fn quiet_marker_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let deliberate = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("boom-tile"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("boom-tile"));
            if !deliberate {
                default_hook(info);
            }
        }));
    });
}

fn setup() -> (ExperimentConfig, LithoBank, ilt_grid::BitGrid) {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let target = generate_clip(&config.generator, 7);
    (config, bank, target)
}

#[test]
fn multigrid_parallel_matches_sequential() {
    let (config, bank, target) = setup();
    let solver = PixelIlt::new();
    let seq = multigrid_schwarz(
        &config,
        &bank,
        &target,
        &solver,
        &TileExecutor::sequential(),
    )
    .unwrap();
    let par = multigrid_schwarz(&config, &bank, &target, &solver, &TileExecutor::new(4)).unwrap();
    assert_eq!(seq.mask, par.mask);
    let seq_labels: Vec<_> = seq.stages.iter().map(|s| s.label.clone()).collect();
    let par_labels: Vec<_> = par.stages.iter().map(|s| s.label.clone()).collect();
    assert_eq!(seq_labels, par_labels);
}

#[test]
fn overlap_select_parallel_matches_sequential() {
    let (config, bank, target) = setup();
    let solver = PixelIlt::new();
    let seq = overlap_select(
        &config,
        &bank,
        &target,
        &solver,
        &TileExecutor::sequential(),
    )
    .unwrap();
    let par = overlap_select(&config, &bank, &target, &solver, &TileExecutor::new(4)).unwrap();
    assert_eq!(seq.mask, par.mask);
}

#[test]
fn stitch_heal_parallel_matches_sequential() {
    let (config, bank, target) = setup();
    let solver = PixelIlt::new();
    let dnc = divide_and_conquer(
        &config,
        &bank,
        &target,
        &solver,
        &TileExecutor::sequential(),
    )
    .unwrap();
    let seq = stitch_and_heal(
        &config,
        &bank,
        &target,
        &dnc.mask,
        &solver,
        &TileExecutor::sequential(),
    )
    .unwrap();
    let par = stitch_and_heal(
        &config,
        &bank,
        &target,
        &dnc.mask,
        &solver,
        &TileExecutor::new(4),
    )
    .unwrap();
    assert_eq!(seq.result.mask, par.result.mask);
    assert_eq!(seq.new_lines, par.new_lines);
}

#[test]
fn multigrid_identical_across_one_two_and_eight_workers() {
    let (config, bank, target) = setup();
    let solver = PixelIlt::new();
    let reference =
        multigrid_schwarz(&config, &bank, &target, &solver, &TileExecutor::new(1)).unwrap();
    for workers in [2usize, 8] {
        let run = multigrid_schwarz(
            &config,
            &bank,
            &target,
            &solver,
            &TileExecutor::new(workers),
        )
        .unwrap();
        assert_eq!(
            reference.mask, run.mask,
            "mask diverged at {workers} workers"
        );
    }
}

#[test]
fn panicking_job_propagates_and_does_not_deadlock() {
    quiet_marker_panics();
    let executor = TileExecutor::new(4);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        executor.run(16, |i| {
            if i == 7 {
                panic!("boom-tile-7");
            }
            i
        })
    }));
    // The panic must reach the caller (not hang a worker), carrying the
    // original payload.
    let payload = outcome.expect_err("the job panic must propagate");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or_else(|| panic!("unexpected panic payload type"));
    assert!(message.contains("boom-tile-7"), "payload was {message:?}");
}

#[test]
fn pool_is_not_poisoned_by_an_earlier_panic() {
    quiet_marker_panics();
    let executor = TileExecutor::new(4);
    for round in 0..3 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            executor.run(12, |i| {
                if i == 2 * round {
                    panic!("boom-tile-{i}");
                }
                i
            })
        }));
        assert!(result.is_err(), "round {round} should have panicked");
        // The very same executor must still run healthy workloads — and a
        // full flow — to completion with correct results.
        assert_eq!(
            executor.run(12, |i| i * i),
            (0..12).map(|i| i * i).collect::<Vec<_>>()
        );
    }
    let (config, bank, target) = setup();
    let after = multigrid_schwarz(&config, &bank, &target, &PixelIlt::new(), &executor).unwrap();
    let reference = multigrid_schwarz(
        &config,
        &bank,
        &target,
        &PixelIlt::new(),
        &TileExecutor::sequential(),
    )
    .unwrap();
    assert_eq!(after.mask, reference.mask);
}

//! The executor changes scheduling only: every flow must produce a
//! bit-identical mask under `TileExecutor::new(4)` and
//! `TileExecutor::sequential()` on the tiny configuration.

use ilt_core::flows::{divide_and_conquer, multigrid_schwarz, overlap_select, stitch_and_heal};
use ilt_core::ExperimentConfig;
use ilt_layout::generate_clip;
use ilt_litho::{LithoBank, ResistModel};
use ilt_opt::PixelIlt;
use ilt_tile::TileExecutor;

fn setup() -> (ExperimentConfig, LithoBank, ilt_grid::BitGrid) {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let target = generate_clip(&config.generator, 7);
    (config, bank, target)
}

#[test]
fn multigrid_parallel_matches_sequential() {
    let (config, bank, target) = setup();
    let solver = PixelIlt::new();
    let seq = multigrid_schwarz(
        &config,
        &bank,
        &target,
        &solver,
        &TileExecutor::sequential(),
    )
    .unwrap();
    let par = multigrid_schwarz(&config, &bank, &target, &solver, &TileExecutor::new(4)).unwrap();
    assert_eq!(seq.mask, par.mask);
    let seq_labels: Vec<_> = seq.stages.iter().map(|s| s.label.clone()).collect();
    let par_labels: Vec<_> = par.stages.iter().map(|s| s.label.clone()).collect();
    assert_eq!(seq_labels, par_labels);
}

#[test]
fn overlap_select_parallel_matches_sequential() {
    let (config, bank, target) = setup();
    let solver = PixelIlt::new();
    let seq = overlap_select(
        &config,
        &bank,
        &target,
        &solver,
        &TileExecutor::sequential(),
    )
    .unwrap();
    let par = overlap_select(&config, &bank, &target, &solver, &TileExecutor::new(4)).unwrap();
    assert_eq!(seq.mask, par.mask);
}

#[test]
fn stitch_heal_parallel_matches_sequential() {
    let (config, bank, target) = setup();
    let solver = PixelIlt::new();
    let dnc = divide_and_conquer(
        &config,
        &bank,
        &target,
        &solver,
        &TileExecutor::sequential(),
    )
    .unwrap();
    let seq = stitch_and_heal(
        &config,
        &bank,
        &target,
        &dnc.mask,
        &solver,
        &TileExecutor::sequential(),
    )
    .unwrap();
    let par = stitch_and_heal(
        &config,
        &bank,
        &target,
        &dnc.mask,
        &solver,
        &TileExecutor::new(4),
    )
    .unwrap();
    assert_eq!(seq.result.mask, par.result.mask);
    assert_eq!(seq.new_lines, par.new_lines);
}

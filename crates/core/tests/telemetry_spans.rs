//! End-to-end telemetry coverage: running flows under tracing must produce
//! a span tree whose derived per-stage summaries agree with the flows' own
//! `StageTiming` reports, with nothing lost across worker threads.
//!
//! Tracing is process-global state, so every test takes the `TRACING` lock
//! and drains leftovers before enabling. This file is its own integration
//! binary, so enabling tracing here cannot leak into other test binaries.

use std::sync::Mutex;

use ilt_core::flows::{divide_and_conquer, multigrid_schwarz, FlowResult};
use ilt_core::ExperimentConfig;
use ilt_layout::generate_clip;
use ilt_litho::{LithoBank, ResistModel};
use ilt_opt::PixelIlt;
use ilt_telemetry as tele;
use ilt_tile::TileExecutor;

static TRACING: Mutex<()> = Mutex::new(());

/// Runs `run` with tracing enabled and returns its result plus the drained
/// telemetry snapshot, serialised against the other tests in this binary.
fn with_tracing<R>(run: impl FnOnce() -> R) -> (R, tele::Telemetry) {
    let (out, t, _diag) = with_tracing_diag(run);
    (out, t)
}

/// Like [`with_tracing`], but also drains the `ilt-diag` sink (which is
/// fed by the flows' `observe_solve` hooks under the same global flag).
fn with_tracing_diag<R>(run: impl FnOnce() -> R) -> (R, tele::Telemetry, ilt_diag::RunDiagnostics) {
    let guard = TRACING.lock().unwrap_or_else(|e| e.into_inner());
    let _ = tele::drain();
    let _ = ilt_diag::sink::drain();
    tele::set_enabled(true);
    let out = run();
    tele::set_enabled(false);
    let t = tele::drain();
    let diag = ilt_diag::sink::drain();
    drop(guard);
    (out, t, diag)
}

fn close(a: f64, b: f64, what: &str) {
    let tol = 0.01 * b.abs().max(1e-9);
    assert!((a - b).abs() <= tol, "{what}: span {a} vs report {b}");
}

#[test]
fn multigrid_spans_agree_with_stage_timing() {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let target = generate_clip(&config.generator, 1);
    let (result, t): (FlowResult, _) = with_tracing(|| {
        multigrid_schwarz(
            &config,
            &bank,
            &target,
            &PixelIlt::new(),
            &TileExecutor::sequential(),
        )
        .unwrap()
    });

    let flows = t.flow_summaries();
    let flow = flows
        .iter()
        .find(|f| f.name == result.name)
        .expect("flow span present");
    close(flow.seconds, result.wall_seconds, "flow wall time");

    assert_eq!(flow.stages.len(), result.stages.len());
    for (summary, timing) in flow.stages.iter().zip(&result.stages) {
        assert_eq!(summary.label, timing.label);
        assert_eq!(summary.tile_count, timing.tile_seconds.len());
        close(
            summary.tile_seconds,
            timing.total_tile_seconds(),
            &format!("tile seconds of {}", timing.label),
        );
        close(
            summary.assembly_seconds,
            timing.assembly_seconds,
            &format!("assembly seconds of {}", timing.label),
        );
    }

    // Every tile solve produced a solver span and fed the hot-path metrics.
    let tiles: usize = result.stages.iter().map(|s| s.tile_seconds.len()).sum();
    assert_eq!(t.span_count(tele::names::TILE), tiles);
    assert_eq!(t.span_count(tele::names::SOLVE), tiles);
    assert_eq!(t.counters["solver.solves"], tiles as u64);
    assert!(t.counters["fft.forward"] > 0);
    assert!(t.counters["tile.pixels_assembled"] > 0);
    assert!(t.histograms.contains_key("solver.iterations"));
}

#[test]
fn parallel_execution_attributes_all_tiles_to_the_stage() {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let target = generate_clip(&config.generator, 2);
    let (result, t) = with_tracing(|| {
        divide_and_conquer(
            &config,
            &bank,
            &target,
            &PixelIlt::new(),
            &TileExecutor::new(4),
        )
        .unwrap()
    });

    let tiles = result.stages[0].tile_seconds.len();
    assert_eq!(tiles, 9);
    // No tile, job, or solve span is lost when workers record on their own
    // threads.
    assert_eq!(t.span_count(tele::names::TILE), tiles);
    assert_eq!(t.span_count(tele::names::JOB), tiles);
    assert_eq!(t.span_count(tele::names::SOLVE), tiles);
    // Cross-thread parent propagation: every tile rolls up to the stage.
    let flows = t.flow_summaries();
    assert_eq!(flows.len(), 1);
    assert_eq!(flows[0].stages.len(), 1);
    assert_eq!(flows[0].stages[0].tile_count, tiles);
    // Workers really did record from more than one thread.
    let threads: std::collections::HashSet<u64> = t
        .events
        .iter()
        .filter(|e| e.name == tele::names::JOB)
        .map(|e| e.thread)
        .collect();
    assert!(threads.len() > 1, "jobs all on one thread: {threads:?}");
}

#[test]
fn traced_flow_fills_the_diag_convergence_matrix() {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let target = generate_clip(&config.generator, 4);
    let (result, t, diag) = with_tracing_diag(|| {
        multigrid_schwarz(
            &config,
            &bank,
            &target,
            &PixelIlt::new(),
            &TileExecutor::new(3),
        )
        .unwrap()
    });

    // Every tile solve of every stage produced one convergence cell, with
    // flow/stage labels matching the StageTiming report.
    let tiles: usize = result.stages.iter().map(|s| s.tile_seconds.len()).sum();
    assert_eq!(diag.solves.len(), tiles);
    assert!(diag.solves.iter().all(|c| c.flow == result.name));
    for timing in &result.stages {
        let cells = diag
            .solves
            .iter()
            .filter(|c| c.stage == timing.label)
            .count();
        assert_eq!(cells, timing.tile_seconds.len(), "{}", timing.label);
    }
    assert!(diag.solves.iter().all(|c| c.iterations > 0));
    assert!(diag.solves.iter().all(|c| c.final_loss.is_some()));
    // Any anomaly spans in the trace correspond to cells' anomaly lists.
    let span_anomalies = ilt_diag::anomalies_from(&t);
    let cell_anomalies: usize = diag.solves.iter().map(|c| c.anomalies.len()).sum();
    assert_eq!(span_anomalies.len(), cell_anomalies);
}

#[test]
fn disabled_tracing_collects_nothing_but_still_times() {
    let guard = TRACING.lock().unwrap_or_else(|e| e.into_inner());
    let _ = tele::drain();
    let _ = ilt_diag::sink::drain();
    tele::set_enabled(false);

    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let target = generate_clip(&config.generator, 3);
    let result = divide_and_conquer(
        &config,
        &bank,
        &target,
        &PixelIlt::new(),
        &TileExecutor::sequential(),
    )
    .unwrap();

    let t = tele::drain();
    let diag = ilt_diag::sink::drain();
    drop(guard);
    assert!(
        t.is_empty(),
        "disabled run recorded {} spans",
        t.events.len()
    );
    assert!(diag.is_empty(), "disabled run fed the diag sink");
    // The StageTiming API still reports real measurements.
    assert_eq!(result.stages[0].tile_seconds.len(), 9);
    assert!(result.stages[0].tile_seconds.iter().all(|&s| s > 0.0));
    assert!(result.wall_seconds > 0.0);
}

//! End-to-end contract of the incremental (ECO) re-solve: a single-tile
//! edit re-solves exactly the dirty set (edited tile ∪ overlap neighbours),
//! reuses every clean tile verbatim, and leaves clean cores bit-identical
//! to the base solve.

use ilt_core::incremental::{run_and_store, run_incremental_in};
use ilt_core::ExperimentConfig;
use ilt_grid::{BitGrid, Rect};
use ilt_layout::generate_clip;
use ilt_litho::{LithoBank, ResistModel};
use ilt_opt::PixelIlt;
use ilt_store::MaskStore;
use ilt_tile::{Partition, TileExecutor};

fn flip_rect(layout: &BitGrid, rect: Rect) -> BitGrid {
    let mut edited = layout.clone();
    for y in rect.y0..rect.y1 {
        for x in rect.x0..rect.x1 {
            let (x, y) = (x as usize, y as usize);
            edited.set(x, y, 1 - layout.get(x, y));
        }
    }
    edited
}

struct Eco {
    base_mask: ilt_grid::RealGrid,
    outcome: ilt_core::IncrementalOutcome,
    partition: Partition,
}

fn run_single_tile_edit() -> Eco {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let store = MaskStore::new(64 * 1024 * 1024, None);
    let executor = TileExecutor::sequential();
    let solver = PixelIlt::new();
    let base = generate_clip(&config.generator, 1);
    // An 8×8 flip deep inside tile 0's exclusive region (x, y < 32 belongs
    // to tile 0 only: tile 1 starts at x = 32).
    let edited = flip_rect(&base, Rect::new(10, 10, 18, 18));

    let base_flow = run_and_store(&config, &bank, &store, &base, &solver, &executor).unwrap();
    let outcome =
        run_incremental_in(&config, &bank, &store, &base, &edited, &solver, &executor).unwrap();
    let partition = Partition::new(config.clip, config.clip, config.partition).unwrap();
    Eco {
        base_mask: base_flow.mask,
        outcome,
        partition,
    }
}

#[test]
fn single_tile_edit_resolves_only_the_dirty_set() {
    let eco = run_single_tile_edit();
    let outcome = &eco.outcome;

    // Dirty set = edited tile 0 ∪ its overlap neighbours {1, 3, 4}.
    assert_eq!(outcome.diff.edited, vec![0]);
    let mut expected = vec![0usize];
    expected.extend(eco.partition.neighbors(0));
    expected.sort_unstable();
    assert_eq!(outcome.diff.dirty, expected);
    assert_eq!(outcome.diff.dirty, vec![0, 1, 3, 4]);

    // Exactly the dirty set re-solves; the other five tiles are reused.
    assert_eq!(outcome.tiles_resolved, 4);
    assert_eq!(outcome.tiles_reused, 5);
    assert!((outcome.hit_ratio() - 5.0 / 9.0).abs() < 1e-12);

    // Every store lookup hit: clean tiles under their unchanged content
    // keys, dirty tiles warm-started under their base keys.
    assert_eq!(outcome.store_hits, 9);
    assert_eq!(outcome.store_misses, 0);

    // The warm stages ran tile solves for the dirty set only.
    for label in ["eco fine stage 1", "eco fine stage 2"] {
        let stage = outcome
            .flow
            .stages
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing stage {label}"));
        assert_eq!(stage.tile_seconds.len(), 4, "{label}");
    }
    let refined: usize = outcome
        .flow
        .stages
        .iter()
        .filter(|s| s.label.starts_with("eco refine"))
        .map(|s| s.tile_seconds.len())
        .sum();
    assert_eq!(refined, 4, "refine covers each dirty tile exactly once");
    assert!(outcome.flow.name.starts_with("ours-eco:"));
    assert!(outcome.flow.degraded.is_empty());
}

#[test]
fn clean_cores_are_bit_identical_to_the_base_solve() {
    let eco = run_single_tile_edit();
    // Tile 8 (bottom-right) is clean and none of the dirty tiles' rects
    // reach its exclusive region (dirty rects end at x,y = 96... tile 4's
    // rect is 32..96 in both axes; tile 8's exclusive pixels at >= 96+8
    // stay clear of every dirty extended core).
    let mask = &eco.outcome.flow.mask;
    for y in 104..128 {
        for x in 104..128 {
            assert_eq!(
                mask.get(x, y),
                eco.base_mask.get(x, y),
                "clean pixel ({x},{y}) drifted from the base solve"
            );
        }
    }
}

#[test]
fn no_change_edit_reuses_everything() {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let store = MaskStore::new(64 * 1024 * 1024, None);
    let executor = TileExecutor::sequential();
    let solver = PixelIlt::new();
    let base = generate_clip(&config.generator, 1);
    let base_flow = run_and_store(&config, &bank, &store, &base, &solver, &executor).unwrap();
    let outcome =
        run_incremental_in(&config, &bank, &store, &base, &base, &solver, &executor).unwrap();
    assert_eq!(outcome.tiles_resolved, 0);
    assert_eq!(outcome.tiles_reused, 9);
    assert_eq!(outcome.diff.changed_pixels, 0);
    // Reassembling the reused crops reproduces the base mask (exactly in
    // exclusive cores, to rounding in the partition-of-unity blend bands).
    for (a, b) in outcome
        .flow
        .mask
        .as_slice()
        .iter()
        .zip(base_flow.mask.as_slice())
    {
        assert!((a - b).abs() < 1e-12, "reassembled {a} vs base {b}");
    }
}

#[test]
fn cold_store_still_produces_a_full_solve() {
    // With an empty store, every tile misses and re-solves: slower, but the
    // flow still completes and covers the full clip.
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).unwrap();
    let store = MaskStore::new(64 * 1024 * 1024, None);
    let executor = TileExecutor::sequential();
    let solver = PixelIlt::new();
    let base = generate_clip(&config.generator, 1);
    let edited = flip_rect(&base, Rect::new(10, 10, 18, 18));
    let outcome =
        run_incremental_in(&config, &bank, &store, &base, &edited, &solver, &executor).unwrap();
    assert_eq!(outcome.tiles_resolved, 9, "all tiles miss on a cold store");
    assert_eq!(outcome.tiles_reused, 0);
    assert_eq!(outcome.store_misses, 9);
    assert_eq!(outcome.flow.mask.width(), config.clip);
}

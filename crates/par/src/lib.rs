//! # ilt-par
//!
//! Deterministic intra-tile parallelism for the litho fast path.
//!
//! The tile-level [`ilt-tile`] executor parallelises *across* tiles; this
//! crate parallelises *inside* one tile's simulate/gradient evaluation —
//! per-kernel field transforms and FFT row batches — without changing a
//! single bit of the output. The rules that make that possible:
//!
//! * **Static partitioning.** Work items are split into contiguous index
//!   ranges, one per worker, so the mapping from item to thread is a pure
//!   function of `(count, threads)` — no work stealing, no racing claims.
//! * **Disjoint writes.** Every parallel entry point hands each worker an
//!   exclusive `&mut` sub-slice; items never share output state.
//! * **Fixed-order reduction.** Anything that must be *combined* across
//!   items (per-kernel intensity or gradient contributions) is written to
//!   per-item buffers in parallel and folded serially in item order by the
//!   caller, so floating-point association never depends on thread timing.
//!
//! Workers are scoped threads ([`std::thread::scope`]): spawning costs a
//! few microseconds per call, which is noise against the multi-millisecond
//! FFT stacks this guards, and it keeps the crate `std`-only with no
//! `unsafe`.
//!
//! ## Thread budget
//!
//! The process-wide default worker count comes from `ILT_INNER_THREADS`
//! (default 1, i.e. serial). Harnesses that also run an *outer* tile or
//! job pool must cap the product: [`budget`] returns the configured count
//! clamped so `outer x inner <= available cores`.
//!
//! ```
//! use ilt_par::InnerPool;
//!
//! let pool = InnerPool::new(4);
//! let mut squares = vec![0usize; 10];
//! pool.for_each_mut(&mut squares, |i, s| *s = i * i);
//! assert_eq!(squares[7], 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Worker count override set by [`set_inner_threads`] (0 = unset, fall
/// back to the environment).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `ILT_INNER_THREADS` parsed once (warning once on invalid values).
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Number of logical cores available to this process (1 if unknown).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_inner_threads() -> usize {
    *ENV_THREADS.get_or_init(|| match std::env::var("ILT_INNER_THREADS") {
        Err(_) => 1,
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) => v.max(1),
            Err(_) => {
                eprintln!("warning: invalid ILT_INNER_THREADS={raw:?}; using default 1");
                1
            }
        },
    })
}

/// Sets the process-wide inner worker count, overriding
/// `ILT_INNER_THREADS`. Harnesses call this once at startup with their
/// budgeted value; 0 is treated as 1.
pub fn set_inner_threads(threads: usize) {
    OVERRIDE.store(threads.max(1), Ordering::Relaxed);
}

/// The configured inner worker count: the [`set_inner_threads`] override
/// if set, else `ILT_INNER_THREADS` (default 1).
pub fn configured_inner_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_inner_threads(),
        n => n,
    }
}

/// The configured inner worker count clamped so that `outer_workers`
/// concurrent callers can each run a pool of this size without
/// oversubscribing the machine: `outer x inner <= available cores`
/// (always at least 1).
pub fn budget(outer_workers: usize) -> usize {
    let cap = (available_cores() / outer_workers.max(1)).max(1);
    configured_inner_threads().min(cap)
}

/// A fixed-width scoped worker pool with deterministic work assignment.
///
/// `InnerPool` is a plain `Copy` value (the threads are scoped per call),
/// so it can be stored inside simulators and shared freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InnerPool {
    threads: usize,
}

impl InnerPool {
    /// A pool running everything on the calling thread.
    pub const fn serial() -> Self {
        InnerPool { threads: 1 }
    }

    /// A pool of `threads` workers (0 is treated as 1).
    pub fn new(threads: usize) -> Self {
        InnerPool {
            threads: threads.max(1),
        }
    }

    /// The process-wide configured pool (see [`configured_inner_threads`]).
    pub fn current() -> Self {
        InnerPool::new(configured_inner_threads())
    }

    /// Worker count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns `true` if this pool never spawns (one worker).
    #[inline]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// How many workers a job of `count` items actually uses.
    fn workers_for(&self, count: usize) -> usize {
        self.threads.min(count).max(1)
    }

    /// Calls `f(i, &mut items[i])` for every item, items statically split
    /// into contiguous runs across the workers. Writes are disjoint, so
    /// the result is identical to the serial loop.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        self.for_each_chunk_mut(items, 1, |i, chunk| f(i, &mut chunk[0]));
    }

    /// Splits `data` into `data.len() / chunk_len` equally sized chunks and
    /// calls `f(chunk_index, chunk)` for each, chunks statically split into
    /// contiguous runs across the workers.
    ///
    /// This is the FFT row-batch primitive: rows are independent, so
    /// transforming them on any worker yields bit-identical buffers.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is 0 or does not divide `data.len()`.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be nonzero");
        assert!(
            data.len().is_multiple_of(chunk_len),
            "data length {} not divisible by chunk length {}",
            data.len(),
            chunk_len
        );
        let chunks = data.len() / chunk_len;
        let workers = self.workers_for(chunks);
        if workers <= 1 {
            for (i, c) in data.chunks_mut(chunk_len).enumerate() {
                f(i, c);
            }
            return;
        }
        let per_worker = chunks.div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = data;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = (per_worker * chunk_len).min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let start = base;
                base += take / chunk_len;
                scope.spawn(move || {
                    for (i, c) in head.chunks_mut(chunk_len).enumerate() {
                        f(start + i, c);
                    }
                });
            }
        });
    }

    /// Splits `a` and `b` into the same number of equally sized chunks and
    /// calls `f(chunk_index, a_chunk, b_chunk)` for each pair, pairs
    /// statically split into contiguous runs across the workers.
    ///
    /// This is the primitive for transforms whose input and output rows
    /// live in *different* buffers with different element types — e.g. the
    /// real-input FFT row pass, which reads a half-spectrum row and writes
    /// a real row. Writes are disjoint per pair, so the result is identical
    /// to the serial loop.
    ///
    /// # Panics
    ///
    /// Panics if either chunk length is 0 or does not divide its buffer
    /// length, or if the two buffers split into different chunk counts.
    pub fn for_each_chunk_zip_mut<A, B, F>(
        &self,
        a: &mut [A],
        chunk_a: usize,
        b: &mut [B],
        chunk_b: usize,
        f: F,
    ) where
        A: Send,
        B: Send,
        F: Fn(usize, &mut [A], &mut [B]) + Sync,
    {
        assert!(chunk_a > 0 && chunk_b > 0, "chunk lengths must be nonzero");
        assert!(
            a.len().is_multiple_of(chunk_a),
            "first buffer length {} not divisible by chunk length {}",
            a.len(),
            chunk_a
        );
        assert!(
            b.len().is_multiple_of(chunk_b),
            "second buffer length {} not divisible by chunk length {}",
            b.len(),
            chunk_b
        );
        let chunks = a.len() / chunk_a;
        assert!(
            chunks == b.len() / chunk_b,
            "buffers split into {} vs {} chunks",
            chunks,
            b.len() / chunk_b
        );
        let workers = self.workers_for(chunks);
        if workers <= 1 {
            for (i, (ca, cb)) in a.chunks_mut(chunk_a).zip(b.chunks_mut(chunk_b)).enumerate() {
                f(i, ca, cb);
            }
            return;
        }
        let per_worker = chunks.div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest_a = a;
            let mut rest_b = b;
            let mut base = 0usize;
            while !rest_a.is_empty() {
                let take = per_worker.min(rest_a.len() / chunk_a);
                let (head_a, tail_a) = rest_a.split_at_mut(take * chunk_a);
                let (head_b, tail_b) = rest_b.split_at_mut(take * chunk_b);
                rest_a = tail_a;
                rest_b = tail_b;
                let start = base;
                base += take;
                scope.spawn(move || {
                    for (i, (ca, cb)) in head_a
                        .chunks_mut(chunk_a)
                        .zip(head_b.chunks_mut(chunk_b))
                        .enumerate()
                    {
                        f(start + i, ca, cb);
                    }
                });
            }
        });
    }

    /// Like [`for_each_mut`](Self::for_each_mut), but each worker is also
    /// handed exclusive access to one scratch slot for the duration of its
    /// contiguous run — the pattern for per-kernel transforms that need a
    /// full-grid temporary.
    ///
    /// `scratch` must hold at least [`Self::threads`] slots (slot `w` is
    /// used by worker `w`; extra slots are ignored). In serial mode only
    /// `scratch[0]` is touched.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` has fewer slots than the workers this call
    /// spawns.
    pub fn for_each_with_scratch<T, S, F>(&self, items: &mut [T], scratch: &mut [S], f: F)
    where
        T: Send,
        S: Send,
        F: Fn(usize, &mut T, &mut S) + Sync,
    {
        if items.is_empty() {
            return;
        }
        let workers = self.workers_for(items.len());
        assert!(
            scratch.len() >= workers,
            "{} scratch slots for {} workers",
            scratch.len(),
            workers
        );
        if workers <= 1 {
            let s = &mut scratch[0];
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item, s);
            }
            return;
        }
        let per_worker = items.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = items;
            let mut scratch_rest = scratch;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = per_worker.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let (slot, s_tail) = scratch_rest.split_at_mut(1);
                scratch_rest = s_tail;
                let start = base;
                base += take;
                scope.spawn(move || {
                    let s = &mut slot[0];
                    for (i, item) in head.iter_mut().enumerate() {
                        f(start + i, item, s);
                    }
                });
            }
        });
    }

    /// Evaluates `f(i)` for `i in 0..count`, returning results in index
    /// order regardless of which worker produced them.
    pub fn map<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out: Vec<Option<T>> = (0..count).map(|_| None).collect();
        self.for_each_mut(&mut out, |i, slot| *slot = Some(f(i)));
        out.into_iter()
            .map(|s| s.expect("every index produced a value"))
            .collect()
    }
}

impl Default for InnerPool {
    fn default() -> Self {
        InnerPool::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_for_each_agree() {
        let mut a = vec![0usize; 37];
        let mut b = vec![0usize; 37];
        InnerPool::serial().for_each_mut(&mut a, |i, v| *v = i * 3 + 1);
        InnerPool::new(4).for_each_mut(&mut b, |i, v| *v = i * 3 + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_rows_cover_everything_once() {
        // 9 rows of 8 across 4 workers: every row index seen exactly once,
        // every element written.
        let mut data = vec![0usize; 72];
        InnerPool::new(4).for_each_chunk_mut(&mut data, 8, |row, chunk| {
            for (c, v) in chunk.iter_mut().enumerate() {
                *v = row * 100 + c;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 8) * 100 + i % 8);
        }
    }

    #[test]
    fn zipped_chunks_pair_rows_across_buffers() {
        // 8 spectrum rows of 5 paired with 8 output rows of 3; serial and
        // 4-worker runs must agree element for element.
        let src: Vec<usize> = (0..40).collect();
        let run = |threads: usize| {
            let mut a = src.clone();
            let mut b = vec![0usize; 24];
            InnerPool::new(threads).for_each_chunk_zip_mut(&mut a, 5, &mut b, 3, |r, ca, cb| {
                for v in ca.iter_mut() {
                    *v += 1;
                }
                for (c, v) in cb.iter_mut().enumerate() {
                    *v = r * 10 + c + ca[0];
                }
            });
            (a, b)
        };
        let (a1, b1) = run(1);
        let (a4, b4) = run(4);
        assert_eq!(a1, a4);
        assert_eq!(b1, b4);
        assert_eq!(b1[0], 1); // row 0: 0*10 + 0 + (0+1)
    }

    #[test]
    #[should_panic(expected = "vs")]
    fn zipped_chunk_counts_must_match() {
        let mut a = vec![0u8; 10];
        let mut b = vec![0u8; 9];
        InnerPool::serial().for_each_chunk_zip_mut(&mut a, 5, &mut b, 3, |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn chunk_length_must_divide() {
        let mut data = vec![0u8; 10];
        InnerPool::serial().for_each_chunk_mut(&mut data, 3, |_, _| {});
    }

    #[test]
    fn scratch_slots_are_per_worker() {
        // Each worker accumulates into its own slot; the per-slot sums must
        // partition the total.
        let mut items: Vec<usize> = (0..23).collect();
        let mut scratch = vec![0usize; 4];
        InnerPool::new(4).for_each_with_scratch(&mut items, &mut scratch, |i, item, s| {
            *item *= 2;
            *s += i;
        });
        assert_eq!(items, (0..23).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(scratch.iter().sum::<usize>(), (0..23).sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "scratch slots")]
    fn too_few_scratch_slots_panics() {
        let mut items = vec![0usize; 8];
        let mut scratch = vec![0usize; 1];
        InnerPool::new(4).for_each_with_scratch(&mut items, &mut scratch, |_, _, _| {});
    }

    #[test]
    fn map_returns_index_order() {
        let out = InnerPool::new(3).map(10, |i| i * i);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut empty: Vec<usize> = Vec::new();
        InnerPool::new(4).for_each_mut(&mut empty, |_, _| unreachable!());
        let mut scratch = vec![0usize; 4];
        InnerPool::new(4).for_each_with_scratch(&mut empty, &mut scratch, |_, _, _| unreachable!());
        let out: Vec<usize> = InnerPool::new(4).map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_treated_as_one() {
        assert_eq!(InnerPool::new(0).threads(), 1);
        assert!(InnerPool::new(0).is_serial());
        assert_eq!(InnerPool::default(), InnerPool::serial());
    }

    #[test]
    fn budget_caps_against_outer_workers() {
        // With more outer workers than cores the inner budget collapses to
        // 1; a single outer worker may use the whole configured pool.
        assert_eq!(budget(usize::MAX), 1);
        assert!(budget(1) >= 1);
        assert!(budget(available_cores()) <= available_cores());
    }

    #[test]
    fn override_wins_over_env() {
        // Note: the override is process-global; restore it afterwards.
        let before = configured_inner_threads();
        set_inner_threads(3);
        assert_eq!(configured_inner_threads(), 3);
        assert_eq!(InnerPool::current().threads(), 3);
        set_inner_threads(0);
        assert_eq!(configured_inner_threads(), 1);
        set_inner_threads(before);
    }
}

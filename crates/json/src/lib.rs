//! # ilt-json
//!
//! A minimal JSON value parser shared by the workspace, std-only by design
//! like everything else here (its single in-workspace dependency is the
//! `ilt-fault` injection registry).
//!
//! The workspace writes JSON by hand (`ilt_telemetry::json`) and has no
//! serde; `report_diff` and the `ilt-serve` request path need the reverse
//! direction. This is a strict recursive-descent parser over the full JSON
//! grammar — enough to load reports the workspace itself produced and to
//! parse job-submission bodies, with real error positions for hand-edited
//! baselines and hand-typed curl payloads.
//!
//! Historically this parser lived in `ilt-diag` (`ilt_diag::jsonv`); that
//! path re-exports this crate so existing imports keep compiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order follows `BTreeMap` (sorted); reports never rely
    /// on member order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset for any syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        // Fault drill: a corrupt payload on the wire surfaces here as a
        // parse failure; every caller must treat it as a typed error.
        if ilt_fault::should_fire(ilt_fault::points::JSON_INVALID) {
            return Err("injected fault: json.invalid".to_string());
        }
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Descends through nested objects by key path.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is one
    /// (rejects negatives, non-integers, and values beyond `u64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => write!(f, "{v}"),
            Json::Str(s) => write!(f, "{s:?}"),
            Json::Arr(v) => write!(f, "[{} items]", v.len()),
            Json::Obj(m) => write!(f, "{{{} members}}", m.len()),
        }
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are replaced rather than paired —
                            // the workspace never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences arrive
                    // intact because the input is a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = Json::parse(
            r#"{"schema":"ilt-report/v2","n":-1.5e2,"ok":true,"none":null,"xs":[1,2,3],"nested":{"a":{"b":7}}}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("ilt-report/v2")
        );
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-150.0));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.path(&["nested", "a", "b"]).and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn scalar_accessors() {
        let v = Json::parse(r#"{"b":true,"n":12,"neg":-1,"frac":1.5,"s":"x"}"#).unwrap();
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(12));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("frac").and_then(Json::as_u64), None);
        assert_eq!(v.get("s").and_then(Json::as_u64), None);
        assert_eq!(v.get("s").and_then(Json::as_bool), None);
    }

    #[test]
    fn parses_string_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "1 2",
            r#"{"a":1,}"#,
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn round_trips_a_report_written_by_the_workspace_writer() {
        // The telemetry JSON writer is the source of every report this
        // parser will read; check one representative product.
        let mut s = String::from("{\"label\":");
        ilt_telemetry::json::push_str_literal(&mut s, "fine stage 1 — \"q\"\\path");
        s.push_str(",\"value\":");
        ilt_telemetry::json::push_f64(&mut s, 0.125);
        s.push('}');
        let v = Json::parse(&s).unwrap();
        assert_eq!(
            v.get("label").and_then(Json::as_str),
            Some("fine stage 1 — \"q\"\\path")
        );
        assert_eq!(v.get("value").and_then(Json::as_f64), Some(0.125));
    }
}

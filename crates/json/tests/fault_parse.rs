//! Fault-injected parse behaviour, isolated in its own test binary so the
//! process-global fault registry never races the parser's unit tests.

use ilt_fault::{points, FaultSpec};
use ilt_json::Json;

#[test]
fn injected_invalid_json_is_a_typed_parse_error() {
    let doc = r#"{"ok": true}"#;
    assert!(Json::parse(doc).is_ok());

    ilt_fault::configure(vec![FaultSpec::always(points::JSON_INVALID, 9)]);
    for _ in 0..3 {
        let err = Json::parse(doc).unwrap_err();
        assert!(err.contains("injected fault"), "{err}");
    }
    assert_eq!(ilt_fault::fired_count(points::JSON_INVALID), 3);

    // A limit-1 window corrupts exactly one parse, then recovers.
    ilt_fault::configure(vec![FaultSpec {
        limit: Some(1),
        ..FaultSpec::always(points::JSON_INVALID, 9)
    }]);
    assert!(Json::parse(doc).is_err());
    assert!(Json::parse(doc).is_ok());

    ilt_fault::clear();
    assert!(Json::parse(doc).is_ok());
}

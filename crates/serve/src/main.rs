//! The `ilt-serve` daemon.
//!
//! Binds `ILT_SERVE_ADDR` (default `127.0.0.1:8117`) and serves jobs until
//! `POST /admin/shutdown` starts the graceful drain; every queued and
//! in-flight job finishes before the process exits. Telemetry collection
//! is on by default so `/metrics` has something to say; set `ILT_TRACE=0`
//! to switch it off.
//!
//! Environment: `ILT_SERVE_ADDR`, `ILT_SERVE_QUEUE` (queue depth, default
//! 64), `ILT_SERVE_WORKERS` (job workers, default 1), `ILT_WORKERS`
//! (tile threads per job, default 1), `ILT_TRACE`, `ILT_FAULTS`
//! (deterministic fault-injection profile for drills, see `ilt-fault`),
//! `ILT_OBS_RING` (flight-recorder capacity per shard, or `off`),
//! `ILT_SLO` / `ILT_SLO_WINDOWS` (burn-rate objectives, see
//! `ilt_telemetry::slo`), `ILT_PROF_HZ` (CPU sampler rate; on by default
//! for the service, `0`/`off` disables) and `ILT_PROF_ALLOC` (allocation
//! counting for `/debug/memory`).

use ilt_serve::ServeConfig;

// Install the tracking allocator so `ILT_PROF_ALLOC=1` can attribute
// allocations per stage and per trace. Off (the default) it adds one
// relaxed load per allocation.
#[global_allocator]
static GLOBAL: ilt_prof::TrackingAlloc = ilt_prof::TrackingAlloc::new();

fn main() {
    // Opposite default from the batch binaries: a service should expose
    // metrics unless explicitly muted.
    if !ilt_telemetry::init_from_env() && std::env::var("ILT_TRACE").is_err() {
        ilt_telemetry::set_enabled(true);
    }
    ilt_telemetry::flight::init_from_env();
    // A service profiles by default: the sampler feeds /debug/profile and
    // the RSS window, at ~1% overhead (gated by the microbench A/B).
    ilt_prof::init_from_env(true);
    ilt_fault::configure_from_env();
    let config = ServeConfig::from_env();
    let handle = match ilt_serve::start(config.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("ilt-serve: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "ilt-serve listening on {} (queue depth {}, {} worker{})",
        handle.addr(),
        config.queue_depth,
        config.workers,
        if config.workers == 1 { "" } else { "s" }
    );
    let summary = handle.wait();
    println!(
        "ilt-serve drained: {} completed, {} failed, {} unfinished",
        summary.completed, summary.failed, summary.unfinished
    );
    if summary.unfinished > 0 {
        std::process::exit(1);
    }
}

//! The bounded FIFO job queue behind admission control.
//!
//! Depth is fixed at construction: a `push` beyond it fails immediately
//! with [`PushError::Full`] — the server turns that into a `429` with a
//! `Retry-After` hint instead of letting latency grow without bound.
//! Workers block in [`JobQueue::pop`]; closing the queue starts the
//! graceful drain: new pushes are refused, but `pop` keeps handing out
//! queued jobs until the queue is empty and only then returns `None`, so
//! every admitted job runs to completion before the workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// The `Retry-After` hint (seconds) sent with queue-full rejections.
pub const RETRY_AFTER_SECONDS: u64 = 1;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at depth; retry after [`RETRY_AFTER_SECONDS`].
    Full,
    /// The queue is draining for shutdown; do not retry here.
    Closed,
}

#[derive(Debug)]
struct Inner {
    items: VecDeque<u64>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO of job ids.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    depth: usize,
}

impl JobQueue {
    /// Creates a queue admitting at most `depth` waiting jobs.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero — a queue that can never admit anything
    /// is a misconfiguration, not a policy.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be at least 1");
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            depth,
        }
    }

    /// Admission depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Jobs currently waiting (not counting running ones).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a job id, returning its 1-based queue position.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at depth, [`PushError::Closed`] once draining.
    pub fn push(&self, id: u64) -> Result<usize, PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.depth {
            return Err(PushError::Full);
        }
        inner.items.push_back(id);
        let position = inner.items.len();
        drop(inner);
        self.ready.notify_one();
        Ok(position)
    }

    /// Blocks until a job is available and returns it, or returns `None`
    /// once the queue is closed **and** empty.
    pub fn pop(&self) -> Option<u64> {
        let mut inner = self.lock();
        loop {
            if let Some(id) = inner.items.pop_front() {
                return Some(id);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Starts the drain: refuses new pushes, wakes every waiting worker.
    /// Already-queued jobs are still handed out.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_positions() {
        let q = JobQueue::new(4);
        assert_eq!(q.push(10), Ok(1));
        assert_eq!(q.push(11), Ok(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert!(q.is_empty());
    }

    #[test]
    fn rejects_beyond_depth_until_space_frees() {
        let q = JobQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(JobQueue::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the waiter time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(JobQueue::new(64));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(id) = q.pop() {
                        got.push(id);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..16 {
                        loop {
                            match q.push(p * 100 + i) {
                                Ok(_) => break,
                                Err(PushError::Full) => std::thread::yield_now(),
                                Err(PushError::Closed) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4)
            .flat_map(|p| (0..16).map(move |i| p * 100 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        let _ = JobQueue::new(0);
    }
}

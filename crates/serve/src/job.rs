//! Job specifications and lifecycle state.
//!
//! A job names **what to optimise** (a benchmark-suite case or an inline
//! layout spec), **how** (one of the four Table 1 methods), and **at which
//! scale** (`tiny` or `default`, the same scales `ILT_SCALE` selects for
//! the batch binaries), plus an optional deadline. Specs arrive as JSON in
//! `POST /v1/jobs` bodies and are parsed with the shared strict parser
//! ([`ilt_json`]); results are rendered back to JSON for
//! `GET /v1/jobs/{id}`.

use std::fmt::Write as _;

use ilt_core::experiment::Method;
use ilt_json::Json;
use ilt_telemetry::json::{push_f64, push_str_literal};

/// Where the job's target layout comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseSource {
    /// Case `k` of the deterministic benchmark suite (1-based, `1..=20`).
    Suite(usize),
    /// An inline layout spec: a seeded generator run at the scale's clip
    /// size with optional geometry overrides.
    Inline(InlineLayout),
    /// An incremental (ECO) re-solve: the layout of a previously submitted
    /// job with a rectangular edit applied. The worker diffs the edited
    /// layout against the base, reuses clean tiles from the mask store,
    /// and re-solves only the dirty set.
    Eco {
        /// Id of the base job whose target the edit applies to.
        base_job: u64,
        /// The rectangular edit.
        edit: EcoEdit,
    },
}

/// A rectangular layout edit: pixels in `[x0, x1) x [y0, y1)` are set to
/// `fill` (1 draws metal, 0 clears it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcoEdit {
    /// Left edge (inclusive).
    pub x0: usize,
    /// Top edge (inclusive).
    pub y0: usize,
    /// Right edge (exclusive).
    pub x1: usize,
    /// Bottom edge (exclusive).
    pub y1: usize,
    /// Value written into the rectangle (0 or 1).
    pub fill: u8,
}

/// Geometry overrides for an inline layout. Unset fields keep the scale's
/// defaults; the clip size is always the scale's (flows require it).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InlineLayout {
    /// Generator seed.
    pub seed: u64,
    /// Drawn wire width in pixels.
    pub wire_width: Option<usize>,
    /// Minimum wire spacing in pixels.
    pub wire_space: Option<usize>,
    /// Probability that a lattice cell on a track carries metal.
    pub track_fill: Option<f64>,
}

/// One admitted job, as parsed from a `POST /v1/jobs` body.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Target layout source.
    pub source: CaseSource,
    /// Which flow to run.
    pub method: Method,
    /// Scale name: `"tiny"` or `"default"`.
    pub scale: String,
    /// Optional coarse-hierarchy depth override: the coarsest Schwarz level
    /// runs at scale `s_max` (power of two; the hierarchy then has
    /// `log2(s_max) + 1` levels). Unset keeps the scale's default.
    pub s_max: Option<usize>,
    /// Optional override of streaming tile assembly. Unset keeps the
    /// scale's default (streaming on); `false` forces the hold-everything
    /// path. Results are bit-identical either way — this is a memory knob.
    pub stream: Option<bool>,
    /// Optional deadline in milliseconds from admission. Jobs that exceed
    /// it — whether still queued or mid-solve — report `failed`.
    pub timeout_ms: Option<u64>,
}

impl JobSpec {
    /// Parses a job spec from a request body.
    ///
    /// Accepted fields: `case` (integer 1..=20) **or** `layout` (object
    /// with `seed` and optional `wire_width` / `wire_space` /
    /// `track_fill`) **or** `base_job` + `edit` (incremental ECO re-solve:
    /// `base_job` names a prior job id, `edit` is
    /// `{"rect": [x0, y0, x1, y1], "fill": 0|1}`), `method` (`"ours"`,
    /// `"gls-dnc"`, `"multi-level-dnc"`, `"full-chip"`; default `"ours"`;
    /// ECO jobs accept only `"ours"`), `scale` (`"tiny"` or `"default"`;
    /// default `"tiny"`), `s_max` (power of two whose coarsest level still
    /// fits the scale's clip), `stream` (boolean), `timeout_ms` (positive
    /// integer).
    ///
    /// # Errors
    ///
    /// Returns a client-safe message describing the first violation.
    pub fn parse(body: &str) -> Result<JobSpec, String> {
        let json = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let Json::Obj(_) = json else {
            return Err("job spec must be a JSON object".to_string());
        };
        let case = json.get("case");
        let layout = json.get("layout");
        let base_job = json.get("base_job");
        let edit = json.get("edit");
        let source = match (case, layout, base_job) {
            (Some(_), Some(_), _) | (Some(_), _, Some(_)) | (_, Some(_), Some(_)) => {
                return Err("give exactly one of \"case\", \"layout\", or \"base_job\"".to_string())
            }
            (None, None, None) => {
                return Err("job spec needs a \"case\", a \"layout\", or a \"base_job\"".to_string())
            }
            (Some(c), None, None) => {
                if edit.is_some() {
                    return Err("\"edit\" requires a \"base_job\"".to_string());
                }
                let id = c
                    .as_u64()
                    .filter(|id| (1..=20).contains(id))
                    .ok_or_else(|| "\"case\" must be an integer in 1..=20".to_string())?;
                CaseSource::Suite(id as usize)
            }
            (None, Some(spec), None) => {
                if edit.is_some() {
                    return Err("\"edit\" requires a \"base_job\"".to_string());
                }
                CaseSource::Inline(parse_layout(spec)?)
            }
            (None, None, Some(base)) => {
                let base_job = base
                    .as_u64()
                    .or_else(|| base.as_str().and_then(|s| s.parse().ok()))
                    .ok_or_else(|| "\"base_job\" must be a job id".to_string())?;
                let edit = edit.ok_or_else(|| "\"base_job\" needs an \"edit\"".to_string())?;
                CaseSource::Eco {
                    base_job,
                    edit: parse_edit(edit)?,
                }
            }
        };
        let method = match json.get("method").map(|m| m.as_str()) {
            None => Method::Ours,
            Some(Some(name)) => parse_method(name)?,
            Some(None) => return Err("\"method\" must be a string".to_string()),
        };
        if method != Method::Ours && matches!(source, CaseSource::Eco { .. }) {
            return Err("incremental jobs support only method \"ours\"".to_string());
        }
        let scale = match json.get("scale").map(|s| s.as_str()) {
            None => "tiny".to_string(),
            Some(Some(s)) if s == "tiny" || s == "default" => s.to_string(),
            Some(_) => return Err("\"scale\" must be \"tiny\" or \"default\"".to_string()),
        };
        let s_max = match json.get("s_max") {
            None => None,
            Some(v) => {
                let s = v
                    .as_u64()
                    .filter(|s| *s >= 1 && s.is_power_of_two())
                    .ok_or_else(|| "\"s_max\" must be a power of two (1, 2, 4, ...)".to_string())?
                    as usize;
                let config =
                    crate::cache::config_for_scale(&scale).expect("scale validated just above");
                if s * config.partition.tile > config.clip {
                    return Err(format!(
                        "\"s_max\" {s} puts the coarsest level at {} pixels, larger than \
                         the {} scale's {}-pixel clip",
                        s * config.partition.tile,
                        scale,
                        config.clip
                    ));
                }
                Some(s)
            }
        };
        let stream = match json.get("stream") {
            None => None,
            Some(v) => Some(
                v.as_bool()
                    .ok_or_else(|| "\"stream\" must be a boolean".to_string())?,
            ),
        };
        let timeout_ms = match json.get("timeout_ms") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|ms| *ms > 0)
                    .ok_or_else(|| "\"timeout_ms\" must be a positive integer".to_string())?,
            ),
        };
        Ok(JobSpec {
            source,
            method,
            scale,
            s_max,
            stream,
            timeout_ms,
        })
    }

    /// A short human label for the job's target (`"case3"`,
    /// `"inline:seed=7"`, or `"eco:base=4"`).
    pub fn target_label(&self) -> String {
        match &self.source {
            CaseSource::Suite(id) => format!("case{id}"),
            CaseSource::Inline(l) => format!("inline:seed={}", l.seed),
            CaseSource::Eco { base_job, .. } => format!("eco:base={base_job}"),
        }
    }
}

fn parse_edit(edit: &Json) -> Result<EcoEdit, String> {
    let Json::Obj(_) = edit else {
        return Err("\"edit\" must be a JSON object".to_string());
    };
    let rect = edit
        .get("rect")
        .ok_or_else(|| "\"edit\" needs a \"rect\"".to_string())?
        .as_arr()
        .filter(|a| a.len() == 4)
        .ok_or_else(|| "\"edit.rect\" must be [x0, y0, x1, y1]".to_string())?;
    let mut coords = [0usize; 4];
    for (slot, value) in coords.iter_mut().zip(rect) {
        *slot =
            value.as_u64().filter(|c| *c <= 1 << 20).ok_or_else(|| {
                "\"edit.rect\" coordinates must be non-negative integers".to_string()
            })? as usize;
    }
    let [x0, y0, x1, y1] = coords;
    if x0 >= x1 || y0 >= y1 {
        return Err("\"edit.rect\" must be non-empty (x0 < x1 and y0 < y1)".to_string());
    }
    let fill = match edit.get("fill") {
        None => 1,
        Some(v) => v
            .as_u64()
            .filter(|f| *f <= 1)
            .ok_or_else(|| "\"edit.fill\" must be 0 or 1".to_string())? as u8,
    };
    Ok(EcoEdit {
        x0,
        y0,
        x1,
        y1,
        fill,
    })
}

fn parse_layout(spec: &Json) -> Result<InlineLayout, String> {
    let Json::Obj(_) = spec else {
        return Err("\"layout\" must be a JSON object".to_string());
    };
    let seed = spec
        .get("seed")
        .ok_or_else(|| "\"layout\" needs a \"seed\"".to_string())?
        .as_u64()
        .ok_or_else(|| "\"layout.seed\" must be a non-negative integer".to_string())?;
    let dim = |name: &str| -> Result<Option<usize>, String> {
        match spec.get(name) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .filter(|n| (1..=1024).contains(n))
                .map(|n| Some(n as usize))
                .ok_or_else(|| format!("\"layout.{name}\" must be an integer in 1..=1024")),
        }
    };
    let track_fill = match spec.get("track_fill") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|f| (0.0..=1.0).contains(f))
                .ok_or_else(|| "\"layout.track_fill\" must be in [0, 1]".to_string())?,
        ),
    };
    Ok(InlineLayout {
        seed,
        wire_width: dim("wire_width")?,
        wire_space: dim("wire_space")?,
        track_fill,
    })
}

fn parse_method(name: &str) -> Result<Method, String> {
    match name {
        "ours" => Ok(Method::Ours),
        "gls-dnc" => Ok(Method::GlsDnc),
        "multi-level-dnc" => Ok(Method::MultiLevelDnc),
        "full-chip" => Ok(Method::FullChip),
        other => Err(format!(
            "unknown method {other:?} (expected \"ours\", \"gls-dnc\", \
             \"multi-level-dnc\", or \"full-chip\")"
        )),
    }
}

/// Wire name of a method (the inverse of the `"method"` field parser).
pub fn method_name(method: Method) -> &'static str {
    match method {
        Method::Ours => "ours",
        Method::GlsDnc => "gls-dnc",
        Method::MultiLevelDnc => "multi-level-dnc",
        Method::FullChip => "full-chip",
    }
}

/// Table 1 quality metrics of a finished job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// L2 loss in pixels.
    pub l2: usize,
    /// PVBand area in pixels.
    pub pvband: usize,
    /// Stitch loss.
    pub stitch: f64,
    /// Solver turn-around time in seconds (excludes queue wait).
    pub tat_seconds: f64,
}

/// Summary of the optimised mask (the full grid stays server-side).
#[derive(Debug, Clone, PartialEq)]
pub struct MaskSummary {
    /// Mask width in pixels.
    pub width: usize,
    /// Mask height in pixels.
    pub height: usize,
    /// Pixels on after binarisation at 0.5.
    pub on_pixels: usize,
    /// `on_pixels / (width * height)`.
    pub coverage: f64,
}

/// Reuse accounting of an incremental (ECO) job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalStats {
    /// Clean tiles served verbatim from the mask store.
    pub tiles_reused: usize,
    /// Dirty tiles that re-solved (warm-started when the base was stored).
    pub tiles_resolved: usize,
    /// `tiles_reused / (tiles_reused + tiles_resolved)`.
    pub hit_ratio: f64,
}

/// Everything a successful job reports back.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Quality metrics over the whole clip.
    pub metrics: JobMetrics,
    /// Optimised-mask summary.
    pub mask: MaskSummary,
    /// Reuse accounting; present only on incremental (ECO) jobs.
    pub incremental: Option<IncrementalStats>,
    /// Tiles that fell back to their coarse-grid mask after fine-stage
    /// failures. Zero on a healthy run; non-zero means the mask is
    /// complete but locally at coarse quality — check the run report's
    /// diagnostics for which tiles.
    pub tiles_degraded: usize,
    /// Seconds the job waited in the queue before a worker picked it up.
    pub queue_seconds: f64,
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished successfully.
    Done(JobOutcome),
    /// Failed (solver error, panic, or deadline exceeded).
    Failed(String),
}

impl JobStatus {
    /// Wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// One job in the registry.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (also the path segment of `GET /v1/jobs/{id}`).
    pub id: u64,
    /// Trace id attributing every span the job produces (see
    /// `ilt_telemetry::trace_scope`); surfaced in the status JSON so
    /// clients can fetch `/debug/jobs/{id}/trace`.
    pub trace: u64,
    /// The spec as admitted.
    pub spec: JobSpec,
    /// Current state.
    pub status: JobStatus,
}

impl JobRecord {
    /// Renders the job as the response body of `GET /v1/jobs/{id}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"trace\":{},\"status\":",
            self.id, self.trace
        );
        push_str_literal(&mut out, self.status.name());
        out.push_str(",\"target\":");
        push_str_literal(&mut out, &self.spec.target_label());
        out.push_str(",\"method\":");
        push_str_literal(&mut out, method_name(self.spec.method));
        out.push_str(",\"scale\":");
        push_str_literal(&mut out, &self.spec.scale);
        if let Some(s) = self.spec.s_max {
            let _ = write!(out, ",\"s_max\":{s}");
        }
        if let Some(stream) = self.spec.stream {
            let _ = write!(out, ",\"stream\":{stream}");
        }
        if let Some(ms) = self.spec.timeout_ms {
            let _ = write!(out, ",\"timeout_ms\":{ms}");
        }
        match &self.status {
            JobStatus::Queued | JobStatus::Running => {}
            JobStatus::Failed(error) => {
                out.push_str(",\"error\":");
                push_str_literal(&mut out, error);
            }
            JobStatus::Done(outcome) => {
                let m = &outcome.metrics;
                let _ = write!(
                    out,
                    ",\"metrics\":{{\"l2\":{},\"pvband\":{},\"stitch\":",
                    m.l2, m.pvband
                );
                push_f64(&mut out, m.stitch);
                out.push_str(",\"tat_seconds\":");
                push_f64(&mut out, m.tat_seconds);
                out.push_str("},\"mask\":{");
                let k = &outcome.mask;
                let _ = write!(
                    out,
                    "\"width\":{},\"height\":{},\"on_pixels\":{},\"coverage\":",
                    k.width, k.height, k.on_pixels
                );
                push_f64(&mut out, k.coverage);
                let _ = write!(out, "}},\"tiles_degraded\":{}", outcome.tiles_degraded);
                if let Some(inc) = &outcome.incremental {
                    let _ = write!(
                        out,
                        ",\"incremental\":{{\"tiles_reused\":{},\"tiles_resolved\":{},\
                         \"hit_ratio\":",
                        inc.tiles_reused, inc.tiles_resolved
                    );
                    push_f64(&mut out, inc.hit_ratio);
                    out.push('}');
                }
                out.push_str(",\"queue_seconds\":");
                push_f64(&mut out, outcome.queue_seconds);
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_suite_job() {
        let spec =
            JobSpec::parse(r#"{"case": 3, "method": "ours", "scale": "tiny", "timeout_ms": 5000}"#)
                .unwrap();
        assert_eq!(spec.source, CaseSource::Suite(3));
        assert_eq!(spec.method, Method::Ours);
        assert_eq!(spec.scale, "tiny");
        assert_eq!(spec.timeout_ms, Some(5000));
        assert_eq!(spec.target_label(), "case3");
    }

    #[test]
    fn defaults_are_ours_at_tiny_scale() {
        let spec = JobSpec::parse(r#"{"case": 1}"#).unwrap();
        assert_eq!(spec.method, Method::Ours);
        assert_eq!(spec.scale, "tiny");
        assert_eq!(spec.s_max, None);
        assert_eq!(spec.stream, None);
        assert_eq!(spec.timeout_ms, None);
    }

    #[test]
    fn parses_hierarchy_and_streaming_overrides() {
        // Tiny scale: clip 128, tile 64 — s_max 2 is the deepest that fits.
        let spec = JobSpec::parse(r#"{"case": 1, "s_max": 2, "stream": false}"#).unwrap();
        assert_eq!(spec.s_max, Some(2));
        assert_eq!(spec.stream, Some(false));
        let record = JobRecord {
            id: 1,
            trace: 1,
            spec,
            status: JobStatus::Queued,
        };
        let body = record.to_json();
        assert!(body.contains("\"s_max\":2"));
        assert!(body.contains("\"stream\":false"));
    }

    #[test]
    fn rejects_hierarchies_that_overflow_the_clip() {
        for (body, needle) in [
            (r#"{"case": 1, "s_max": 3}"#, "power of two"),
            (r#"{"case": 1, "s_max": 0}"#, "power of two"),
            (r#"{"case": 1, "s_max": 4}"#, "larger than"),
            (r#"{"case": 1, "stream": "yes"}"#, "boolean"),
        ] {
            let err = JobSpec::parse(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err:?} missing {needle:?}");
        }
    }

    #[test]
    fn parses_an_inline_layout_job() {
        let spec = JobSpec::parse(
            r#"{"layout": {"seed": 7, "wire_width": 9, "track_fill": 0.5}, "method": "full-chip"}"#,
        )
        .unwrap();
        let CaseSource::Inline(layout) = &spec.source else {
            panic!("expected inline source");
        };
        assert_eq!(layout.seed, 7);
        assert_eq!(layout.wire_width, Some(9));
        assert_eq!(layout.wire_space, None);
        assert_eq!(layout.track_fill, Some(0.5));
        assert_eq!(spec.method, Method::FullChip);
        assert_eq!(spec.target_label(), "inline:seed=7");
    }

    #[test]
    fn parses_an_eco_job() {
        let spec = JobSpec::parse(
            r#"{"base_job": 4, "edit": {"rect": [10, 10, 18, 18], "fill": 0}, "scale": "tiny"}"#,
        )
        .unwrap();
        let CaseSource::Eco { base_job, edit } = spec.source else {
            panic!("expected eco source");
        };
        assert_eq!(base_job, 4);
        assert_eq!((edit.x0, edit.y0, edit.x1, edit.y1), (10, 10, 18, 18));
        assert_eq!(edit.fill, 0);
        assert_eq!(spec.method, Method::Ours);
        assert_eq!(spec.target_label(), "eco:base=4");
    }

    #[test]
    fn eco_base_job_accepts_the_string_ids_the_server_hands_out() {
        // `POST /v1/jobs` responds with `"id":"4"`, so clients echo strings.
        let spec = JobSpec::parse(r#"{"base_job": "4", "edit": {"rect": [0, 0, 8, 8]}}"#).unwrap();
        let CaseSource::Eco { base_job, edit } = spec.source else {
            panic!("expected eco source");
        };
        assert_eq!(base_job, 4);
        assert_eq!(edit.fill, 1, "fill defaults to drawing metal");
    }

    #[test]
    fn rejects_bad_specs() {
        for (body, needle) in [
            ("[]", "object"),
            ("{}", "needs"),
            (r#"{"case": 1, "layout": {"seed": 1}}"#, "exactly one"),
            (
                r#"{"case": 1, "base_job": 2, "edit": {"rect": [0,0,1,1]}}"#,
                "exactly one",
            ),
            (
                r#"{"case": 1, "edit": {"rect": [0,0,1,1]}}"#,
                "requires a \"base_job\"",
            ),
            (r#"{"base_job": 2}"#, "needs an \"edit\""),
            (r#"{"base_job": 2, "edit": {}}"#, "needs a \"rect\""),
            (
                r#"{"base_job": 2, "edit": {"rect": [0,0,1]}}"#,
                "[x0, y0, x1, y1]",
            ),
            (
                r#"{"base_job": 2, "edit": {"rect": [5,0,5,8]}}"#,
                "non-empty",
            ),
            (
                r#"{"base_job": 2, "edit": {"rect": [0,0,8,8], "fill": 2}}"#,
                "0 or 1",
            ),
            (
                r#"{"base_job": 2, "edit": {"rect": [0,0,8,8]}, "method": "full-chip"}"#,
                "only method",
            ),
            (r#"{"base_job": -1, "edit": {"rect": [0,0,8,8]}}"#, "job id"),
            (r#"{"case": 0}"#, "1..=20"),
            (r#"{"case": 21}"#, "1..=20"),
            (r#"{"case": 1.5}"#, "1..=20"),
            (r#"{"case": 1, "method": "magic"}"#, "unknown method"),
            (r#"{"case": 1, "scale": "huge"}"#, "scale"),
            (r#"{"case": 1, "timeout_ms": 0}"#, "positive"),
            (r#"{"layout": {}}"#, "seed"),
            (r#"{"layout": {"seed": 1, "wire_width": 0}}"#, "1..=1024"),
            (r#"{"layout": {"seed": 1, "track_fill": 1.5}}"#, "[0, 1]"),
            ("{", "invalid JSON"),
        ] {
            let err = JobSpec::parse(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err:?} missing {needle:?}");
        }
    }

    #[test]
    fn every_method_name_round_trips() {
        for method in Method::all() {
            let body = format!(r#"{{"case": 1, "method": "{}"}}"#, method_name(method));
            assert_eq!(JobSpec::parse(&body).unwrap().method, method);
        }
    }

    #[test]
    fn record_json_carries_state_specific_fields() {
        let spec = JobSpec::parse(r#"{"case": 2}"#).unwrap();
        let mut record = JobRecord {
            id: 5,
            trace: 41,
            spec,
            status: JobStatus::Queued,
        };
        let queued = record.to_json();
        assert!(queued.contains("\"status\":\"queued\""));
        assert!(queued.contains("\"trace\":41"));
        assert!(!queued.contains("metrics"));
        record.status = JobStatus::Done(JobOutcome {
            metrics: JobMetrics {
                l2: 100,
                pvband: 50,
                stitch: 1.25,
                tat_seconds: 0.5,
            },
            mask: MaskSummary {
                width: 128,
                height: 128,
                on_pixels: 4096,
                coverage: 0.25,
            },
            incremental: None,
            tiles_degraded: 2,
            queue_seconds: 0.1,
        });
        let done = record.to_json();
        assert!(done.contains("\"status\":\"done\""));
        assert!(done.contains("\"l2\":100"));
        assert!(done.contains("\"coverage\":0.25"));
        let parsed = Json::parse(&done).expect("well-formed job JSON");
        assert_eq!(
            parsed.path(&["metrics", "pvband"]).and_then(|v| v.as_u64()),
            Some(50)
        );
        assert_eq!(
            parsed.path(&["tiles_degraded"]).and_then(|v| v.as_u64()),
            Some(2)
        );
        record.status = JobStatus::Failed("deadline exceeded".into());
        let failed = record.to_json();
        assert!(failed.contains("\"error\":\"deadline exceeded\""));
    }

    #[test]
    fn incremental_stats_render_only_when_present() {
        let spec = JobSpec::parse(r#"{"base_job": 1, "edit": {"rect": [0, 0, 8, 8]}}"#).unwrap();
        let mut outcome = JobOutcome {
            metrics: JobMetrics {
                l2: 10,
                pvband: 5,
                stitch: 0.5,
                tat_seconds: 0.1,
            },
            mask: MaskSummary {
                width: 128,
                height: 128,
                on_pixels: 64,
                coverage: 0.004,
            },
            incremental: Some(IncrementalStats {
                tiles_reused: 5,
                tiles_resolved: 4,
                hit_ratio: 5.0 / 9.0,
            }),
            tiles_degraded: 0,
            queue_seconds: 0.0,
        };
        let record = |outcome: &JobOutcome| JobRecord {
            id: 9,
            trace: 1,
            spec: spec.clone(),
            status: JobStatus::Done(outcome.clone()),
        };
        let body = record(&outcome).to_json();
        let parsed = Json::parse(&body).expect("well-formed eco job JSON");
        assert_eq!(
            parsed
                .path(&["incremental", "tiles_reused"])
                .and_then(|v| v.as_u64()),
            Some(5)
        );
        assert_eq!(
            parsed
                .path(&["incremental", "tiles_resolved"])
                .and_then(|v| v.as_u64()),
            Some(4)
        );
        assert!(body.contains("\"target\":\"eco:base=1\""));
        outcome.incremental = None;
        assert!(!record(&outcome).to_json().contains("incremental"));
    }
}

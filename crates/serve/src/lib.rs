//! # ilt-serve
//!
//! A zero-dependency ILT job service over `std::net`: submit optimisation
//! jobs as JSON, poll their results, scrape telemetry — with admission
//! control in front and kernel/plan caching behind, so a long-lived
//! process amortises the expensive SOCS kernel construction across jobs
//! instead of across one batch run.
//!
//! ## Endpoints
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /v1/jobs` | Admit a job (JSON spec); `202` with an id, or `429` + `Retry-After` when the queue is full |
//! | `GET /v1/jobs/{id}` | Job status; when `done`, Table 1 quality metrics and a mask summary |
//! | `GET /healthz` | Liveness plus queue depth/capacity |
//! | `GET /metrics` | Prometheus text exposition of counters, gauges, histograms, and SLO burn rates |
//! | `GET /debug/jobs/{id}/trace` | The job's span tree (queue → session → tiles → assembly) from the flight recorder |
//! | `GET /debug/queue` | Admission state plus recent jobs with their trace ids |
//! | `GET /debug/caches` | Kernel-bank / FFT-plan / session-cache sizes and hit rates |
//! | `GET /debug/slo` | Burn rates per objective and window, with raw good/bad counts |
//! | `POST /admin/shutdown` | Start the graceful drain (in-flight and queued jobs still finish) |
//!
//! ## Job spec
//!
//! ```json
//! {"case": 3, "method": "ours", "scale": "tiny", "timeout_ms": 60000}
//! ```
//!
//! or with an inline layout instead of a suite case:
//!
//! ```json
//! {"layout": {"seed": 7, "wire_width": 9}, "method": "full-chip"}
//! ```
//!
//! See [`job::JobSpec::parse`] for the full field reference.
//!
//! ## Architecture
//!
//! One accept thread, one short-lived thread per connection, and a fixed
//! pool of job workers behind a bounded FIFO ([`queue::JobQueue`]). Each
//! worker owns a [`cache::SessionCache`]; the heavyweight state —
//! SOCS kernel banks, FFT plans — is shared process-wide through
//! [`ilt_litho::shared_bank`] and `ilt_fft::shared_plan`, so a warm
//! job at a known scale never rebuilds kernels. Requests are traced as
//! `request` spans and the service exports `serve.*` counters and
//! histograms alongside the solver telemetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod debug;
pub mod http;
pub mod job;
pub mod queue;
pub mod server;

pub use server::{start, DrainSummary, ServeConfig, ServeError, ServerHandle};

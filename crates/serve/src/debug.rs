//! Renderers for the live `/debug` introspection endpoints.
//!
//! Everything here reads *copies* — a flight-recorder snapshot, a job-list
//! excerpt, cache counts — gathered by the route handler in one short
//! registry lock, so rendering never holds a job-path lock. The functions
//! take plain data and return JSON strings, which keeps them unit-testable
//! without a running server.

use std::collections::BTreeMap;

use ilt_store::{EntryView, StoreStats};
use ilt_telemetry as tele;
use ilt_telemetry::json::{push_f64, push_str_literal};

/// One job's debug-view row (a cheap excerpt of the tracked record).
#[derive(Debug, Clone)]
pub(crate) struct JobDebug {
    pub id: u64,
    pub trace: u64,
    pub status: &'static str,
    pub target: String,
    pub method: &'static str,
    /// Milliseconds since the job was enqueued.
    pub age_ms: u64,
}

/// `GET /debug/queue`: admission state plus the most recent jobs (newest
/// last), each with its trace id so `/debug/jobs/{id}/trace` is one hop
/// away.
pub(crate) fn render_queue(
    depth: usize,
    capacity: usize,
    draining: bool,
    jobs: &[JobDebug],
) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"queue_depth\":{depth},\"queue_capacity\":{capacity},\"draining\":{draining},\"jobs\":["
    ));
    for (i, job) in jobs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"trace\":{},\"status\":",
            job.id, job.trace
        ));
        push_str_literal(&mut out, job.status);
        out.push_str(",\"target\":");
        push_str_literal(&mut out, &job.target);
        out.push_str(",\"method\":");
        push_str_literal(&mut out, job.method);
        out.push_str(&format!(",\"age_ms\":{}}}", job.age_ms));
    }
    out.push_str("]}");
    out
}

/// `GET /debug/caches`: entry counts and estimated resident bytes of the
/// process-wide kernel-bank and FFT-plan caches plus the per-worker
/// session caches, with their hit/miss counters and gauges pulled from
/// the telemetry snapshot.
pub(crate) fn render_caches(
    litho_banks: usize,
    litho_bank_bytes: u64,
    fft_plans: usize,
    fft_plan_bytes: u64,
    mask_store: &StoreStats,
    counters: &BTreeMap<String, u64>,
    gauges: &BTreeMap<String, f64>,
) -> String {
    let counter = |name: &str| counters.get(name).copied().unwrap_or(0);
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"litho_bank_cache\":{{\"entries\":{},\"estimated_bytes\":{},\"hits\":{},\"misses\":{}}}",
        litho_banks,
        litho_bank_bytes,
        counter("litho.bank_cache.hit"),
        counter("litho.bank_cache.miss")
    ));
    out.push_str(&format!(
        ",\"fft_plan_cache\":{{\"entries\":{},\"estimated_bytes\":{},\"hits\":{},\"misses\":{}}}",
        fft_plans,
        fft_plan_bytes,
        counter("fft.plan_cache.hit"),
        counter("fft.plan_cache.miss")
    ));
    out.push_str(&format!(
        ",\"mask_store\":{{\"entries\":{},\"bytes\":{},\"hits\":{},\"misses\":{},\
         \"evictions\":{}}}",
        mask_store.entries,
        mask_store.bytes,
        mask_store.hits,
        mask_store.misses,
        mask_store.evictions
    ));
    out.push_str(&format!(
        ",\"session_cache\":{{\"entries\":{},\"hits\":{},\"misses\":{}}}",
        gauges
            .get("serve.session_cache.entries")
            .copied()
            .unwrap_or(0.0),
        counter("serve.session_cache.hit"),
        counter("serve.session_cache.miss")
    ));
    out.push('}');
    out
}

/// `GET /debug/store`: the shared mask store's occupancy and hit/miss
/// statistics plus its most recently touched entries (newest first).
/// Digests and fingerprints render as fixed-width hex strings — they are
/// opaque 64-bit hashes, not quantities.
pub(crate) fn render_store(enabled: bool, stats: &StoreStats, entries: &[EntryView]) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"enabled\":{enabled},\"stats\":{{"));
    out.push_str(&format!(
        "\"hits\":{},\"misses\":{},\"puts\":{},\"evictions\":{},\"spills\":{},\
         \"disk_hits\":{},\"bytes\":{},\"entries\":{},\"hit_ratio\":",
        stats.hits,
        stats.misses,
        stats.puts,
        stats.evictions,
        stats.spills,
        stats.disk_hits,
        stats.bytes,
        stats.entries
    ));
    push_f64(&mut out, stats.hit_ratio());
    out.push_str("},\"entries\":[");
    for (i, entry) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"digest\":\"{:016x}\",\"geometry\":\"{:016x}\",\"config\":\"{:016x}\",\
             \"method\":",
            entry.digest, entry.geometry, entry.config
        ));
        push_str_literal(&mut out, entry.method);
        out.push_str(&format!(
            ",\"bytes\":{},\"version\":{}}}",
            entry.bytes, entry.version
        ));
    }
    out.push_str("]}");
    out
}

/// `GET /debug/jobs/{id}/trace`: the job's span forest as recorded by the
/// flight recorder, plus the counters attributed to its trace. In-flight
/// jobs show the spans that have already closed (tiles land as they
/// finish); finished jobs show the complete queue → session → tiles →
/// assembly tree.
pub(crate) fn render_job_trace(
    id: u64,
    trace: u64,
    status: &str,
    spans: &[tele::SpanEvent],
) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"id\":\"{id}\",\"trace\":{trace},\"status\":"));
    push_str_literal(&mut out, status);
    out.push_str(&format!(",\"span_count\":{}", spans.len()));
    out.push_str(",\"counters\":{");
    for (i, (name, v)) in tele::trace_counters(trace).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_literal(&mut out, name);
        out.push_str(&format!(":{v}"));
    }
    out.push('}');
    out.push_str(",\"spans_dropped_total\":");
    out.push_str(&tele::flight::spans_dropped().to_string());
    out.push_str(",\"spans\":");
    out.push_str(&tele::span_forest_json(spans));
    out.push('}');
    out
}

/// Shared footer for `/metrics`: the flight recorder's drop counter as a
/// Prometheus line, appended after the snapshot and SLO series.
pub(crate) fn obs_prometheus() -> String {
    let mut out = String::from("# TYPE ilt_obs_spans_dropped_total counter\n");
    out.push_str(&format!(
        "ilt_obs_spans_dropped_total {}\n",
        tele::flight::spans_dropped()
    ));
    out
}

/// Profiling footer for `/metrics`: process RSS gauges (when readable)
/// plus the tracking allocator's live/allocated byte counters.
pub(crate) fn prof_prometheus() -> String {
    let mut out = String::new();
    if let Some(rss) = ilt_prof::rss::read() {
        out.push_str("# TYPE ilt_process_rss_bytes gauge\n");
        out.push_str(&format!("ilt_process_rss_bytes {}\n", rss.current_bytes));
        out.push_str("# TYPE ilt_process_peak_rss_bytes gauge\n");
        out.push_str(&format!("ilt_process_peak_rss_bytes {}\n", rss.peak_bytes));
    }
    let alloc = ilt_prof::alloc::stats();
    if alloc.enabled {
        out.push_str("# TYPE ilt_alloc_live_bytes gauge\n");
        out.push_str(&format!("ilt_alloc_live_bytes {}\n", alloc.live_bytes));
        out.push_str("# TYPE ilt_alloc_allocated_bytes_total counter\n");
        out.push_str(&format!(
            "ilt_alloc_allocated_bytes_total {}\n",
            alloc.allocated_bytes
        ));
        out.push_str("# TYPE ilt_alloc_freed_bytes_total counter\n");
        out.push_str(&format!(
            "ilt_alloc_freed_bytes_total {}\n",
            alloc.freed_bytes
        ));
    }
    out
}

/// `GET /debug/profile`: the sampler's state plus the accumulated profile
/// — collapsed-stack text (flamegraph-ready, embedded as one JSON string)
/// and the top-N self-time leaves.
pub(crate) fn render_profile() -> String {
    let (samples, ticks) = ilt_prof::cpu::sample_counts();
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"sampler_running\":{},\"sampler_hz\":{},\"samples\":{samples},\"ticks\":{ticks}",
        ilt_prof::sampler_running(),
        ilt_prof::sampler_hz()
    ));
    out.push_str(",\"top_self\":[");
    for (i, (leaf, count)) in ilt_prof::cpu::top_self(10).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"frame\":");
        push_str_literal(&mut out, leaf);
        out.push_str(&format!(",\"samples\":{count}}}"));
    }
    out.push_str("],\"samples_per_stage\":{");
    for (i, (stage, count)) in ilt_prof::cpu::samples_per_stage().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_literal(&mut out, stage);
        out.push_str(&format!(":{count}"));
    }
    out.push_str("},\"collapsed\":");
    push_str_literal(&mut out, &ilt_prof::collapsed());
    out.push('}');
    out
}

/// `GET /debug/memory`: current/peak RSS, the tracking allocator's
/// global and per-stage counters, and the heaviest-allocating traces
/// (job ids are resolved by the route handler and passed in as
/// `(trace, job_id)` pairs; unresolved traces render without a job).
pub(crate) fn render_memory(trace_jobs: &[(u64, Option<u64>)]) -> String {
    let mut out = String::from("{");
    match ilt_prof::rss::read() {
        Some(rss) => out.push_str(&format!(
            "\"rss\":{{\"current_bytes\":{},\"peak_bytes\":{},\"window_peak_bytes\":{}}}",
            rss.current_bytes,
            rss.peak_bytes,
            ilt_prof::rss::window_peak()
        )),
        None => out.push_str("\"rss\":null"),
    }
    let alloc = ilt_prof::alloc::stats();
    out.push_str(&format!(
        ",\"alloc\":{{\"enabled\":{},\"allocated_bytes\":{},\"allocation_calls\":{},\
         \"freed_bytes\":{},\"free_calls\":{},\"live_bytes\":{},\"peak_live_bytes\":{}",
        alloc.enabled,
        alloc.allocated_bytes,
        alloc.allocation_calls,
        alloc.freed_bytes,
        alloc.free_calls,
        alloc.live_bytes,
        alloc.peak_live_bytes
    ));
    out.push_str(",\"stages\":{");
    for (i, stage) in alloc.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_literal(&mut out, stage.stage.name());
        out.push_str(&format!(
            ":{{\"bytes\":{},\"calls\":{}}}",
            stage.bytes, stage.calls
        ));
    }
    out.push_str("}}");
    out.push_str(",\"top_traces\":[");
    for (i, (trace, job)) in trace_jobs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (bytes, calls) = ilt_prof::alloc::trace_bytes(*trace);
        out.push_str(&format!("{{\"trace\":{trace},\"job\":"));
        match job {
            Some(id) => out.push_str(&format!("\"{id}\"")),
            None => out.push_str("null"),
        }
        out.push_str(&format!(",\"bytes\":{bytes},\"calls\":{calls}}}"));
    }
    out.push_str(&format!(
        "],\"trace_attribution_dropped\":{}}}",
        ilt_prof::alloc::trace_attribution_dropped()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_json::Json;

    #[test]
    fn queue_render_is_well_formed() {
        let jobs = vec![JobDebug {
            id: 3,
            trace: 17,
            status: "running",
            target: "case2".to_string(),
            method: "ours",
            age_ms: 12,
        }];
        let body = render_queue(1, 8, false, &jobs);
        let parsed = Json::parse(&body).expect("valid JSON");
        assert_eq!(
            parsed.path(&["queue_depth"]).and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            parsed
                .path(&["jobs"])
                .and_then(|v| v.as_arr())
                .map(|a| a.len()),
            Some(1)
        );
        assert!(body.contains("\"trace\":17"));
    }

    #[test]
    fn caches_render_is_well_formed() {
        let mut counters = BTreeMap::new();
        counters.insert("litho.bank_cache.hit".to_string(), 4u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("serve.session_cache.entries".to_string(), 2.0);
        let store = StoreStats {
            hits: 9,
            misses: 1,
            puts: 10,
            evictions: 0,
            spills: 0,
            disk_hits: 0,
            bytes: 320000,
            entries: 9,
        };
        let body = render_caches(1, 65536, 3, 4096, &store, &counters, &gauges);
        let parsed = Json::parse(&body).expect("valid JSON");
        assert_eq!(
            parsed
                .path(&["litho_bank_cache", "hits"])
                .and_then(|v| v.as_u64()),
            Some(4)
        );
        assert_eq!(
            parsed
                .path(&["litho_bank_cache", "estimated_bytes"])
                .and_then(|v| v.as_u64()),
            Some(65536)
        );
        assert_eq!(
            parsed
                .path(&["fft_plan_cache", "entries"])
                .and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            parsed
                .path(&["fft_plan_cache", "estimated_bytes"])
                .and_then(|v| v.as_u64()),
            Some(4096)
        );
        assert!(body.contains("\"session_cache\":{\"entries\":2"));
        assert_eq!(
            parsed
                .path(&["mask_store", "entries"])
                .and_then(|v| v.as_u64()),
            Some(9)
        );
        assert_eq!(
            parsed
                .path(&["mask_store", "hits"])
                .and_then(|v| v.as_u64()),
            Some(9)
        );
    }

    #[test]
    fn store_render_is_well_formed() {
        let stats = StoreStats {
            hits: 3,
            misses: 1,
            puts: 4,
            evictions: 1,
            spills: 1,
            disk_hits: 1,
            bytes: 1024,
            entries: 2,
        };
        let entries = vec![EntryView {
            digest: 0xdead_beef,
            geometry: 7,
            config: 9,
            method: "ours:pixel",
            bytes: 512,
            version: 2,
        }];
        let body = render_store(true, &stats, &entries);
        let parsed = Json::parse(&body).expect("valid JSON");
        assert_eq!(
            parsed.path(&["stats", "hits"]).and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            parsed
                .path(&["stats", "hit_ratio"])
                .and_then(|v| v.as_f64()),
            Some(0.75)
        );
        let listed = parsed
            .path(&["entries"])
            .and_then(|v| v.as_arr())
            .expect("entry array");
        assert_eq!(listed.len(), 1);
        assert!(body.contains("\"digest\":\"00000000deadbeef\""));
        assert!(body.contains("\"method\":\"ours:pixel\""));
        assert!(body.contains("\"version\":2"));
    }

    #[test]
    fn profile_render_is_well_formed() {
        let body = render_profile();
        let parsed = Json::parse(&body).expect("valid JSON");
        assert!(parsed.path(&["sampler_running"]).is_some());
        assert!(parsed.path(&["collapsed"]).is_some());
        assert!(parsed
            .path(&["top_self"])
            .and_then(|v| v.as_arr())
            .is_some());
    }

    #[test]
    fn memory_render_is_well_formed() {
        let body = render_memory(&[(42, Some(7)), (99, None)]);
        let parsed = Json::parse(&body).expect("valid JSON");
        // Linux always reads an RSS; elsewhere the field is null.
        assert!(body.contains("\"rss\":"));
        assert!(parsed.path(&["alloc", "stages", "fine"]).is_some());
        let traces = parsed
            .path(&["top_traces"])
            .and_then(|v| v.as_arr())
            .expect("trace array");
        assert_eq!(traces.len(), 2);
        assert!(body.contains("\"job\":\"7\""));
        assert!(body.contains("\"job\":null"));
    }

    #[test]
    fn job_trace_render_is_well_formed_when_empty() {
        let body = render_job_trace(9, 1234567, "queued", &[]);
        let parsed = Json::parse(&body).expect("valid JSON");
        assert_eq!(
            parsed.path(&["trace"]).and_then(|v| v.as_u64()),
            Some(1234567)
        );
        assert_eq!(
            parsed.path(&["span_count"]).and_then(|v| v.as_u64()),
            Some(0)
        );
    }
}

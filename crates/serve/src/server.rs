//! The job service: accept loop, connection handling, job workers, and
//! graceful drain.
//!
//! Threading model: one accept thread spawning one (detached, bounded by
//! read timeouts) thread per connection, plus a fixed pool of job workers
//! popping the bounded [`JobQueue`]. Connection threads only touch the
//! registry and queue under short lock holds; all solving happens on the
//! workers, each of which owns a [`SessionCache`] so repeated jobs at the
//! same scale skip kernel construction entirely.
//!
//! Shutdown is a two-stage drain. Stage one (`POST /admin/shutdown` or
//! [`ServerHandle::initiate_drain`]) closes the queue: new submissions get
//! `503`, but workers keep running until every queued and in-flight job
//! has finished, and status polls keep working throughout. Stage two
//! ([`ServerHandle::shutdown`] / [`ServerHandle::wait`]) joins the
//! workers, then stops the accept loop (a loopback self-connect unblocks
//! `accept`) and reports what the drain completed.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use ilt_fault::points;
use ilt_grid::BitGrid;
use ilt_layout::generate_clip;
use ilt_telemetry as tele;
use ilt_telemetry::slo::{SloConfig, SloEngine};
use ilt_tile::{Partition, TileExecutor};

use ilt_core::experiment::Method;
use ilt_core::Session;

use crate::cache::SessionCache;
use crate::debug::{self, JobDebug};
use crate::http::{Request, Response};
use crate::job::{
    method_name, CaseSource, EcoEdit, IncrementalStats, JobMetrics, JobOutcome, JobRecord, JobSpec,
    JobStatus, MaskSummary,
};
use crate::queue::{JobQueue, PushError, RETRY_AFTER_SECONDS};

/// The process-wide SLO burn-rate engine, configured from `ILT_SLO` /
/// `ILT_SLO_WINDOWS` on first use and fed by every job completion.
static SLO: OnceLock<SloEngine> = OnceLock::new();

fn slo_engine() -> &'static SloEngine {
    SLO.get_or_init(|| SloEngine::new(SloConfig::from_env()))
}

/// Idle keep-alive connections are dropped after this long, which also
/// bounds how long a connection thread can outlive the server.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Finished jobs are evicted oldest-first once the registry holds this
/// many records, so a long-lived server's memory stays bounded.
const MAX_JOBS_RETAINED: usize = 4096;

/// Server configuration (see the `ILT_SERVE_*` environment variables).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`ILT_SERVE_ADDR`, default `127.0.0.1:8117`; use port
    /// 0 to let the OS pick, e.g. in tests).
    pub addr: String,
    /// Queue depth for admission control (`ILT_SERVE_QUEUE`, default 64).
    pub queue_depth: usize,
    /// Job worker threads (`ILT_SERVE_WORKERS`, default 1).
    pub workers: usize,
    /// Worker threads for per-tile execution inside each job
    /// (`ILT_WORKERS`, default 1).
    pub tile_workers: usize,
    /// Intra-tile threads (per-kernel / FFT row-batch parallelism,
    /// `ILT_INNER_THREADS`, default 1). Capped so
    /// `workers x tile_workers x inner_threads` never exceeds the
    /// available cores.
    pub inner_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8117".to_string(),
            queue_depth: 64,
            workers: 1,
            tile_workers: 1,
            inner_threads: 1,
        }
    }
}

impl ServeConfig {
    /// Reads the configuration from the environment, falling back to the
    /// defaults above and warning on stderr about unparsable values.
    pub fn from_env() -> Self {
        let defaults = ServeConfig::default();
        let workers = env_usize("ILT_SERVE_WORKERS", defaults.workers).max(1);
        let tile_workers = env_usize("ILT_WORKERS", defaults.tile_workers).max(1);
        let inner_threads = capped_inner_threads(
            env_usize("ILT_INNER_THREADS", defaults.inner_threads).max(1),
            workers.saturating_mul(tile_workers),
            ilt_par::available_cores(),
        );
        // Publish the budget so every simulator the job workers build picks
        // it up.
        ilt_par::set_inner_threads(inner_threads);
        ServeConfig {
            addr: std::env::var("ILT_SERVE_ADDR").unwrap_or(defaults.addr),
            queue_depth: env_usize("ILT_SERVE_QUEUE", defaults.queue_depth).max(1),
            workers,
            tile_workers,
            inner_threads,
        }
    }
}

/// Caps the inner-thread budget so concurrent tile solves
/// (`outer` = job workers x tile workers) never oversubscribe the machine.
fn capped_inner_threads(requested: usize, outer: usize, cores: usize) -> usize {
    if outer.saturating_mul(requested) <= cores {
        return requested;
    }
    let capped = (cores / outer.max(1)).max(1);
    if capped < requested {
        eprintln!(
            "warning: ILT_INNER_THREADS={requested} with {outer} concurrent tile solves \
             oversubscribes {cores} cores; capping inner threads to {capped}"
        );
    }
    capped
}

fn env_usize(var: &str, fallback: usize) -> usize {
    match std::env::var(var) {
        Err(_) => fallback,
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("warning: invalid {var}={raw:?}; using default {fallback}");
                fallback
            }
        },
    }
}

/// A job plus the timing state the registry tracks alongside it. The
/// job's trace id lives on the record itself (`record.trace`), assigned
/// at admission so even a job that never reaches a worker is addressable
/// in `/debug/jobs/{id}/trace`.
#[derive(Debug)]
struct Tracked {
    record: JobRecord,
    enqueued: Instant,
    deadline: Option<Instant>,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    jobs: Mutex<Vec<Tracked>>,
    queue: JobQueue,
    next_id: AtomicU64,
    /// Submissions refused, queue draining, workers exit when dry.
    draining: AtomicBool,
    /// Accept loop exits (set only after workers are joined).
    stopped: AtomicBool,
}

impl Shared {
    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, Vec<Tracked>> {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn with_job<R>(&self, id: u64, f: impl FnOnce(&mut Tracked) -> R) -> Option<R> {
        self.lock_jobs()
            .iter_mut()
            .find(|t| t.record.id == id)
            .map(f)
    }
}

/// What the drain finished with, returned by [`ServerHandle::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Jobs that reached `done`.
    pub completed: u64,
    /// Jobs that reached `failed`.
    pub failed: u64,
    /// Jobs still `queued`/`running` after the drain — always 0 unless a
    /// worker itself died.
    pub unfinished: u64,
}

/// Failures starting the server.
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind the listen address.
    Bind(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "cannot bind listen address: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A running server. Dropping the handle leaves the server running
/// (detached); call [`shutdown`](Self::shutdown) or [`wait`](Self::wait)
/// to join it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Starts the drain: submissions now get `503` and workers exit once
    /// the queue is dry. Idempotent; status polls keep working.
    pub fn initiate_drain(&self) {
        initiate_drain(&self.shared);
    }

    /// Drains and joins everything: initiates the drain, waits for every
    /// queued and in-flight job to finish, stops the accept loop.
    pub fn shutdown(mut self) -> DrainSummary {
        self.initiate_drain();
        self.finish()
    }

    /// Like [`shutdown`](Self::shutdown) but without initiating the drain
    /// itself — blocks until something else does (`POST /admin/shutdown`).
    pub fn wait(mut self) -> DrainSummary {
        self.finish()
    }

    fn finish(&mut self) -> DrainSummary {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        // Unblock `accept` so the loop observes the stop flag.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let mut summary = DrainSummary {
            completed: 0,
            failed: 0,
            unfinished: 0,
        };
        for tracked in self.shared.lock_jobs().iter() {
            match tracked.record.status {
                JobStatus::Done(_) => summary.completed += 1,
                JobStatus::Failed(_) => summary.failed += 1,
                JobStatus::Queued | JobStatus::Running => summary.unfinished += 1,
            }
        }
        summary
    }
}

fn initiate_drain(shared: &Shared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
}

/// Binds the address and starts the accept loop and worker pool.
///
/// # Errors
///
/// [`ServeError::Bind`] if the listen address is unavailable.
pub fn start(config: ServeConfig) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&config.addr).map_err(ServeError::Bind)?;
    let addr = listener.local_addr().map_err(ServeError::Bind)?;
    let shared = Arc::new(Shared {
        queue: JobQueue::new(config.queue_depth),
        config,
        addr,
        jobs: Mutex::new(Vec::new()),
        next_id: AtomicU64::new(1),
        draining: AtomicBool::new(false),
        stopped: AtomicBool::new(false),
    });
    let workers = (0..shared.config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ilt-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("cannot spawn worker thread")
        })
        .collect();
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("ilt-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("cannot spawn accept thread")
    };
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Detached: bounded by READ_TIMEOUT, not joined on shutdown.
        let _ = std::thread::Builder::new()
            .name("ilt-serve-conn".to_string())
            .spawn(move || handle_connection(&shared, stream));
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match Request::read_from(&mut reader) {
            Ok(None) => break,
            Ok(Some(request)) => {
                let close = request.wants_close();
                let mut span = tele::span(tele::names::REQUEST);
                let response = route(shared, &request);
                span.add_field("method", request.method.as_str());
                span.add_field("path", request.path.as_str());
                span.add_field("status", u64::from(response.status));
                drop(span);
                if ilt_fault::should_fire(points::SERVE_CONN_DROP) {
                    // Hang up without answering, as a flaky network would.
                    tele::counter_add("serve.http.conn_dropped", 1);
                    break;
                }
                if response.write_to(&mut writer).is_err() {
                    break;
                }
                if close {
                    break;
                }
            }
            Err(error) => {
                // Answer with the typed status when the socket still
                // works (400/408/411/413/431), then close; pure IO
                // failures get a silent close — nobody is listening.
                if let (Some(status), Some(message)) = (error.status(), error.client_message()) {
                    tele::counter_add("serve.http.rejected", 1);
                    let _ = Response::error(status, message)
                        .with_header("Connection", "close".to_string())
                        .write_to(&mut writer);
                }
                break;
            }
        }
    }
    tele::flush_thread();
}

fn route(shared: &Shared, request: &Request) -> Response {
    tele::counter_add("serve.http.requests", 1);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => health(shared),
        ("GET", "/metrics") => metrics(),
        ("POST", "/v1/jobs") => submit(shared, &request.body),
        ("POST", "/admin/shutdown") => {
            initiate_drain(shared);
            Response::json(200, "{\"status\":\"draining\"}".to_string())
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => job_status(shared, path),
        ("GET", "/debug/queue") => debug_queue(shared),
        ("GET", "/debug/caches") => debug_caches(),
        ("GET", "/debug/store") => debug_store(),
        ("GET", "/debug/slo") => Response::json(200, slo_engine().to_json()),
        ("GET", "/debug/profile") => Response::json(200, debug::render_profile()),
        ("GET", "/debug/memory") => debug_memory(shared),
        ("GET", path) if path.starts_with("/debug/jobs/") => debug_job_trace(shared, path),
        (
            _,
            "/healthz" | "/metrics" | "/v1/jobs" | "/admin/shutdown" | "/debug/queue"
            | "/debug/caches" | "/debug/store" | "/debug/slo" | "/debug/profile" | "/debug/memory",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such resource"),
    }
}

/// `GET /metrics`: the telemetry snapshot (counters, gauges, histogram
/// summaries) plus the SLO burn-rate series and the flight recorder's
/// drop counter.
fn metrics() -> Response {
    let mut body = tele::snapshot().to_prometheus();
    body.push_str(&slo_engine().to_prometheus());
    body.push_str(&debug::obs_prometheus());
    body.push_str(&debug::prof_prometheus());
    Response::text(200, body)
}

/// `GET /debug/queue`: one short registry lock to excerpt the job list,
/// then render outside it.
fn debug_queue(shared: &Shared) -> Response {
    const MAX_JOBS_LISTED: usize = 64;
    let jobs: Vec<JobDebug> = {
        let jobs = shared.lock_jobs();
        jobs.iter()
            .rev()
            .take(MAX_JOBS_LISTED)
            .map(|t| JobDebug {
                id: t.record.id,
                trace: t.record.trace,
                status: t.record.status.name(),
                target: t.record.spec.target_label(),
                method: method_name(t.record.spec.method),
                age_ms: t.enqueued.elapsed().as_millis() as u64,
            })
            .collect()
    };
    Response::json(
        200,
        debug::render_queue(
            shared.queue.len(),
            shared.queue.depth(),
            shared.draining.load(Ordering::SeqCst),
            &jobs,
        ),
    )
}

/// `GET /debug/caches`: process-wide cache sizes plus hit/miss counters.
fn debug_caches() -> Response {
    let snapshot = tele::snapshot();
    Response::json(
        200,
        debug::render_caches(
            ilt_litho::cached_bank_count(),
            ilt_litho::cached_bank_bytes(),
            ilt_fft::cached_plan_count(),
            ilt_fft::cached_plan_bytes(),
            &ilt_store::shared_store().stats(),
            &snapshot.counters,
            &snapshot.gauges,
        ),
    )
}

/// `GET /debug/store`: occupancy and hit/miss statistics of the shared
/// mask store, plus its most recently touched entries.
fn debug_store() -> Response {
    let store = ilt_store::shared_store();
    Response::json(
        200,
        debug::render_store(
            ilt_store::MaskStore::enabled(),
            &store.stats(),
            &store.entries(32),
        ),
    )
}

/// `GET /debug/memory`: RSS, allocator counters, and the heaviest
/// allocating traces with their job ids resolved through one short
/// registry lock.
fn debug_memory(shared: &Shared) -> Response {
    let top = ilt_prof::alloc::trace_top(10);
    let trace_jobs: Vec<(u64, Option<u64>)> = {
        let jobs = shared.lock_jobs();
        top.iter()
            .map(|(trace, _, _)| {
                let job = jobs
                    .iter()
                    .find(|t| t.record.trace == *trace)
                    .map(|t| t.record.id);
                (*trace, job)
            })
            .collect()
    };
    Response::json(200, debug::render_memory(&trace_jobs))
}

/// `GET /debug/jobs/{id}/trace`: the job's span tree from the flight
/// recorder. Works for finished and in-flight jobs (an in-flight job
/// shows the spans closed so far).
fn debug_job_trace(shared: &Shared, path: &str) -> Response {
    let raw = &path["/debug/jobs/".len()..];
    let Some(raw_id) = raw.strip_suffix("/trace") else {
        return Response::error(404, "no such resource");
    };
    let Ok(id) = raw_id.parse::<u64>() else {
        return Response::error(400, "job ids are decimal integers");
    };
    let Some((trace, status)) = shared.with_job(id, |t| (t.record.trace, t.record.status.name()))
    else {
        return Response::error(404, "no such job");
    };
    // Flush this connection thread's buffer only; worker threads flush at
    // the end of every job, so finished jobs are fully visible.
    tele::flush_thread();
    let spans = tele::flight::trace_spans(trace);
    Response::json(200, debug::render_job_trace(id, trace, status, &spans))
}

fn health(shared: &Shared) -> Response {
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    Response::json(
        200,
        format!(
            "{{\"status\":\"{status}\",\"queue_depth\":{},\"queue_capacity\":{},\"workers\":{}}}",
            shared.queue.len(),
            shared.queue.depth(),
            shared.config.workers
        ),
    )
}

fn submit(shared: &Shared, body: &[u8]) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "server is draining; submit elsewhere");
    }
    let Ok(body) = std::str::from_utf8(body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let spec = match JobSpec::parse(body) {
        Ok(spec) => spec,
        Err(message) => return Response::error(400, &message),
    };
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let now = Instant::now();
    {
        let mut jobs = shared.lock_jobs();
        if jobs.len() >= MAX_JOBS_RETAINED {
            if let Some(oldest_finished) = jobs
                .iter()
                .position(|t| matches!(t.record.status, JobStatus::Done(_) | JobStatus::Failed(_)))
            {
                jobs.remove(oldest_finished);
            }
        }
        jobs.push(Tracked {
            record: JobRecord {
                id,
                trace: tele::next_trace_id().0,
                spec: spec.clone(),
                status: JobStatus::Queued,
            },
            enqueued: now,
            deadline: spec.timeout_ms.map(|ms| now + Duration::from_millis(ms)),
        });
    }
    // The injected overflow takes the exact production rejection path —
    // 429 body, Retry-After hint, and registry cleanup included.
    let pushed = if ilt_fault::should_fire(points::SERVE_QUEUE_FULL) {
        Err(PushError::Full)
    } else {
        shared.queue.push(id)
    };
    match pushed {
        Ok(position) => {
            tele::counter_add("serve.jobs.accepted", 1);
            tele::gauge_set("serve.queue.depth", shared.queue.len() as f64);
            Response::json(
                202,
                format!("{{\"id\":\"{id}\",\"status\":\"queued\",\"position\":{position}}}"),
            )
        }
        Err(reason) => {
            shared.lock_jobs().retain(|t| t.record.id != id);
            match reason {
                PushError::Full => {
                    tele::counter_add("serve.jobs.rejected_full", 1);
                    Response::error(429, "job queue is full; retry later")
                        .with_header("Retry-After", RETRY_AFTER_SECONDS.to_string())
                }
                PushError::Closed => Response::error(503, "server is draining; submit elsewhere"),
            }
        }
    }
}

fn job_status(shared: &Shared, path: &str) -> Response {
    let raw = &path["/v1/jobs/".len()..];
    let Ok(id) = raw.parse::<u64>() else {
        return Response::error(400, "job ids are decimal integers");
    };
    match shared.with_job(id, |t| t.record.to_json()) {
        Some(body) => Response::json(200, body),
        None => Response::error(404, "no such job"),
    }
}

fn worker_loop(shared: &Shared) {
    let mut cache = SessionCache::new();
    let executor = TileExecutor::new(shared.config.tile_workers);
    while let Some(id) = shared.queue.pop() {
        run_job(shared, &mut cache, &executor, id);
        tele::flush_thread();
    }
}

fn run_job(shared: &Shared, cache: &mut SessionCache, executor: &TileExecutor, id: u64) {
    let Some((spec, trace, enqueued, deadline)) = shared.with_job(id, |t| {
        t.record.status = JobStatus::Running;
        (
            t.record.spec.clone(),
            t.record.trace,
            t.enqueued,
            t.deadline,
        )
    }) else {
        return; // Submission lost the registry race; nothing to run.
    };
    let picked_up = Instant::now();
    let queue_seconds = enqueued.elapsed().as_secs_f64();
    tele::record_value("serve.job.queue_us", (queue_seconds * 1e6) as u64);
    tele::gauge_set("serve.queue.depth", shared.queue.len() as f64);
    tele::gauge_add("serve.jobs.in_flight", 1.0);
    // The admission-assigned trace flows from here through the session,
    // the tile executor's workers, and the solver loops below; declared
    // before the job span so the span closes (and records) while the
    // trace is still in scope.
    let _trace_scope = tele::trace_scope(Some(tele::TraceId(trace)));
    let mut job_span = tele::span(tele::names::SERVE_JOB);
    job_span.add_field("job", id);
    job_span.add_field("target", spec.target_label());
    job_span.add_field("method", method_name(spec.method));
    job_span.add_field("scale", spec.scale.as_str());
    // Backfill the wait as a queue span, so the trace tree shows queue
    // time next to solve time.
    tele::record_span_at(
        tele::names::QUEUE,
        enqueued,
        picked_up,
        vec![("job", tele::FieldValue::U64(id))],
    );
    let finish = |status: JobStatus| {
        tele::counter_add(
            match status {
                JobStatus::Done(_) => "serve.jobs.completed",
                _ => "serve.jobs.failed",
            },
            1,
        );
        let failed = !matches!(status, JobStatus::Done(_));
        let degraded = matches!(&status, JobStatus::Done(o) if o.tiles_degraded > 0);
        slo_engine().observe_job(
            (enqueued.elapsed().as_secs_f64() * 1e6) as u64,
            failed,
            degraded,
        );
        tele::gauge_add("serve.jobs.in_flight", -1.0);
        shared.with_job(id, |t| t.record.status = status);
    };
    if deadline.is_some_and(|d| Instant::now() > d) {
        finish(JobStatus::Failed(format!(
            "deadline exceeded after {queue_seconds:.3}s in queue"
        )));
        return;
    }
    // Incremental jobs name a prior job as their base; resolve its spec
    // through the registry (the only place job ids mean anything) so the
    // worker can re-derive the base target deterministically.
    let base_spec = match &spec.source {
        CaseSource::Eco { base_job, .. } => match resolve_base(shared, *base_job, &spec) {
            Ok(base) => Some(base),
            Err(message) => {
                finish(JobStatus::Failed(message));
                return;
            }
        },
        _ => None,
    };
    // `serve.deadline` simulates a budget that expires mid-solve: the job
    // passed admission, but the solver's in-loop deadline checks trip on
    // the first iteration.
    let solve_deadline = if ilt_fault::should_fire(points::SERVE_DEADLINE) {
        let now = Instant::now();
        Some(now.checked_sub(Duration::from_millis(1)).unwrap_or(now))
    } else {
        deadline
    };
    let started = Instant::now();
    let outcome = {
        // Publish the deadline to this thread and, via the tile
        // executor, to every tile worker, so iteration loops deep in the
        // solvers can stop instead of burning a blown budget.
        let _scope = ilt_fault::deadline::scope(solve_deadline);
        catch_unwind(AssertUnwindSafe(|| {
            execute(&spec, base_spec.as_ref(), cache, executor)
        }))
    };
    tele::record_value(
        "serve.job.run_us",
        (started.elapsed().as_secs_f64() * 1e6) as u64,
    );
    let status = match outcome {
        Ok(Ok(mut outcome)) => {
            outcome.queue_seconds = queue_seconds;
            if deadline.is_some_and(|d| Instant::now() > d) {
                JobStatus::Failed("deadline exceeded while solving".to_string())
            } else {
                if outcome.tiles_degraded > 0 {
                    tele::counter_add("serve.jobs.degraded", 1);
                }
                JobStatus::Done(outcome)
            }
        }
        Ok(Err(message)) => JobStatus::Failed(message),
        Err(panic) => JobStatus::Failed(format!("job panicked: {}", panic_message(&panic))),
    };
    finish(status);
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// Validates and resolves the base job of an incremental submission.
fn resolve_base(shared: &Shared, base_job: u64, spec: &JobSpec) -> Result<JobSpec, String> {
    let Some(base) = shared.with_job(base_job, |t| t.record.spec.clone()) else {
        return Err(format!("base job {base_job} not found"));
    };
    if matches!(base.source, CaseSource::Eco { .. }) {
        return Err(format!(
            "base job {base_job} is itself incremental; chain from a \"case\" or \"layout\" job"
        ));
    }
    if base.method != Method::Ours {
        return Err(format!(
            "base job {base_job} ran method {:?}; incremental re-solves need an \"ours\" base",
            method_name(base.method)
        ));
    }
    if base.scale != spec.scale {
        return Err(format!(
            "scale mismatch: this job is {:?} but base job {base_job} ran at {:?}",
            spec.scale, base.scale
        ));
    }
    // s_max feeds the config fingerprint the mask store keys on: a
    // different hierarchy depth would silently miss every stored tile and
    // run cold, so reject the mismatch instead. `stream` is canonicalised
    // out of the fingerprint (bit-identical masks) and needs no check.
    if base.s_max != spec.s_max {
        return Err(format!(
            "s_max mismatch: this job requests {:?} but base job {base_job} ran with {:?}; \
             stored tiles would not warm-start",
            spec.s_max, base.s_max
        ));
    }
    Ok(base)
}

/// Applies a rectangular edit to a base layout.
fn apply_edit(base: &BitGrid, edit: &EcoEdit) -> Result<BitGrid, String> {
    if edit.x1 > base.width() || edit.y1 > base.height() {
        return Err(format!(
            "edit rect [{}, {}, {}, {}] exceeds the {}x{} clip",
            edit.x0,
            edit.y0,
            edit.x1,
            edit.y1,
            base.width(),
            base.height()
        ));
    }
    let mut edited = base.clone();
    for y in edit.y0..edit.y1 {
        for x in edit.x0..edit.x1 {
            edited.set(x, y, edit.fill);
        }
    }
    Ok(edited)
}

/// Runs one job on this worker's session: resolve the target layout, run
/// the requested flow, inspect the result over the whole clip. Incremental
/// jobs re-derive their base job's target (resolved by the caller),
/// apply the edit, and warm-start from the shared mask store; plain
/// `ours` jobs populate the store so later edits can warm-start from them.
fn execute(
    spec: &JobSpec,
    base: Option<&JobSpec>,
    cache: &mut SessionCache,
    executor: &TileExecutor,
) -> Result<JobOutcome, String> {
    let session = cache
        .session_with(&spec.scale, spec.s_max, spec.stream)
        .map_err(|e| format!("session setup failed: {e}"))?;
    if let CaseSource::Eco { edit, .. } = &spec.source {
        let base = base.expect("eco jobs resolve their base before execution");
        let base_target = resolve_target(base, session.config());
        let edited = apply_edit(&base_target, edit)?;
        let outcome = session
            .run_incremental(&base_target, &edited, executor)
            .map_err(flow_error)?;
        tele::record_value("serve.job.tiles_reused", outcome.tiles_reused as u64);
        tele::record_value("serve.job.tiles_resolved", outcome.tiles_resolved as u64);
        let stats = IncrementalStats {
            tiles_reused: outcome.tiles_reused,
            tiles_resolved: outcome.tiles_resolved,
            hit_ratio: outcome.hit_ratio(),
        };
        return summarize(session, &edited, &outcome.flow, Some(stats));
    }
    let target = resolve_target(spec, session.config());
    let flow = if spec.method == Method::Ours {
        session.run_and_store(&target, executor)
    } else {
        session.run_method(spec.method, &target, executor)
    }
    .map_err(flow_error)?;
    summarize(session, &target, &flow, None)
}

fn flow_error(e: ilt_core::CoreError) -> String {
    if e.is_deadline_exceeded() {
        "deadline exceeded while solving".to_string()
    } else {
        format!("flow failed: {e}")
    }
}

/// Inspects a finished flow over the whole clip and assembles the outcome.
fn summarize(
    session: &Session,
    target: &BitGrid,
    flow: &ilt_core::flows::FlowResult,
    incremental: Option<IncrementalStats>,
) -> Result<JobOutcome, String> {
    let partition = Partition::new(target.width(), target.height(), session.config().partition)
        .map_err(|e| format!("partitioning failed: {e}"))?;
    let lines = partition.stitch_lines();
    let (quality, stitch) = session
        .inspect_mask(&lines, target, &flow.mask)
        .map_err(|e| format!("inspection failed: {e}"))?;
    let binary = flow.mask.threshold(0.5);
    let on_pixels = binary.count_ones();
    Ok(JobOutcome {
        metrics: JobMetrics {
            l2: quality.l2,
            pvband: quality.pvband,
            stitch: stitch.total,
            tat_seconds: flow.wall_seconds,
        },
        mask: MaskSummary {
            width: binary.width(),
            height: binary.height(),
            on_pixels,
            coverage: on_pixels as f64 / binary.len() as f64,
        },
        incremental,
        tiles_degraded: flow.degraded.len(),
        queue_seconds: 0.0, // filled in by the caller, which knows the wait
    })
}

/// Materialises the job's target layout at the session's clip size.
fn resolve_target(spec: &JobSpec, config: &ilt_core::ExperimentConfig) -> BitGrid {
    match &spec.source {
        // Suite case k is, by construction, the generator at seed k.
        CaseSource::Suite(id) => generate_clip(&config.generator, *id as u64),
        CaseSource::Inline(layout) => {
            let mut generator = config.generator;
            if let Some(w) = layout.wire_width {
                generator.wire_width = w;
            }
            if let Some(s) = layout.wire_space {
                generator.wire_space = s;
            }
            if let Some(f) = layout.track_fill {
                generator.track_fill = f;
            }
            // Panics on inconsistent geometry are caught by the job runner
            // and reported as a failed job, not a dead worker.
            generator.validate();
            generate_clip(&generator, layout.seed)
        }
        // Eco targets resolve through their base job's spec; `execute`
        // never passes an eco source here.
        CaseSource::Eco { .. } => unreachable!("eco targets resolve through their base job"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_threads_capped_against_worker_product() {
        assert_eq!(capped_inner_threads(2, 2, 8), 2);
        assert_eq!(capped_inner_threads(8, 4, 8), 2);
        assert_eq!(capped_inner_threads(4, 16, 8), 1);
        assert_eq!(capped_inner_threads(1, 1, 1), 1);
    }

    #[test]
    fn suite_target_matches_the_benchmark_suite() {
        let config = ilt_core::ExperimentConfig::test_tiny();
        let spec = JobSpec::parse(r#"{"case": 2}"#).unwrap();
        let target = resolve_target(&spec, &config);
        let suite = ilt_layout::suite_of_size(&config.generator, 2);
        assert_eq!(target, suite[1].target);
    }

    #[test]
    fn inline_overrides_change_the_layout() {
        let config = ilt_core::ExperimentConfig::test_tiny();
        let base = JobSpec::parse(r#"{"layout": {"seed": 3}}"#).unwrap();
        let wide = JobSpec::parse(r#"{"layout": {"seed": 3, "wire_width": 11}}"#).unwrap();
        let a = resolve_target(&base, &config);
        let b = resolve_target(&wide, &config);
        assert_eq!(a.width(), config.clip);
        assert_eq!(b.width(), config.clip);
        assert_ne!(a, b);
    }

    #[test]
    fn env_parsing_falls_back() {
        assert_eq!(env_usize("ILT_SERVE_NO_SUCH_VAR", 7), 7);
    }
}

//! A minimal HTTP/1.1 request parser and response writer over `std::io`.
//!
//! Implements exactly the subset the job service needs: a request line,
//! `\r\n`-terminated headers, and an optional `Content-Length` body, with
//! hard limits on every dimension so a misbehaving client cannot make the
//! server allocate unboundedly. Violations map to typed [`HttpError`]
//! variants that carry the right status code (`400`, `408`, `411`, `413`,
//! `431`), so the connection handler can answer before closing instead of
//! hanging up silently. No chunked transfer encoding, no
//! `Expect: 100-continue`, no TLS — clients needing those belong behind a
//! real proxy; the service itself stays dependency-free.

use std::fmt;
use std::io::{BufRead, Write};

use ilt_fault::points;

/// Longest accepted request line (method + path + version), in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum number of request headers.
pub const MAX_HEADERS: usize = 64;
/// Total byte budget for the request line plus the whole header block.
/// A client trickling an endless header stream hits this long before it
/// can make the server allocate anything interesting.
pub const MAX_HEADER_BLOCK: usize = 16 * 1024;
/// Largest accepted request body, in bytes. Job specs are tiny; anything
/// bigger than this is a mistake or an attack.
pub const MAX_BODY: usize = 256 * 1024;

/// Parse/IO failures while reading a request. Every variant except
/// [`Io`](HttpError::Io) carries a client-safe message and maps to a
/// status code via [`status`](HttpError::status).
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed mid-request; no response can be delivered.
    Io(std::io::Error),
    /// The request violated the supported HTTP subset (`400`).
    Malformed(String),
    /// The client stalled past the socket read timeout with a request
    /// partially sent — the slowloris case (`408`).
    TimedOut(String),
    /// The request used a transfer coding instead of declaring its body
    /// size with `Content-Length` (`411`).
    LengthRequired(String),
    /// The declared body size exceeds [`MAX_BODY`] (`413`).
    BodyTooLarge(String),
    /// The request line + header block exceeds [`MAX_HEADER_BLOCK`] or
    /// [`MAX_HEADERS`] (`431`).
    HeadersTooLarge(String),
}

impl HttpError {
    /// Status code to answer with before closing the connection, or
    /// `None` when the socket is already beyond answering.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Io(_) => None,
            HttpError::Malformed(_) => Some(400),
            HttpError::TimedOut(_) => Some(408),
            HttpError::LengthRequired(_) => Some(411),
            HttpError::BodyTooLarge(_) => Some(413),
            HttpError::HeadersTooLarge(_) => Some(431),
        }
    }

    /// The message that is safe to echo to the client (`None` for
    /// [`Io`](HttpError::Io), which carries OS error text instead).
    pub fn client_message(&self) -> Option<&str> {
        match self {
            HttpError::Io(_) => None,
            HttpError::Malformed(m)
            | HttpError::TimedOut(m)
            | HttpError::LengthRequired(m)
            | HttpError::BodyTooLarge(m)
            | HttpError::HeadersTooLarge(m) => Some(m),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TimedOut(msg) => write!(f, "request timed out: {msg}"),
            HttpError::LengthRequired(msg) => write!(f, "length required: {msg}"),
            HttpError::BodyTooLarge(msg) => write!(f, "body too large: {msg}"),
            HttpError::HeadersTooLarge(msg) => write!(f, "headers too large: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Whether an IO error is the socket read timeout firing (the kind
/// depends on the platform).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path + optional query, no normalisation).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Reads one request from the stream. Returns `Ok(None)` on clean EOF
    /// — or a read timeout — before any byte of the next request (an idle
    /// keep-alive connection winding down).
    ///
    /// # Errors
    ///
    /// [`HttpError::Io`] on socket failure, [`HttpError::TimedOut`] when
    /// the client stalls mid-request, [`HttpError::LengthRequired`] /
    /// [`HttpError::BodyTooLarge`] / [`HttpError::HeadersTooLarge`] on
    /// limit violations, [`HttpError::Malformed`] for everything else
    /// outside the supported subset.
    pub fn read_from(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
        let mut consumed = 0usize;
        let line = match read_line(reader, MAX_REQUEST_LINE, &mut consumed) {
            Ok(line) if line.is_empty() => return Ok(None),
            Ok(line) => line,
            Err(LineError::CleanEof) => return Ok(None),
            // An idle keep-alive client that never started the next
            // request is a clean close, not a protocol violation.
            Err(LineError::Io(e)) if is_timeout(&e) && consumed == 0 => return Ok(None),
            Err(LineError::Io(e)) if is_timeout(&e) => {
                return Err(HttpError::TimedOut(format!(
                    "client stalled after {consumed} bytes of the request line"
                )))
            }
            Err(LineError::Io(e)) => return Err(HttpError::Io(e)),
            Err(LineError::TruncatedEof) => {
                return Err(HttpError::Malformed("EOF inside the request line".into()))
            }
            Err(LineError::TooLong) => {
                return Err(HttpError::HeadersTooLarge(format!(
                    "request line exceeds the {MAX_REQUEST_LINE}-byte limit"
                )))
            }
            Err(LineError::NotUtf8) => {
                return Err(HttpError::Malformed("non-UTF-8 request line".into()))
            }
        };
        let mut parts = line.split_ascii_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
            .to_ascii_uppercase();
        let path = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("request line has no target".into()))?
            .to_string();
        let version = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("request line has no version".into()))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol {version:?}"
            )));
        }
        let mut headers = Vec::new();
        loop {
            let budget = MAX_HEADER_BLOCK.saturating_sub(consumed);
            let line = match read_line(reader, MAX_REQUEST_LINE.min(budget), &mut consumed) {
                Ok(line) => line,
                Err(LineError::CleanEof | LineError::TruncatedEof) => {
                    return Err(HttpError::Malformed("EOF inside headers".into()))
                }
                Err(LineError::Io(e)) if is_timeout(&e) => {
                    return Err(HttpError::TimedOut(format!(
                        "client stalled after {consumed} header bytes"
                    )))
                }
                Err(LineError::Io(e)) => return Err(HttpError::Io(e)),
                Err(LineError::TooLong) => {
                    return Err(HttpError::HeadersTooLarge(format!(
                        "header block exceeds the {MAX_HEADER_BLOCK}-byte limit"
                    )))
                }
                Err(LineError::NotUtf8) => {
                    return Err(HttpError::Malformed("non-UTF-8 header bytes".into()))
                }
            };
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::HeadersTooLarge(format!(
                    "more than {MAX_HEADERS} headers"
                )));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Malformed("header line without colon".into()))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let mut request = Request {
            method,
            path,
            headers,
            body: Vec::new(),
        };
        // No transfer coding is supported, so a framed body must declare
        // its size up front: Transfer-Encoding without Content-Length is
        // the RFC 7230 case for 411. Absent both, the body is empty.
        if request.header("transfer-encoding").is_some() {
            return Err(HttpError::LengthRequired(
                "transfer codings are not supported; send a Content-Length".into(),
            ));
        }
        match request.header("content-length") {
            None => {}
            Some(raw) => {
                let trimmed = raw.trim().to_string();
                let mut len: u64 = match trimmed.parse() {
                    Ok(len) => len,
                    // All-digit but unparsable means the value overflowed
                    // u64 — an absurd size claim, not a syntax error.
                    Err(_)
                        if !trimmed.is_empty() && trimmed.bytes().all(|b| b.is_ascii_digit()) =>
                    {
                        return Err(HttpError::BodyTooLarge(format!(
                            "Content-Length {trimmed:?} overflows the supported range"
                        )))
                    }
                    Err(_) => {
                        return Err(HttpError::Malformed(format!(
                            "bad Content-Length {trimmed:?}"
                        )))
                    }
                };
                if ilt_fault::should_fire(points::SERVE_BODY_OVERSIZE) {
                    len = MAX_BODY as u64 + 1;
                }
                if len > MAX_BODY as u64 {
                    return Err(HttpError::BodyTooLarge(format!(
                        "body of {len} bytes exceeds the {MAX_BODY}-byte limit"
                    )));
                }
                let mut body = vec![0u8; len as usize];
                let read = if ilt_fault::should_fire(points::SERVE_BODY_TRUNCATE) {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "injected fault: serve.body_truncate",
                    ))
                } else {
                    reader.read_exact(&mut body)
                };
                match read {
                    Ok(()) => request.body = body,
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                        return Err(HttpError::Malformed(
                            "request body shorter than Content-Length".into(),
                        ))
                    }
                    Err(e) if is_timeout(&e) => {
                        return Err(HttpError::TimedOut("client stalled mid-body".into()))
                    }
                    Err(e) => return Err(HttpError::Io(e)),
                }
            }
        }
        Ok(Some(request))
    }
}

/// Why [`read_line`] stopped short of a complete line.
enum LineError {
    Io(std::io::Error),
    /// EOF before any byte of the line.
    CleanEof,
    /// EOF after the line started.
    TruncatedEof,
    /// The line exceeds the caller's byte limit.
    TooLong,
    NotUtf8,
}

/// Reads one `\r\n`- (or `\n`-) terminated line, bounded by `limit`
/// bytes. Every byte read (terminators included) is added to `consumed`,
/// which lets the caller budget a whole header block across calls.
fn read_line(
    reader: &mut impl BufRead,
    limit: usize,
    consumed: &mut usize,
) -> Result<String, LineError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) if buf.is_empty() => return Err(LineError::CleanEof),
            Ok(0) => return Err(LineError::TruncatedEof),
            Ok(_) => {}
            Err(e) => return Err(LineError::Io(e)),
        }
        *consumed += 1;
        if byte[0] == b'\n' {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return String::from_utf8(buf).map_err(|_| LineError::NotUtf8);
        }
        if buf.len() >= limit {
            return Err(LineError::TooLong);
        }
        buf.push(byte[0]);
    }
}

/// One HTTP response ready to serialise.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    content_type: &'static str,
    extra_headers: Vec<(&'static str, String)>,
    body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A JSON error response with the message in an `"error"` field.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        ilt_telemetry::json::push_str_literal(&mut body, message);
        body.push('}');
        Response::json(status, body)
    }

    /// Adds an extra header (e.g. `Retry-After`).
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Serialises the response (HTTP/1.1, explicit `Content-Length`).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_headers() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse("POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("hello\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn transfer_encoding_is_411() {
        let err =
            parse("POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::LengthRequired(_)), "{err}");
        assert_eq!(err.status(), Some(411));
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        // No Content-Length and no Transfer-Encoding frames a bodyless
        // request (the `curl -X POST /admin/shutdown` shape).
        let req = parse("POST /admin/shutdown HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.body.is_empty());
        assert!(parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap().is_some());
    }

    #[test]
    fn oversized_and_overflowing_bodies_are_413() {
        let declared = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse(&declared).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(_)), "{err}");
        assert_eq!(err.status(), Some(413));

        let overflow = "POST /x HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n";
        let err = parse(overflow).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(_)), "{err}");
    }

    #[test]
    fn truncated_body_is_a_400_not_a_hang() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("shorter than Content-Length"));
    }

    #[test]
    fn oversized_header_block_is_431() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..8 {
            raw.push_str(&format!("x-pad-{i}: {}\r\n", "v".repeat(4096)));
        }
        raw.push_str("\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge(_)), "{err}");
        assert_eq!(err.status(), Some(431));
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge(_)), "{err}");
    }

    #[test]
    fn overlong_request_line_is_431() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge(_)), "{err}");
    }

    #[test]
    fn every_typed_error_has_a_status_and_message() {
        let cases: Vec<(HttpError, u16)> = vec![
            (HttpError::Malformed("m".into()), 400),
            (HttpError::TimedOut("m".into()), 408),
            (HttpError::LengthRequired("m".into()), 411),
            (HttpError::BodyTooLarge("m".into()), 413),
            (HttpError::HeadersTooLarge("m".into()), 431),
        ];
        for (err, status) in cases {
            assert_eq!(err.status(), Some(status));
            assert_eq!(err.client_message(), Some("m"));
            assert_ne!(status_reason(status), "Unknown");
        }
        let io = HttpError::Io(std::io::Error::other("x"));
        assert_eq!(io.status(), None);
        assert_eq!(io.client_message(), None);
    }

    #[test]
    fn response_serialises_with_extra_headers() {
        let mut out = Vec::new();
        Response::json(429, "{\"error\":\"queue full\"}".into())
            .with_header("Retry-After", "1".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }

    #[test]
    fn error_body_escapes_the_message() {
        let mut out = Vec::new();
        Response::error(400, "bad \"quote\"")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("{\"error\":\"bad \\\"quote\\\"\"}"));
    }
}

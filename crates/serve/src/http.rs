//! A minimal HTTP/1.1 request parser and response writer over `std::io`.
//!
//! Implements exactly the subset the job service needs: a request line,
//! `\r\n`-terminated headers, and an optional `Content-Length` body, with
//! hard limits on every dimension so a misbehaving client cannot make the
//! server allocate unboundedly. No chunked transfer encoding, no
//! `Expect: 100-continue`, no TLS — clients needing those belong behind a
//! real proxy; the service itself stays dependency-free.

use std::fmt;
use std::io::{BufRead, Write};

/// Longest accepted request line (method + path + version), in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum number of request headers.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes. Job specs are tiny; anything
/// bigger than this is a mistake or an attack.
pub const MAX_BODY: usize = 256 * 1024;

/// Parse/IO failures while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed mid-request.
    Io(std::io::Error),
    /// The request violated the supported HTTP subset; the message is safe
    /// to echo in a 400 response.
    Malformed(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path + optional query, no normalisation).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Reads one request from the stream. Returns `Ok(None)` on clean EOF
    /// before any bytes (the client closed a keep-alive connection).
    ///
    /// # Errors
    ///
    /// [`HttpError::Io`] on socket failure (including read timeout),
    /// [`HttpError::Malformed`] when the request exceeds the supported
    /// subset or any size limit.
    pub fn read_from(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
        let line = match read_line(reader, MAX_REQUEST_LINE)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => return Ok(None),
            Some(line) => line,
        };
        let mut parts = line.split_ascii_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
            .to_ascii_uppercase();
        let path = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("request line has no target".into()))?
            .to_string();
        let version = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("request line has no version".into()))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol {version:?}"
            )));
        }
        let mut headers = Vec::new();
        loop {
            let line = read_line(reader, MAX_REQUEST_LINE)?
                .ok_or_else(|| HttpError::Malformed("EOF inside headers".into()))?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::Malformed("too many headers".into()));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Malformed("header line without colon".into()))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let mut request = Request {
            method,
            path,
            headers,
            body: Vec::new(),
        };
        if let Some(raw) = request.header("content-length") {
            let len: usize = raw
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {raw:?}")))?;
            if len > MAX_BODY {
                return Err(HttpError::Malformed(format!(
                    "body of {len} bytes exceeds the {MAX_BODY}-byte limit"
                )));
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            request.body = body;
        }
        Ok(Some(request))
    }
}

/// Reads one `\r\n`- (or `\n`-) terminated line, bounded by `limit` bytes.
/// Returns `None` on EOF before any byte.
fn read_line(reader: &mut impl BufRead, limit: usize) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 if buf.is_empty() => return Ok(None),
            0 => return Err(HttpError::Malformed("EOF inside a line".into())),
            _ => {}
        }
        if byte[0] == b'\n' {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            let line = String::from_utf8(buf)
                .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))?;
            return Ok(Some(line));
        }
        if buf.len() >= limit {
            return Err(HttpError::Malformed("line exceeds the size limit".into()));
        }
        buf.push(byte[0]);
    }
}

/// One HTTP response ready to serialise.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    content_type: &'static str,
    extra_headers: Vec<(&'static str, String)>,
    body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A JSON error response with the message in an `"error"` field.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        ilt_telemetry::json::push_str_literal(&mut body, message);
        body.push('}');
        Response::json(status, body)
    }

    /// Adds an extra header (e.g. `Retry-After`).
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Serialises the response (HTTP/1.1, explicit `Content-Length`).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_headers() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse("POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("hello\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&huge), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn response_serialises_with_extra_headers() {
        let mut out = Vec::new();
        Response::json(429, "{\"error\":\"queue full\"}".into())
            .with_header("Retry-After", "1".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }

    #[test]
    fn error_body_escapes_the_message() {
        let mut out = Vec::new();
        Response::error(400, "bad \"quote\"")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("{\"error\":\"bad \\\"quote\\\"\"}"));
    }
}

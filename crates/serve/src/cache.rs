//! Per-worker session memoisation over the process-wide kernel caches.
//!
//! A [`Session`](ilt_core::Session) owns the full-clip inspection system,
//! which keeps per-instance FFT scratch and therefore cannot be shared
//! across threads. Each job worker instead owns a `SessionCache`: the
//! first job at a given scale builds that worker's session, every later
//! job at the same scale reuses it. The genuinely expensive state is still
//! deduplicated *globally* underneath — SOCS kernel banks by
//! [`ilt_litho::shared_bank`] (keyed on the optical and resist
//! parameters) and FFT plans by `ilt_fft::shared_plan` (keyed on
//! length) — so even a cold session on worker 2 reuses the bank worker 1
//! built, and only the cheap per-thread scratch is duplicated.
//!
//! Hits and misses are counted as `serve.session_cache.hit` /
//! `serve.session_cache.miss`; the bank-level signal the loopback test
//! asserts on is `litho.bank_cache.hit`.

use std::collections::HashMap;

use ilt_core::{CoreError, ExperimentConfig, Session};

/// The experiment configuration a scale name denotes — the same mapping
/// `ILT_SCALE` uses for the batch binaries.
///
/// Returns `None` for unknown scale names (the job parser rejects them
/// first; this keeps the mapping total and honest).
pub fn config_for_scale(scale: &str) -> Option<ExperimentConfig> {
    match scale {
        "tiny" => Some(ExperimentConfig::test_tiny()),
        "default" => Some(ExperimentConfig::paper_default()),
        _ => None,
    }
}

/// Scale-keyed session memoisation for one worker thread.
#[derive(Default)]
pub struct SessionCache {
    sessions: HashMap<String, Session>,
}

impl SessionCache {
    /// An empty cache.
    pub fn new() -> Self {
        SessionCache::default()
    }

    /// Number of sessions this worker holds.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The session for a scale, building it on first use.
    ///
    /// # Errors
    ///
    /// [`CoreError::Litho`] if kernel or system construction fails;
    /// failures are not cached, so a later retry rebuilds.
    ///
    /// # Panics
    ///
    /// Panics on unknown scale names — callers must validate scales at
    /// admission (the job parser does).
    pub fn session(&mut self, scale: &str) -> Result<&Session, CoreError> {
        if !self.sessions.contains_key(scale) {
            ilt_telemetry::counter_add("serve.session_cache.miss", 1);
            let config = config_for_scale(scale)
                .unwrap_or_else(|| panic!("unvalidated scale {scale:?} reached the cache"));
            let session = Session::new(config)?;
            self.sessions.insert(scale.to_string(), session);
            ilt_telemetry::gauge_add("serve.session_cache.entries", 1.0);
        } else {
            ilt_telemetry::counter_add("serve.session_cache.hit", 1);
        }
        Ok(&self.sessions[scale])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_mapping_is_total_over_valid_names() {
        assert!(config_for_scale("tiny").is_some());
        assert!(config_for_scale("default").is_some());
        assert!(config_for_scale("huge").is_none());
    }

    #[test]
    fn second_lookup_reuses_the_session() {
        let mut cache = SessionCache::new();
        assert!(cache.is_empty());
        let first = cache.session("tiny").unwrap().inspection() as *const _;
        let second = cache.session("tiny").unwrap().inspection() as *const _;
        assert_eq!(first, second, "same scale must reuse the same session");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unvalidated scale")]
    fn unknown_scale_panics() {
        let _ = SessionCache::new().session("huge");
    }
}

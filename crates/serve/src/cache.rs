//! Per-worker session memoisation over the process-wide kernel caches.
//!
//! A [`Session`](ilt_core::Session) owns the full-clip inspection system,
//! which keeps per-instance FFT scratch and therefore cannot be shared
//! across threads. Each job worker instead owns a `SessionCache`: the
//! first job at a given scale builds that worker's session, every later
//! job at the same scale reuses it. The genuinely expensive state is still
//! deduplicated *globally* underneath — SOCS kernel banks by
//! [`ilt_litho::shared_bank`] (keyed on the optical and resist
//! parameters) and FFT plans by `ilt_fft::shared_plan` (keyed on
//! length) — so even a cold session on worker 2 reuses the bank worker 1
//! built, and only the cheap per-thread scratch is duplicated.
//!
//! Hits and misses are counted as `serve.session_cache.hit` /
//! `serve.session_cache.miss`; the bank-level signal the loopback test
//! asserts on is `litho.bank_cache.hit`.

use std::collections::HashMap;

use ilt_core::{CoreError, ExperimentConfig, Session};

/// The experiment configuration a scale name denotes — the same mapping
/// `ILT_SCALE` uses for the batch binaries.
///
/// Returns `None` for unknown scale names (the job parser rejects them
/// first; this keeps the mapping total and honest).
pub fn config_for_scale(scale: &str) -> Option<ExperimentConfig> {
    match scale {
        "tiny" => Some(ExperimentConfig::test_tiny()),
        "default" => Some(ExperimentConfig::paper_default()),
        _ => None,
    }
}

/// Session memoisation key: the scale plus the per-job config overrides
/// that change the session's `ExperimentConfig`. Two jobs share a session
/// exactly when they resolve to the same configuration.
type SessionKey = (String, Option<usize>, Option<bool>);

/// Config-keyed session memoisation for one worker thread.
#[derive(Default)]
pub struct SessionCache {
    sessions: HashMap<SessionKey, Session>,
}

impl SessionCache {
    /// An empty cache.
    pub fn new() -> Self {
        SessionCache::default()
    }

    /// Number of sessions this worker holds.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The session for a scale with the scale's default hierarchy depth and
    /// streaming mode, building it on first use.
    ///
    /// # Errors
    ///
    /// [`CoreError::Litho`] if kernel or system construction fails;
    /// failures are not cached, so a later retry rebuilds.
    ///
    /// # Panics
    ///
    /// Panics on unknown scale names — callers must validate scales at
    /// admission (the job parser does).
    pub fn session(&mut self, scale: &str) -> Result<&Session, CoreError> {
        self.session_with(scale, None, None)
    }

    /// The session for a scale with optional `s_max` / `stream_tiles`
    /// overrides applied on top of the scale's defaults. Sessions are keyed
    /// by the full override tuple, so jobs with different hierarchy depths
    /// never share (their config fingerprints differ and the mask store
    /// keys with them), while repeat jobs at the same overrides reuse.
    ///
    /// # Errors
    ///
    /// [`CoreError::Litho`] if kernel or system construction fails;
    /// failures are not cached, so a later retry rebuilds.
    ///
    /// # Panics
    ///
    /// Panics on unknown scale names or override combinations the job
    /// parser should have rejected (e.g. an `s_max` whose coarsest level
    /// does not fit the clip) — callers must validate at admission.
    pub fn session_with(
        &mut self,
        scale: &str,
        s_max: Option<usize>,
        stream: Option<bool>,
    ) -> Result<&Session, CoreError> {
        let key: SessionKey = (scale.to_string(), s_max, stream);
        if !self.sessions.contains_key(&key) {
            ilt_telemetry::counter_add("serve.session_cache.miss", 1);
            let mut config = config_for_scale(scale)
                .unwrap_or_else(|| panic!("unvalidated scale {scale:?} reached the cache"));
            if let Some(s) = s_max {
                config.s_max = s;
            }
            if let Some(stream) = stream {
                config.stream_tiles = stream;
            }
            let session = Session::new(config)?;
            self.sessions.insert(key.clone(), session);
            ilt_telemetry::gauge_add("serve.session_cache.entries", 1.0);
        } else {
            ilt_telemetry::counter_add("serve.session_cache.hit", 1);
        }
        Ok(&self.sessions[&key])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_mapping_is_total_over_valid_names() {
        assert!(config_for_scale("tiny").is_some());
        assert!(config_for_scale("default").is_some());
        assert!(config_for_scale("huge").is_none());
    }

    #[test]
    fn second_lookup_reuses_the_session() {
        let mut cache = SessionCache::new();
        assert!(cache.is_empty());
        let first = cache.session("tiny").unwrap().inspection() as *const _;
        let second = cache.session("tiny").unwrap().inspection() as *const _;
        assert_eq!(first, second, "same scale must reuse the same session");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn overrides_get_their_own_sessions() {
        let mut cache = SessionCache::new();
        let default = cache.session("tiny").unwrap().config().clone();
        assert!(default.stream_tiles, "streaming is the default");
        let held = cache
            .session_with("tiny", None, Some(false))
            .unwrap()
            .config()
            .clone();
        assert!(!held.stream_tiles);
        assert_eq!(cache.len(), 2, "distinct overrides must not share");
        // Same overrides reuse the existing session.
        cache.session_with("tiny", None, Some(false)).unwrap();
        assert_eq!(cache.len(), 2);
        // stream_tiles is canonicalised out of the fingerprint (identical
        // masks either way), so the store stays shareable across the two.
        assert_eq!(default.fingerprint(), held.fingerprint());
    }

    #[test]
    #[should_panic(expected = "unvalidated scale")]
    fn unknown_scale_panics() {
        let _ = SessionCache::new().session("huge");
    }
}

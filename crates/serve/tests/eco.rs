//! Loopback test of the incremental (ECO) job path: a base `ours` job
//! populates the shared mask store, an edit job warm-starts from it and
//! reports its reuse accounting, and `/debug/store` / `/debug/caches`
//! expose the store's occupancy.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ilt_json::Json;
use ilt_layout::generate_clip;
use ilt_serve::{start, ServeConfig};
use ilt_telemetry as tele;

const POLL_INTERVAL: Duration = Duration::from_millis(25);
const POLL_BUDGET: Duration = Duration::from_secs(120);

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {raw:?}"));
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    (status, body.to_string())
}

fn submit(addr: SocketAddr, spec: &str) -> String {
    let (status, body) = request(addr, "POST", "/v1/jobs", Some(spec));
    assert_eq!(status, 202, "submit failed: {body}");
    Json::parse(&body)
        .expect("submit response JSON")
        .get("id")
        .and_then(Json::as_str)
        .expect("accepted job id")
        .to_string()
}

fn poll_done(addr: SocketAddr, id: &str) -> Json {
    let deadline = Instant::now() + POLL_BUDGET;
    loop {
        let (status, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), None);
        assert_eq!(status, 200, "poll failed: {body}");
        let record = Json::parse(&body).expect("job record JSON");
        match record.get("status").and_then(Json::as_str) {
            Some("queued") | Some("running") => {}
            Some(_) => return record,
            None => panic!("record without status: {body}"),
        }
        assert!(Instant::now() < deadline, "job {id} did not finish in time");
        std::thread::sleep(POLL_INTERVAL);
    }
}

#[test]
fn eco_job_reuses_clean_tiles_from_the_base_solve() {
    tele::set_enabled(true);
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 8,
        workers: 1,
        tile_workers: 2,
        inner_threads: 1,
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();

    // Base solve: an `ours` job, which also populates the mask store.
    let base_id = submit(addr, r#"{"case":5,"method":"ours","scale":"tiny"}"#);
    let base = poll_done(addr, &base_id);
    assert_eq!(base.get("status").and_then(Json::as_str), Some("done"));
    assert!(
        base.path(&["incremental"]).is_none(),
        "plain jobs must not report incremental stats"
    );

    // The store now holds the base solve's tile crops.
    let (status, body) = request(addr, "GET", "/debug/store", None);
    assert_eq!(status, 200);
    let store = Json::parse(&body).expect("store debug JSON");
    assert_eq!(store.get("enabled").and_then(Json::as_bool), Some(true));
    let puts = store
        .path(&["stats", "puts"])
        .and_then(Json::as_u64)
        .expect("store puts");
    assert!(puts >= 9, "base solve stored {puts} crops, expected >= 9");
    let listed = store
        .get("entries")
        .and_then(Json::as_arr)
        .expect("entry listing");
    assert!(!listed.is_empty(), "store listing is empty after a put");

    // Flip one pixel region deep inside tile 0's exclusive region (the
    // suite target is deterministic, so pick a fill that guarantees a
    // change): dirty set = tile 0 + its 3 overlap neighbours on the tiny
    // 3x3 partition, the other 5 tiles reused.
    let config = ilt_core::ExperimentConfig::test_tiny();
    let target = generate_clip(&config.generator, 5);
    let fill = 1 - target.get(12, 12);
    let eco_spec = format!(
        r#"{{"base_job":{base_id},"edit":{{"rect":[10,10,18,18],"fill":{fill}}},"scale":"tiny"}}"#
    );
    let eco_id = submit(addr, &eco_spec);
    let record = poll_done(addr, &eco_id);
    assert_eq!(
        record.get("status").and_then(Json::as_str),
        Some("done"),
        "eco job failed: {record:?}"
    );
    assert_eq!(
        record.get("target").and_then(Json::as_str),
        Some(format!("eco:base={base_id}").as_str())
    );
    let reused = record
        .path(&["incremental", "tiles_reused"])
        .and_then(Json::as_u64)
        .expect("tiles_reused");
    let resolved = record
        .path(&["incremental", "tiles_resolved"])
        .and_then(Json::as_u64)
        .expect("tiles_resolved");
    assert_eq!(resolved, 4, "dirty set on a 3x3 partition is 4 tiles");
    assert_eq!(reused, 5, "the other 5 tiles must come from the store");
    let hit_ratio = record
        .path(&["incremental", "hit_ratio"])
        .and_then(Json::as_f64)
        .expect("hit_ratio");
    assert!(
        (hit_ratio - 5.0 / 9.0).abs() < 1e-9,
        "hit_ratio {hit_ratio}"
    );

    // /debug/caches carries the mask_store section.
    let (status, body) = request(addr, "GET", "/debug/caches", None);
    assert_eq!(status, 200);
    let caches = Json::parse(&body).expect("caches JSON");
    assert!(
        caches
            .path(&["mask_store", "entries"])
            .and_then(Json::as_u64)
            .expect("mask_store entries")
            >= 9
    );

    // /metrics exports the store series under the promised names.
    let (status, body) = request(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    for needle in [
        "ilt_store_hits_total",
        "ilt_store_bytes",
        "ilt_store_entries",
    ] {
        assert!(body.contains(needle), "metrics missing {needle}");
    }

    // Referencing a missing base fails cleanly, as does chaining off an
    // eco job.
    let missing = submit(addr, r#"{"base_job":999,"edit":{"rect":[0,0,8,8]}}"#);
    let record = poll_done(addr, &missing);
    assert_eq!(record.get("status").and_then(Json::as_str), Some("failed"));
    assert!(
        record
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("not found")),
        "unexpected error: {record:?}"
    );
    let chained = submit(
        addr,
        &format!(r#"{{"base_job":{eco_id},"edit":{{"rect":[0,0,8,8]}}}}"#),
    );
    let record = poll_done(addr, &chained);
    assert_eq!(record.get("status").and_then(Json::as_str), Some("failed"));
    assert!(
        record
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("itself incremental")),
        "unexpected error: {record:?}"
    );

    let summary = handle.shutdown();
    assert_eq!(summary.unfinished, 0);
    assert_eq!(summary.failed, 2, "exactly the two bad eco jobs failed");
}

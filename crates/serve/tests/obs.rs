//! Live-introspection test: two concurrent jobs through a real server,
//! then the `/debug` endpoints. Asserts the per-job trace trees are
//! complete (queue → session → flow → tiles → assembly), disjoint, and
//! consistently tagged with each job's trace id, and that every debug
//! body is well-formed non-empty JSON. With the tracking allocator
//! installed and the CPU sampler running, also exercises
//! `/debug/profile` and `/debug/memory` against real jobs.
//!
//! One test function: telemetry, the flight recorder, and the profiler
//! are process-global, so phases share one server.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ilt_json::Json;
use ilt_serve::{start, ServeConfig};
use ilt_telemetry as tele;

// The server binary installs the tracking allocator; this test binary
// does the same so /debug/memory sees real attribution.
#[global_allocator]
static GLOBAL: ilt_prof::TrackingAlloc = ilt_prof::TrackingAlloc::new();

const POLL_INTERVAL: Duration = Duration::from_millis(25);
const POLL_BUDGET: Duration = Duration::from_secs(120);

struct ClientResponse {
    status: u16,
    body: String,
}

impl ClientResponse {
    fn json(&self) -> Json {
        Json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body {:?}: {e}", self.body))
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {raw:?}"));
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    ClientResponse {
        status,
        body: body.to_string(),
    }
}

fn submit(addr: SocketAddr, spec: &str) -> String {
    let response = request(addr, "POST", "/v1/jobs", Some(spec));
    assert_eq!(response.status, 202, "submit failed: {}", response.body);
    response
        .json()
        .get("id")
        .and_then(Json::as_str)
        .expect("submit response carries an id")
        .to_string()
}

fn poll_done(addr: SocketAddr, id: &str) {
    let deadline = Instant::now() + POLL_BUDGET;
    loop {
        let response = request(addr, "GET", &format!("/v1/jobs/{id}"), None);
        assert_eq!(response.status, 200, "poll failed: {}", response.body);
        match response.json().get("status").and_then(Json::as_str) {
            Some("queued") | Some("running") => {}
            Some("done") => return,
            other => panic!("job {id} ended {other:?}: {}", response.body),
        }
        assert!(Instant::now() < deadline, "job {id} did not finish in time");
        std::thread::sleep(POLL_INTERVAL);
    }
}

/// Collects `(id, trace, name)` for every node of a span forest.
fn collect_spans(forest: &Json, out: &mut Vec<(u64, u64, String)>) {
    for node in forest.as_arr().expect("span forest is an array") {
        let id = node.get("id").and_then(Json::as_u64).expect("span id");
        let trace = node
            .get("trace")
            .and_then(Json::as_u64)
            .expect("span trace");
        let name = node
            .get("name")
            .and_then(Json::as_str)
            .expect("span name")
            .to_string();
        out.push((id, trace, name));
        if let Some(children) = node.get("children") {
            collect_spans(children, out);
        }
    }
}

/// Fetches a job's trace tree, retrying briefly until the root
/// `serve.job` span has landed (the worker closes it just after the
/// status flips to done).
fn job_spans(addr: SocketAddr, id: &str) -> (u64, Vec<(u64, u64, String)>) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let response = request(addr, "GET", &format!("/debug/jobs/{id}/trace"), None);
        assert_eq!(
            response.status, 200,
            "trace fetch failed: {}",
            response.body
        );
        let json = response.json();
        let trace = json
            .get("trace")
            .and_then(Json::as_u64)
            .expect("trace id in debug body");
        let mut spans = Vec::new();
        collect_spans(json.get("spans").expect("spans section"), &mut spans);
        if spans.iter().any(|(_, _, name)| name == "serve.job") || Instant::now() >= deadline {
            return (trace, spans);
        }
        std::thread::sleep(POLL_INTERVAL);
    }
}

#[test]
fn debug_endpoints_and_disjoint_job_traces() {
    tele::set_enabled(true);
    ilt_prof::alloc::set_enabled(true);
    assert!(ilt_prof::start_sampler(250.0), "sampler starts");
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 8,
        workers: 2,
        tile_workers: 1,
        inner_threads: 1,
    })
    .expect("server starts");
    let addr = handle.addr();

    // Two jobs admitted back-to-back run concurrently on the two workers,
    // so their spans interleave in time — the traces must not.
    let id_a = submit(addr, r#"{"case": 1, "scale": "tiny"}"#);
    let id_b = submit(addr, r#"{"case": 2, "scale": "tiny"}"#);
    poll_done(addr, &id_a);
    poll_done(addr, &id_b);

    let (trace_a, spans_a) = job_spans(addr, &id_a);
    let (trace_b, spans_b) = job_spans(addr, &id_b);
    assert_ne!(trace_a, 0, "jobs get a nonzero trace id at admission");
    assert_ne!(trace_a, trace_b, "distinct jobs get distinct traces");

    // Complete trees: admission wait, session, flow orchestration, tile
    // solves, and stitching all present under each job's trace.
    for (trace, spans, id) in [(trace_a, &spans_a, &id_a), (trace_b, &spans_b, &id_b)] {
        assert!(!spans.is_empty(), "job {id} recorded no spans");
        for needed in [
            "serve.job",
            "queue",
            "session",
            "flow",
            "stage",
            "tile",
            "assembly",
        ] {
            assert!(
                spans.iter().any(|(_, _, name)| name == needed),
                "job {id} trace misses a {needed:?} span: {:?}",
                spans.iter().map(|(_, _, n)| n).collect::<Vec<_>>()
            );
        }
        for (span_id, span_trace, name) in spans {
            assert_eq!(
                *span_trace, trace,
                "span {span_id} ({name}) of job {id} carries a foreign trace"
            );
        }
    }

    // Disjoint: concurrent jobs never share a span.
    let ids_a: BTreeSet<u64> = spans_a.iter().map(|(id, _, _)| *id).collect();
    let ids_b: BTreeSet<u64> = spans_b.iter().map(|(id, _, _)| *id).collect();
    assert!(
        ids_a.is_disjoint(&ids_b),
        "concurrent jobs share spans: {:?}",
        ids_a.intersection(&ids_b).collect::<Vec<_>>()
    );

    // /debug/queue lists both jobs with their trace ids.
    let queue = request(addr, "GET", "/debug/queue", None);
    assert_eq!(queue.status, 200);
    let queue = queue.json();
    let listed = queue
        .get("jobs")
        .and_then(Json::as_arr)
        .expect("queue body lists jobs");
    assert!(listed.len() >= 2, "queue body lists the submitted jobs");
    for trace in [trace_a, trace_b] {
        assert!(
            listed
                .iter()
                .any(|j| j.get("trace").and_then(Json::as_u64) == Some(trace)),
            "queue body misses trace {trace}"
        );
    }

    // /debug/caches shows the kernel bank the two jobs shared, with a
    // nonzero resident-byte estimate.
    let caches = request(addr, "GET", "/debug/caches", None);
    assert_eq!(caches.status, 200);
    let caches = caches.json();
    assert!(
        caches
            .path(&["litho_bank_cache", "entries"])
            .and_then(Json::as_u64)
            .is_some_and(|n| n >= 1),
        "bank cache holds the shared bank: {caches:?}"
    );
    assert!(
        caches
            .path(&["litho_bank_cache", "estimated_bytes"])
            .and_then(Json::as_u64)
            .is_some_and(|b| b > 0),
        "bank cache estimates resident bytes: {caches:?}"
    );
    assert!(
        caches
            .path(&["fft_plan_cache", "estimated_bytes"])
            .and_then(Json::as_u64)
            .is_some_and(|b| b > 0),
        "plan cache estimates resident bytes: {caches:?}"
    );

    // /debug/slo reports every objective with a burn rate per window; two
    // clean jobs mean the error objective burns at zero.
    let slo = request(addr, "GET", "/debug/slo", None);
    assert_eq!(slo.status, 200);
    let slo = slo.json();
    let objectives = slo
        .get("objectives")
        .and_then(Json::as_arr)
        .expect("slo body lists objectives");
    assert!(!objectives.is_empty(), "default SLO config is non-empty");
    let errors = objectives
        .iter()
        .find(|o| o.get("name").and_then(Json::as_str) == Some("job_errors"))
        .expect("default config tracks job_errors");
    let windows = errors
        .get("windows")
        .and_then(Json::as_arr)
        .expect("objective carries windows");
    assert!(!windows.is_empty());
    for w in windows {
        assert_eq!(
            w.get("burn_rate").and_then(Json::as_f64),
            Some(0.0),
            "two clean jobs must not burn the error budget: {slo:?}"
        );
    }

    // /metrics carries the SLO series, the recorder drop counter, and
    // the profiling gauges next to the ordinary exposition.
    let metrics = request(addr, "GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("ilt_slo_burn_rate{"));
    assert!(metrics.body.contains("ilt_obs_spans_dropped_total"));
    assert!(metrics.body.contains("ilt_alloc_live_bytes"));
    #[cfg(target_os = "linux")]
    assert!(metrics.body.contains("ilt_process_rss_bytes"));

    // /debug/profile: sampler state plus a collapsed-stack body. One
    // deterministic in-process sample under a named span guarantees a
    // non-empty profile regardless of sampler timing.
    {
        let mut span = tele::span(tele::names::FLOW);
        span.add_field("name", "obs test");
        ilt_prof::sample_now();
    }
    let profile = request(addr, "GET", "/debug/profile", None);
    assert_eq!(profile.status, 200);
    let profile = profile.json();
    assert_eq!(
        profile.get("sampler_running").and_then(Json::as_bool),
        Some(true)
    );
    let collapsed = profile
        .get("collapsed")
        .and_then(Json::as_str)
        .expect("collapsed-stack text");
    assert!(!collapsed.is_empty(), "profile captured samples");
    for line in collapsed.lines() {
        let (path, count) = line.rsplit_once(' ').expect("collapsed line `path count`");
        assert!(!path.is_empty(), "empty path in {line:?}");
        count
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("bad count in {line:?}"));
    }
    assert!(
        collapsed.contains("flow:obs_test"),
        "deterministic sample missing: {collapsed}"
    );
    assert!(
        profile
            .get("samples")
            .and_then(Json::as_u64)
            .is_some_and(|s| s > 0),
        "sample counter advanced"
    );

    // /debug/memory: allocator totals, per-stage attribution, and the
    // two jobs' traces among the heaviest allocators.
    let memory = request(addr, "GET", "/debug/memory", None);
    assert_eq!(memory.status, 200);
    let memory = memory.json();
    assert!(
        memory
            .path(&["alloc", "allocated_bytes"])
            .and_then(Json::as_u64)
            .is_some_and(|b| b > 0),
        "jobs allocated while counting was on: {memory:?}"
    );
    assert!(memory.path(&["alloc", "stages", "fine"]).is_some());
    #[cfg(target_os = "linux")]
    assert!(
        memory
            .path(&["rss", "current_bytes"])
            .and_then(Json::as_u64)
            .is_some_and(|b| b > 0),
        "linux RSS readable: {memory:?}"
    );
    let top = memory
        .get("top_traces")
        .and_then(Json::as_arr)
        .expect("top_traces array");
    for trace in [trace_a, trace_b] {
        let entry = top
            .iter()
            .find(|t| t.get("trace").and_then(Json::as_u64) == Some(trace))
            .unwrap_or_else(|| panic!("trace {trace} missing from top_traces: {memory:?}"));
        assert!(
            entry
                .get("bytes")
                .and_then(Json::as_u64)
                .is_some_and(|b| b > 0),
            "job trace {trace} attributed no bytes: {entry:?}"
        );
    }

    ilt_prof::stop_sampler();
    ilt_prof::alloc::set_enabled(false);
    handle.shutdown();
}

//! End-to-end loopback test: a real server on an ephemeral port, a real
//! TCP client, and the full job lifecycle — submit, poll, admission
//! control, warm-cache reuse, and graceful drain.
//!
//! Everything runs in one test function because telemetry counters are
//! process-global: the phases share one server and assert counter deltas
//! between snapshots.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ilt_core::experiment::Method;
use ilt_core::Session;
use ilt_json::Json;
use ilt_layout::generate_clip;
use ilt_serve::{start, ServeConfig};
use ilt_telemetry as tele;
use ilt_tile::{Partition, TileExecutor};

const POLL_INTERVAL: Duration = Duration::from_millis(25);
const POLL_BUDGET: Duration = Duration::from_secs(120);

/// Minimal HTTP/1.1 response: status code, headers (lower-cased names),
/// body.
struct ClientResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl ClientResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        Json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body {:?}: {e}", self.body))
    }
}

/// One request on a fresh connection (`Connection: close`), like an
/// external client would issue.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {raw:?}"));
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    ClientResponse {
        status,
        headers,
        body: body.to_string(),
    }
}

/// Polls a job until it leaves the queued/running states.
fn poll_done(addr: SocketAddr, id: &str) -> Json {
    let deadline = Instant::now() + POLL_BUDGET;
    loop {
        let response = request(addr, "GET", &format!("/v1/jobs/{id}"), None);
        assert_eq!(response.status, 200, "poll failed: {}", response.body);
        let record = response.json();
        match record.get("status").and_then(Json::as_str) {
            Some("queued") | Some("running") => {}
            Some(_) => return record,
            None => panic!("record without status: {}", response.body),
        }
        assert!(Instant::now() < deadline, "job {id} did not finish in time");
        std::thread::sleep(POLL_INTERVAL);
    }
}

/// Snapshot a single counter (0 when it has not been touched yet).
fn counter(name: &str) -> u64 {
    tele::snapshot().counters.get(name).copied().unwrap_or(0)
}

/// Waits for a counter to reach at least `target` — worker threads flush
/// their buffers just after publishing the job status, so a fast poll can
/// observe `done` before the counters land.
fn await_counter_at_least(name: &str, target: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let value = counter(name);
        if value >= target || Instant::now() >= deadline {
            return value;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn loopback_end_to_end() {
    tele::set_enabled(true);

    // Reference: the same case computed directly through the library path
    // the server uses (Session -> run_method -> inspect_mask). This also
    // builds the shared kernel bank, so the server workers below must hit
    // the warm cache instead of re-running the eigendecomposition.
    let config = ilt_core::ExperimentConfig::test_tiny();
    let executor = TileExecutor::new(2);
    let session = Session::new(config.clone()).expect("reference session");
    let target = generate_clip(&config.generator, 3);
    let flow = session
        .run_method(Method::Ours, &target, &executor)
        .expect("reference flow");
    let partition =
        Partition::new(target.width(), target.height(), config.partition).expect("partition");
    let (quality, stitch) = session
        .inspect_mask(&partition.stitch_lines(), &target, &flow.mask)
        .expect("reference inspection");

    // The reference run recorded its cache counters into this thread's
    // buffer; land them in the global sink before taking baselines.
    tele::flush_thread();
    let bank_misses_cold = counter("litho.bank_cache.miss");
    let bank_hits_cold = counter("litho.bank_cache.hit");

    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 2,
        workers: 1,
        tile_workers: 2,
        inner_threads: 1,
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();

    // Health check.
    let health = request(addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().get("status").and_then(Json::as_str),
        Some("ok")
    );

    // Submit the same case and poll it to completion.
    let spec = r#"{"case":3,"method":"ours","scale":"tiny"}"#;
    let accepted = request(addr, "POST", "/v1/jobs", Some(spec));
    assert_eq!(accepted.status, 202, "submit failed: {}", accepted.body);
    let first_id = accepted
        .json()
        .get("id")
        .and_then(Json::as_str)
        .expect("accepted job id")
        .to_string();
    let record = poll_done(addr, &first_id);
    assert_eq!(record.get("status").and_then(Json::as_str), Some("done"));

    // The served metrics must match the direct run exactly: same bank,
    // same target, same flow, so identical L2 / PV band / stitch error.
    let metrics = record.get("metrics").expect("metrics in done record");
    assert_eq!(
        metrics.get("l2").and_then(Json::as_u64),
        Some(quality.l2 as u64)
    );
    assert_eq!(
        metrics.get("pvband").and_then(Json::as_u64),
        Some(quality.pvband as u64)
    );
    let served_stitch = metrics
        .get("stitch")
        .and_then(Json::as_f64)
        .expect("stitch metric");
    assert!(
        (served_stitch - stitch.total).abs() <= 1e-9 * stitch.total.abs().max(1.0),
        "stitch mismatch: served {served_stitch} vs direct {}",
        stitch.total
    );

    // Warm cache: the worker's session must have reused the bank built by
    // the reference run above — a cache hit, and no new eigendecomposition.
    let bank_hits_warm = await_counter_at_least("litho.bank_cache.hit", bank_hits_cold + 1);
    assert!(
        bank_hits_warm > bank_hits_cold,
        "server worker did not hit the shared kernel bank cache"
    );
    assert_eq!(
        counter("litho.bank_cache.miss"),
        bank_misses_cold,
        "server worker rebuilt the kernel bank instead of reusing it"
    );

    // Second identical job: now even the per-worker session is warm.
    let session_hits_before = counter("serve.session_cache.hit");
    let again = request(addr, "POST", "/v1/jobs", Some(spec));
    assert_eq!(again.status, 202);
    let second_id = again
        .json()
        .get("id")
        .and_then(Json::as_str)
        .expect("second job id")
        .to_string();
    let record = poll_done(addr, &second_id);
    assert_eq!(record.get("status").and_then(Json::as_str), Some("done"));
    let session_hits_after =
        await_counter_at_least("serve.session_cache.hit", session_hits_before + 1);
    assert!(
        session_hits_after > session_hits_before,
        "second job did not reuse the worker's cached session"
    );
    assert_eq!(counter("litho.bank_cache.miss"), bank_misses_cold);

    // Admission control: with queue depth 2 and one worker, a burst must
    // overflow the queue and get 429 + Retry-After. Accepted jobs are
    // tracked so we can verify none are lost.
    let mut accepted_ids = Vec::new();
    let mut saw_rejection = false;
    for _ in 0..20 {
        let response = request(addr, "POST", "/v1/jobs", Some(spec));
        match response.status {
            202 => {
                let id = response
                    .json()
                    .get("id")
                    .and_then(Json::as_str)
                    .expect("burst job id")
                    .to_string();
                accepted_ids.push(id);
            }
            429 => {
                assert_eq!(
                    response.header("retry-after"),
                    Some("1"),
                    "429 without Retry-After"
                );
                saw_rejection = true;
                break;
            }
            other => panic!("unexpected submit status {other}: {}", response.body),
        }
    }
    assert!(
        saw_rejection,
        "queue (depth 2, 1 worker) never overflowed across 20 rapid submissions"
    );
    assert!(!accepted_ids.is_empty(), "burst accepted no jobs at all");

    // Graceful drain: shut down while the burst is still queued/running.
    // Every accepted job must finish; nothing may be dropped.
    let summary = handle.shutdown();
    assert_eq!(summary.unfinished, 0, "drain dropped in-flight jobs");
    assert_eq!(summary.failed, 0, "jobs failed during drain");
    assert_eq!(
        summary.completed as usize,
        2 + accepted_ids.len(),
        "drain summary does not account for every accepted job"
    );
}

#[test]
fn rejects_after_drain_and_reports_errors() {
    tele::set_enabled(true);
    // The deliberately-broken job below panics inside the worker (where it
    // is caught); keep its backtrace out of the test output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let deliberate = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("wire width"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("wire width"));
        if !deliberate {
            default_hook(info);
        }
    }));
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 4,
        workers: 1,
        tile_workers: 1,
        inner_threads: 1,
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();

    // Unknown route and malformed spec are client errors, not crashes.
    assert_eq!(request(addr, "GET", "/nope", None).status, 404);
    let bad = request(addr, "POST", "/v1/jobs", Some(r#"{"case":99}"#));
    assert_eq!(bad.status, 400, "out-of-range case must be rejected");
    assert_eq!(request(addr, "GET", "/v1/jobs/123", None).status, 404);

    // A failing job (a 1 px wire width parses but fails the generator's
    // geometry validation) is reported as failed, and does not take down
    // the worker.
    let broken = r#"{"layout":{"seed":1,"wire_width":1},"scale":"tiny"}"#;
    let response = request(addr, "POST", "/v1/jobs", Some(broken));
    assert_eq!(response.status, 202, "submit failed: {}", response.body);
    let id = response
        .json()
        .get("id")
        .and_then(Json::as_str)
        .expect("job id")
        .to_string();
    let record = poll_done(addr, &id);
    assert_eq!(record.get("status").and_then(Json::as_str), Some("failed"));
    assert!(
        record.get("error").and_then(Json::as_str).is_some(),
        "failed record must carry an error message"
    );

    // The drain endpoint flips submissions to 503 while polls keep working.
    let drain = request(addr, "POST", "/admin/shutdown", None);
    assert_eq!(drain.status, 200);
    let refused = request(addr, "POST", "/v1/jobs", Some(r#"{"case":1}"#));
    assert_eq!(refused.status, 503, "draining server must refuse new jobs");
    assert_eq!(
        request(addr, "GET", &format!("/v1/jobs/{id}"), None).status,
        200,
        "polls must keep working during the drain"
    );
    let summary = handle.wait();
    assert_eq!(summary.unfinished, 0);
    assert_eq!(summary.failed, 1, "exactly the broken job failed");
}

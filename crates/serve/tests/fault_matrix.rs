//! Fault-matrix drill: every registered injection point armed at rate 1.0
//! against a live loopback server, asserting the three drill invariants —
//! (a) the process never aborts, (b) every fault surfaces as a typed HTTP
//! error or a degraded-but-valid result, and (c) outcomes are
//! deterministic for a fixed seed.
//!
//! Everything runs in one test function because the fault registry is
//! process-global: arming a point for one scenario must never overlap
//! another. This file is its own integration binary for the same reason —
//! the serve crate's other test binaries run with the registry disarmed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ilt_fault::{points, FaultSpec};
use ilt_json::Json;
use ilt_serve::{start, ServeConfig};
use ilt_telemetry as tele;

const POLL_INTERVAL: Duration = Duration::from_millis(25);
const POLL_BUDGET: Duration = Duration::from_secs(120);

struct ClientResponse {
    status: u16,
    body: String,
}

/// One request on a fresh connection. Returns `None` when the server hung
/// up without answering (the `serve.conn_drop` outcome).
fn raw_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Option<ClientResponse> {
    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let status: u16 = head
        .lines()
        .next()?
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())?;
    Some(ClientResponse {
        status,
        body: body.to_string(),
    })
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
    raw_request(addr, method, path, body)
        .unwrap_or_else(|| panic!("server dropped {method} {path} without answering"))
}

/// Submits a job spec and returns the accepted id.
fn submit(addr: SocketAddr, spec: &str) -> String {
    let response = request(addr, "POST", "/v1/jobs", Some(spec));
    assert_eq!(response.status, 202, "submit failed: {}", response.body);
    Json::parse(&response.body)
        .expect("accepted body parses")
        .get("id")
        .and_then(Json::as_str)
        .expect("accepted job id")
        .to_string()
}

/// Polls a job until it leaves the queued/running states.
fn poll_done(addr: SocketAddr, id: &str) -> Json {
    let deadline = Instant::now() + POLL_BUDGET;
    loop {
        let response = request(addr, "GET", &format!("/v1/jobs/{id}"), None);
        assert_eq!(response.status, 200, "poll failed: {}", response.body);
        let record = Json::parse(&response.body).expect("job record parses");
        match record.get("status").and_then(Json::as_str) {
            Some("queued") | Some("running") => {}
            Some(_) => return record,
            None => panic!("record without status: {}", response.body),
        }
        assert!(Instant::now() < deadline, "job {id} did not finish in time");
        std::thread::sleep(POLL_INTERVAL);
    }
}

fn healthy(addr: SocketAddr) {
    let health = request(addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200, "server unhealthy: {}", health.body);
}

fn counter(name: &str) -> u64 {
    tele::snapshot().counters.get(name).copied().unwrap_or(0)
}

#[test]
fn every_injection_point_fails_cleanly_and_deterministically() {
    tele::set_enabled(true);
    ilt_fault::quiet_injected_panics();
    // One tile worker so the fault registry sees tile invocations in
    // deterministic order (matters for the skip/limit acceptance drill).
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 4,
        workers: 1,
        tile_workers: 1,
        inner_threads: 1,
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();
    healthy(addr);

    let spec = r#"{"case":3,"method":"ours","scale":"tiny"}"#;
    let mut swept: Vec<&str> = Vec::new();

    // tile.panic at rate 1.0: every attempt of every tile dies, yet the
    // job completes with a full mask — every tile degraded to its
    // coarse-grid fallback (1 coarse + 2x9 fine + 9 refine at tiny scale).
    ilt_fault::configure(vec![FaultSpec::always(points::TILE_PANIC, 1)]);
    let id = submit(addr, spec);
    let record = poll_done(addr, &id);
    ilt_fault::clear();
    assert_eq!(record.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(
        record.get("tiles_degraded").and_then(Json::as_u64),
        Some(28),
        "all-tiles drill: {record}"
    );
    assert!(
        record.get("metrics").is_some(),
        "degraded job still reports"
    );
    swept.push(points::TILE_PANIC);
    healthy(addr);

    // tile.slow at rate 1.0: latency only, zero degradation.
    ilt_fault::configure(vec![FaultSpec::always(points::TILE_SLOW, 2)]);
    let id = submit(addr, spec);
    let record = poll_done(addr, &id);
    ilt_fault::clear();
    assert_eq!(record.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(record.get("tiles_degraded").and_then(Json::as_u64), Some(0));
    swept.push(points::TILE_SLOW);

    // serve.queue_full: the production 429 path, Retry-After included.
    ilt_fault::configure(vec![FaultSpec::always(points::SERVE_QUEUE_FULL, 3)]);
    let response = request(addr, "POST", "/v1/jobs", Some(spec));
    ilt_fault::clear();
    assert_eq!(response.status, 429, "{}", response.body);
    swept.push(points::SERVE_QUEUE_FULL);
    healthy(addr);

    // serve.deadline: admission passes, but the budget expires mid-solve
    // and the in-loop deadline checks surface a typed failure.
    ilt_fault::configure(vec![FaultSpec::always(points::SERVE_DEADLINE, 4)]);
    let id = submit(addr, spec);
    let record = poll_done(addr, &id);
    ilt_fault::clear();
    assert_eq!(record.get("status").and_then(Json::as_str), Some("failed"));
    let error = record
        .get("error")
        .and_then(Json::as_str)
        .expect("failed record carries an error");
    assert!(error.contains("deadline exceeded"), "{error}");
    swept.push(points::SERVE_DEADLINE);
    healthy(addr);

    // serve.conn_drop: the server hangs up without answering, and the
    // next (disarmed) request finds it alive.
    let dropped_before = counter("serve.http.conn_dropped");
    ilt_fault::configure(vec![FaultSpec::always(points::SERVE_CONN_DROP, 5)]);
    let dropped = raw_request(addr, "GET", "/healthz", None);
    ilt_fault::clear();
    assert!(dropped.is_none(), "conn_drop must close without a response");
    assert!(counter("serve.http.conn_dropped") > dropped_before);
    swept.push(points::SERVE_CONN_DROP);
    healthy(addr);

    // serve.body_truncate: the body read comes up short of Content-Length
    // — a typed 400, not a hang or a worker crash.
    ilt_fault::configure(vec![FaultSpec::always(points::SERVE_BODY_TRUNCATE, 6)]);
    let response = request(addr, "POST", "/v1/jobs", Some(spec));
    ilt_fault::clear();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(response.body.contains("shorter than Content-Length"));
    swept.push(points::SERVE_BODY_TRUNCATE);
    healthy(addr);

    // serve.body_oversize: the declared size inflates past MAX_BODY → 413.
    ilt_fault::configure(vec![FaultSpec::always(points::SERVE_BODY_OVERSIZE, 7)]);
    let response = request(addr, "POST", "/v1/jobs", Some(spec));
    ilt_fault::clear();
    assert_eq!(response.status, 413, "{}", response.body);
    swept.push(points::SERVE_BODY_OVERSIZE);
    healthy(addr);

    // json.invalid: spec parsing fails with a client-safe 400. (While this
    // point is armed every in-process parse fails, so assert on the raw
    // body, not through Json::parse.)
    ilt_fault::configure(vec![FaultSpec::always(points::JSON_INVALID, 8)]);
    let response = request(addr, "POST", "/v1/jobs", Some(spec));
    ilt_fault::clear();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(response.body.contains("invalid JSON"), "{}", response.body);
    swept.push(points::JSON_INVALID);
    healthy(addr);

    // grid.pgm_truncate is not on the serve request path; drill the
    // reader directly in the same armed process.
    ilt_fault::configure(vec![FaultSpec::always(points::GRID_PGM_TRUNCATE, 9)]);
    let img = ilt_grid::Grid::from_fn(4, 4, |x, y| (x + y) as f64);
    let mut buf = Vec::new();
    ilt_grid::io::write_pgm_to(&mut buf, &img).unwrap();
    let err = ilt_grid::io::read_pgm_from(&buf[..]).unwrap_err();
    ilt_fault::clear();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    swept.push(points::GRID_PGM_TRUNCATE);

    // The sweep above must cover the whole registry — a new injection
    // point without a drill scenario fails here.
    let mut all: Vec<&str> = points::ALL.to_vec();
    let mut covered = swept.clone();
    all.sort_unstable();
    covered.sort_unstable();
    assert_eq!(covered, all, "every registered point needs a drill");

    // Acceptance drill: skip the coarse tile's attempt, then kill both
    // retry attempts of the first fine-stage tile. The job must still
    // answer 200/done with exactly one degraded tile, and the whole
    // outcome must be a pure function of the seed.
    let degraded_jobs_before = counter("serve.jobs.degraded");
    let drill = |seed: u64| -> (String, u64, String) {
        ilt_fault::configure(vec![FaultSpec {
            limit: Some(2),
            skip: 1,
            ..FaultSpec::always(points::TILE_PANIC, seed)
        }]);
        let id = submit(addr, spec);
        let record = poll_done(addr, &id);
        ilt_fault::clear();
        let status = record
            .get("status")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let degraded = record
            .get("tiles_degraded")
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX);
        // Quality metrics + mask summary pin the degraded result
        // bit-for-bit (timings excluded — wall clock is not the drill).
        let fingerprint = format!(
            "{:?}/{:?}/{:?}/{:?}",
            record.path(&["metrics", "l2"]),
            record.path(&["metrics", "pvband"]),
            record.path(&["metrics", "stitch"]),
            record.get("mask")
        );
        (status, degraded, fingerprint)
    };
    let (status_a, degraded_a, fingerprint_a) = drill(1913);
    assert_eq!(status_a, "done");
    assert_eq!(degraded_a, 1, "exactly one fine tile degrades");
    let (status_b, degraded_b, fingerprint_b) = drill(1913);
    assert_eq!(
        (status_a, degraded_a, fingerprint_a),
        (status_b, degraded_b, fingerprint_b),
        "fixed seed, fixed outcome"
    );
    assert!(
        counter("serve.jobs.degraded") >= degraded_jobs_before + 2,
        "degraded jobs must be counted"
    );

    // Disarmed, the same spec solves cleanly end to end.
    let id = submit(addr, spec);
    let record = poll_done(addr, &id);
    assert_eq!(record.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(record.get("tiles_degraded").and_then(Json::as_u64), Some(0));

    let summary = handle.shutdown();
    assert_eq!(summary.unfinished, 0, "drills left jobs behind");
}

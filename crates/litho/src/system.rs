//! A complete lithography system: nominal and defocused optical paths, the
//! resist model, and the process corners of Definition 3.

use ilt_grid::{BitGrid, RealGrid};

use crate::error::LithoError;
use crate::kernels::KernelSet;
use crate::optics::OpticsConfig;
use crate::resist::ResistModel;
use crate::sim::{LithoSimulator, SimWorkspace, SimulationState};
use ilt_par::InnerPool;

/// A process corner of the variation band (Definition 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corner {
    /// Nominal focus, nominal dose.
    Nominal,
    /// Defocus with under-dose: the innermost printed contour.
    Inner,
    /// Nominal focus with over-dose: the outermost printed contour.
    Outer,
}

/// Precomputed kernel banks shared by every simulator the flows create.
///
/// Building the TCC and its eigendecomposition is the expensive one-time
/// step; afterwards, simulators for any region size and scale are cheap
/// (kernel resampling only).
#[derive(Debug, Clone)]
pub struct LithoBank {
    config: OpticsConfig,
    resist: ResistModel,
    nominal: KernelSet,
    defocused: KernelSet,
}

impl LithoBank {
    /// Builds the nominal and defocused kernel sets for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::KernelConstruction`] if the TCC decomposition
    /// fails.
    pub fn new(config: OpticsConfig, resist: ResistModel) -> Result<Self, LithoError> {
        resist.validate();
        let nominal = KernelSet::build(&config, false)?;
        let defocused = KernelSet::build(&config, true)?;
        Ok(LithoBank {
            config,
            resist,
            nominal,
            defocused,
        })
    }

    /// The optics configuration this bank was built from.
    #[inline]
    pub fn config(&self) -> &OpticsConfig {
        &self.config
    }

    /// The resist model shared by all systems from this bank.
    #[inline]
    pub fn resist(&self) -> &ResistModel {
        &self.resist
    }

    /// Estimated resident bytes of this bank (nominal + defocused kernel
    /// spectra; see [`KernelSet::estimated_bytes`]).
    pub fn estimated_bytes(&self) -> u64 {
        self.nominal.estimated_bytes() + self.defocused.estimated_bytes()
    }

    /// Creates a [`LithoSystem`] for a grid of `n x n` pixels covering a
    /// physical region `scale` times larger than the base grid (Eq. (3):
    /// the kernels are resampled at bins `j/scale`).
    ///
    /// For example, with a 128-pixel base grid:
    /// * `system(128, 1)` — a fine-grid tile simulator;
    /// * `system(128, 2)` — the coarse-grid simulator of Eq. (9) (mask
    ///   downsampled 2x, covering a 256-pixel region);
    /// * `system(256, 2)` — the full-resolution large-area simulator used
    ///   for final inspection.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::GridMismatch`] if the scaled kernel support
    /// does not fit `n`, or [`LithoError::Fft`] for non-power-of-two `n`.
    pub fn system(&self, n: usize, scale: usize) -> Result<LithoSystem, LithoError> {
        let nominal = LithoSimulator::new(n, self.nominal.scaled(scale)?)?;
        let defocused = LithoSimulator::new(n, self.defocused.scaled(scale)?)?;
        // The paper uses +-2% dose at a 1 nm pixel pitch; our default grids
        // are ~8x coarser, so the process window is widened to keep the
        // band-to-contour-length ratio comparable (see DESIGN.md).
        Ok(LithoSystem {
            nominal,
            defocused,
            resist: self.resist,
            dose_delta: 0.08,
        })
    }
}

/// Nominal + defocused simulators with the resist model: everything needed
/// to print wafers at all three corners and to drive gradient ILT.
#[derive(Debug)]
pub struct LithoSystem {
    nominal: LithoSimulator,
    defocused: LithoSimulator,
    resist: ResistModel,
    dose_delta: f64,
}

impl LithoSystem {
    /// Grid edge length.
    #[inline]
    pub fn n(&self) -> usize {
        self.nominal.n()
    }

    /// The resist model.
    #[inline]
    pub fn resist(&self) -> &ResistModel {
        &self.resist
    }

    /// The nominal-focus simulator (used by solvers for gradients).
    #[inline]
    pub fn simulator(&self) -> &LithoSimulator {
        &self.nominal
    }

    /// Relative dose excursion of the process window (the paper uses 2% at
    /// a 1 nm pixel; scaled up here to match the coarser default pitch).
    #[inline]
    pub fn dose_delta(&self) -> f64 {
        self.dose_delta
    }

    /// Aerial image at the given focus condition (dose is applied at the
    /// resist, not here).
    ///
    /// # Errors
    ///
    /// Propagates simulator shape errors.
    pub fn aerial(&self, mask: &RealGrid, corner: Corner) -> Result<RealGrid, LithoError> {
        match corner {
            Corner::Inner => self.defocused.aerial_image(mask),
            Corner::Nominal | Corner::Outer => self.nominal.aerial_image(mask),
        }
    }

    /// Forward pass retaining per-kernel fields (nominal focus).
    ///
    /// # Errors
    ///
    /// Propagates simulator shape errors.
    pub fn simulate(&self, mask: &RealGrid) -> Result<SimulationState, LithoError> {
        self.nominal.simulate(mask)
    }

    /// Adjoint pass (nominal focus).
    ///
    /// # Errors
    ///
    /// Propagates simulator shape errors.
    pub fn gradient(
        &self,
        state: &SimulationState,
        dldi: &RealGrid,
    ) -> Result<RealGrid, LithoError> {
        self.nominal.gradient(state, dldi)
    }

    /// Creates a scratch arena sized for the nominal simulator; reuse it
    /// across [`LithoSystem::simulate_into`] / [`LithoSystem::gradient_into`]
    /// iterations for allocation-free solver loops.
    pub fn workspace(&self) -> SimWorkspace {
        self.nominal.workspace()
    }

    /// Allocation-free forward pass into a reusable workspace (nominal
    /// focus). See [`LithoSimulator::simulate_into`].
    ///
    /// # Errors
    ///
    /// Propagates simulator shape errors.
    pub fn simulate_into(&self, mask: &RealGrid, ws: &mut SimWorkspace) -> Result<(), LithoError> {
        self.nominal.simulate_into(mask, ws)
    }

    /// Allocation-free adjoint pass using the fields left in `ws` by
    /// [`LithoSystem::simulate_into`] (nominal focus). See
    /// [`LithoSimulator::gradient_into`].
    ///
    /// # Errors
    ///
    /// Propagates simulator shape errors.
    pub fn gradient_into<'w>(
        &self,
        ws: &'w mut SimWorkspace,
        dldi: &RealGrid,
    ) -> Result<&'w RealGrid, LithoError> {
        self.nominal.gradient_into(ws, dldi)
    }

    /// Replaces the inner pool on both optical paths.
    pub fn set_inner_pool(&mut self, pool: InnerPool) {
        self.nominal.set_inner_pool(pool);
        self.defocused.set_inner_pool(pool);
    }

    /// Replaces the spectral path on both optical paths (see
    /// [`crate::SpectralPath`]).
    pub fn set_spectral_path(&mut self, path: crate::SpectralPath) {
        self.nominal.set_spectral_path(path);
        self.defocused.set_spectral_path(path);
    }

    /// Prints the wafer at a process corner.
    ///
    /// # Errors
    ///
    /// Propagates simulator shape errors.
    pub fn print(&self, mask: &RealGrid, corner: Corner) -> Result<BitGrid, LithoError> {
        ilt_telemetry::counter_add("litho.print", 1);
        let aerial = self.aerial(mask, corner)?;
        let dose = match corner {
            Corner::Nominal => 1.0,
            Corner::Inner => 1.0 - self.dose_delta,
            Corner::Outer => 1.0 + self.dose_delta,
        };
        Ok(self.resist.print_with_dose(&aerial, dose))
    }

    /// Process-variation band: XOR area between the inner and outer corner
    /// prints, plus both prints for inspection.
    ///
    /// # Errors
    ///
    /// Propagates simulator shape errors.
    pub fn pvband(&self, mask: &RealGrid) -> Result<PvBand, LithoError> {
        let inner = self.print(mask, Corner::Inner)?;
        let outer = self.print(mask, Corner::Outer)?;
        let area = inner.xor_count(&outer);
        Ok(PvBand { inner, outer, area })
    }
}

/// The process-variation band of a mask (Definition 3).
#[derive(Debug, Clone)]
pub struct PvBand {
    /// Innermost contour print (defocus, under-dose).
    pub inner: BitGrid,
    /// Outermost contour print (nominal focus, over-dose).
    pub outer: BitGrid,
    /// `|Z_in XOR Z_out|` in pixels.
    pub area: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::{Grid, Rect};

    fn bank() -> LithoBank {
        LithoBank::new(OpticsConfig::test_small(), ResistModel::m1_default()).unwrap()
    }

    fn square_mask(n: usize) -> RealGrid {
        let mut mask = Grid::new(n, n, 0.0);
        mask.fill_rect(Rect::new(20, 20, 44, 44), 1.0);
        mask
    }

    #[test]
    fn system_construction_and_accessors() {
        let bank = bank();
        assert_eq!(bank.config().base_n, 64);
        let sys = bank.system(64, 1).unwrap();
        assert_eq!(sys.n(), 64);
        assert_eq!(sys.resist().threshold, ResistModel::m1_default().threshold);
        assert_eq!(sys.dose_delta(), 0.08);
    }

    #[test]
    fn scaled_system_requires_room_for_support() {
        let bank = bank();
        // support 23 * scale 4 = 92 > 64.
        assert!(matches!(
            bank.system(64, 4),
            Err(LithoError::GridMismatch { .. })
        ));
        assert!(bank.system(256, 4).is_ok());
    }

    #[test]
    fn big_feature_prints_and_background_does_not() {
        let bank = bank();
        let sys = bank.system(64, 1).unwrap();
        let mask = square_mask(64);
        let wafer = sys.print(&mask, Corner::Nominal).unwrap();
        assert_eq!(wafer.get(32, 32), 1, "feature center must print");
        assert_eq!(wafer.get(4, 4), 0, "far background must not print");
    }

    #[test]
    fn corner_ordering_inner_subset_outer() {
        // More dose prints more: the outer contour contains the inner one
        // almost everywhere (defocus can cause rare exceptions; none for a
        // large square).
        let bank = bank();
        let sys = bank.system(64, 1).unwrap();
        let mask = square_mask(64);
        let pv = sys.pvband(&mask).unwrap();
        let violations = pv
            .inner
            .as_slice()
            .iter()
            .zip(pv.outer.as_slice())
            .filter(|(i, o)| **i != 0 && **o == 0)
            .count();
        assert_eq!(violations, 0, "inner print escaping outer print");
        assert!(pv.area > 0, "process window must have nonzero band");
        assert_eq!(pv.area, pv.inner.xor_count(&pv.outer));
    }

    #[test]
    fn defocus_blurs_the_image() {
        // The defocused aerial image has a lower peak on a small feature.
        let bank = bank();
        let sys = bank.system(64, 1).unwrap();
        let mut mask = Grid::new(64, 64, 0.0);
        mask.fill_rect(Rect::new(28, 28, 37, 37), 1.0);
        let nominal = sys.aerial(&mask, Corner::Nominal).unwrap();
        let defocused = sys.aerial(&mask, Corner::Inner).unwrap();
        assert!(defocused.max() < nominal.max());
    }

    #[test]
    fn coarse_simulation_approximates_fine_lowpass() {
        // Eq. (9): simulating a downsampled mask with scale-2 kernels must
        // approximate the downsampled fine-grid aerial image.
        let bank = bank();
        let fine = bank.system(128, 2).unwrap(); // 128 px over a 128-unit region? No:
                                                 // n = 128, scale 2 => physical region 128 units of the base grid at
                                                 // double size: grid pitch 1, kernels stretched 2x in support.
        let coarse = bank.system(64, 2).unwrap();
        let mut mask = Grid::new(128, 128, 0.0);
        mask.fill_rect(Rect::new(40, 40, 88, 72), 1.0);
        let fine_aerial = fine.aerial(&mask, Corner::Nominal).unwrap();
        let down_mask = ilt_grid::resample::downsample(&mask, 2);
        let coarse_aerial = coarse.aerial(&down_mask, Corner::Nominal).unwrap();
        // Compare coarse pixels with the corresponding fine samples.
        let mut worst: f64 = 0.0;
        let mut total = 0.0;
        for y in 0..64 {
            for x in 0..64 {
                let diff = (coarse_aerial.get(x, y) - fine_aerial.get(2 * x, 2 * y)).abs();
                worst = worst.max(diff);
                total += diff;
            }
        }
        // Downsampling a binary mask loses edge detail, so pointwise error
        // at feature edges is real (the paper's motivation for the fine-grid
        // pass); the approximation must still be globally tight.
        assert!(worst < 0.2, "coarse/fine worst-case mismatch {worst}");
        let mean = total / (64.0 * 64.0);
        assert!(mean < 0.02, "coarse/fine mean mismatch {mean}");
    }
}

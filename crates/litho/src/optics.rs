//! Optical system description: projection pupil, illumination source, and
//! the frequency bookkeeping that ties them to FFT grids.
//!
//! All frequencies are expressed in **base-grid bins**: one bin is `1/N` of
//! a cycle per pixel, where `N` is the base simulation size (the paper's
//! lithosimulator input size; 2048 in the paper, 256 by default here). The
//! transmission cross-coefficient kernels are tabulated on that bin grid, so
//! simulating an `sN`-sized region only requires re-sampling the kernels at
//! fractional bins `j/s` (Eq. (3)), never re-deriving the optics.

use ilt_fft::Complex;

/// Description of the partially coherent imaging system.
///
/// # Examples
///
/// ```
/// use ilt_litho::OpticsConfig;
///
/// let cfg = OpticsConfig::default();
/// assert!(cfg.kernel_support() % 2 == 1); // kernels have a center bin
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticsConfig {
    /// Base simulation grid size `N` (power of two).
    pub base_n: usize,
    /// Projection pupil cutoff radius in base-grid bins (`NA / lambda`
    /// expressed on the bin grid).
    pub pupil_radius_bins: f64,
    /// Inner partial-coherence factor of the annular source.
    pub sigma_inner: f64,
    /// Outer partial-coherence factor of the annular source.
    pub sigma_outer: f64,
    /// Source-point sampling step in bins (smaller = more accurate TCC,
    /// more source points).
    pub source_step_bins: f64,
    /// Defocus aberration expressed as the paraxial phase (radians) at the
    /// pupil edge; applied only when building the defocus kernel set.
    pub defocus_edge_phase: f64,
    /// Number of SOCS kernels retained after eigen-truncation.
    pub kernel_count: usize,
}

impl OpticsConfig {
    /// Default configuration used by the benchmark suite: a 256-pixel base
    /// grid with an annular 0.5/0.8 source. The pupil cutoff is chosen so
    /// the layout generator's 16-pixel features print at `k1 ~ 0.45` —
    /// below the Rayleigh limit, the aggressive-RET regime the paper's M1
    /// layer lives in, where assist features matter and their placement
    /// has real freedom.
    pub fn m1_default() -> Self {
        OpticsConfig {
            base_n: 256,
            pupil_radius_bins: 7.2,
            sigma_inner: 0.5,
            sigma_outer: 0.8,
            source_step_bins: 1.2,
            defocus_edge_phase: 2.2,
            kernel_count: 6,
        }
    }

    /// A tiny configuration for fast unit tests: 64-pixel base grid, a
    /// handful of source points, 4 kernels.
    pub fn test_small() -> Self {
        OpticsConfig {
            base_n: 64,
            pupil_radius_bins: 6.0,
            sigma_inner: 0.4,
            sigma_outer: 0.8,
            source_step_bins: 2.0,
            defocus_edge_phase: 2.2,
            kernel_count: 4,
        }
    }

    /// Size `P` of the (odd) kernel support in bins: the mask spectrum can
    /// reach the image only up to `(1 + sigma_outer) * pupil_radius`.
    pub fn kernel_support(&self) -> usize {
        let reach = (1.0 + self.sigma_outer) * self.pupil_radius_bins;
        2 * reach.ceil() as usize + 1
    }

    /// Validates parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is physically or numerically degenerate
    /// (non-power-of-two grid, empty source annulus, kernel support larger
    /// than the grid, no kernels).
    pub fn validate(&self) {
        assert!(
            self.base_n.is_power_of_two() && self.base_n >= 16,
            "base_n must be a power of two of at least 16"
        );
        assert!(
            self.pupil_radius_bins > 0.0,
            "pupil radius must be positive"
        );
        assert!(
            0.0 <= self.sigma_inner
                && self.sigma_inner < self.sigma_outer
                && self.sigma_outer <= 1.0,
            "source annulus must satisfy 0 <= inner < outer <= 1"
        );
        assert!(self.source_step_bins > 0.0, "source step must be positive");
        assert!(self.kernel_count > 0, "must keep at least one kernel");
        assert!(
            self.kernel_support() <= self.base_n,
            "kernel support {} exceeds base grid {}",
            self.kernel_support(),
            self.base_n
        );
    }

    /// Complex pupil value at frequency `(fx, fy)` in bins. `defocused`
    /// selects the aberrated pupil used for the process-variation corner.
    pub fn pupil(&self, fx: f64, fy: f64, defocused: bool) -> Complex {
        let r2 = (fx * fx + fy * fy) / (self.pupil_radius_bins * self.pupil_radius_bins);
        if r2 > 1.0 {
            return Complex::ZERO;
        }
        if defocused {
            // Paraxial defocus: quadratic phase across the pupil.
            Complex::from_polar(1.0, self.defocus_edge_phase * r2)
        } else {
            Complex::ONE
        }
    }

    /// Source points of the annular illuminator, sampled on a square grid of
    /// step [`OpticsConfig::source_step_bins`], with uniform weights summing
    /// to 1.
    ///
    /// # Panics
    ///
    /// Panics if the sampling yields no points (annulus narrower than the
    /// step).
    pub fn source_points(&self) -> Vec<SourcePoint> {
        let r_out = self.sigma_outer * self.pupil_radius_bins;
        let r_in = self.sigma_inner * self.pupil_radius_bins;
        let step = self.source_step_bins;
        let half_cells = (r_out / step).ceil() as i64;
        let mut points = Vec::new();
        for iy in -half_cells..=half_cells {
            for ix in -half_cells..=half_cells {
                let fx = ix as f64 * step;
                let fy = iy as f64 * step;
                let r = (fx * fx + fy * fy).sqrt();
                if r >= r_in - 1e-12 && r <= r_out + 1e-12 {
                    points.push(SourcePoint {
                        fx,
                        fy,
                        weight: 0.0,
                    });
                }
            }
        }
        assert!(
            !points.is_empty(),
            "source sampling step {step} leaves the annulus empty"
        );
        let w = 1.0 / points.len() as f64;
        for p in &mut points {
            p.weight = w;
        }
        points
    }
}

impl Default for OpticsConfig {
    fn default() -> Self {
        OpticsConfig::m1_default()
    }
}

/// One sampled illumination direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourcePoint {
    /// Horizontal frequency offset in bins.
    pub fx: f64,
    /// Vertical frequency offset in bins.
    pub fy: f64,
    /// Relative intensity (all points sum to 1).
    pub weight: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        OpticsConfig::m1_default().validate();
        OpticsConfig::test_small().validate();
    }

    #[test]
    fn kernel_support_is_odd_and_covers_reach() {
        let cfg = OpticsConfig::m1_default();
        let p = cfg.kernel_support();
        assert_eq!(p % 2, 1);
        assert!(p as f64 / 2.0 >= (1.0 + cfg.sigma_outer) * cfg.pupil_radius_bins);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_grid() {
        let cfg = OpticsConfig {
            base_n: 100,
            ..OpticsConfig::m1_default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "annulus")]
    fn rejects_inverted_annulus() {
        let cfg = OpticsConfig {
            sigma_inner: 0.9,
            sigma_outer: 0.5,
            ..OpticsConfig::m1_default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "kernel support")]
    fn rejects_support_exceeding_grid() {
        let cfg = OpticsConfig {
            base_n: 16,
            pupil_radius_bins: 16.0,
            ..OpticsConfig::m1_default()
        };
        cfg.validate();
    }

    #[test]
    fn pupil_cuts_off() {
        let cfg = OpticsConfig::m1_default();
        assert_eq!(cfg.pupil(0.0, 0.0, false), Complex::ONE);
        assert_eq!(
            cfg.pupil(cfg.pupil_radius_bins + 0.1, 0.0, false),
            Complex::ZERO
        );
        // Just inside the edge the pupil transmits with unit magnitude.
        let edge = cfg.pupil(cfg.pupil_radius_bins - 0.01, 0.0, false);
        assert!((edge.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn defocus_adds_phase_without_absorbing() {
        let cfg = OpticsConfig::m1_default();
        let mid = cfg.pupil(cfg.pupil_radius_bins * 0.7, 0.0, true);
        assert!((mid.abs() - 1.0).abs() < 1e-12);
        assert!(mid.arg().abs() > 0.1);
        // No defocus phase at the pupil center.
        assert_eq!(cfg.pupil(0.0, 0.0, true), Complex::ONE);
    }

    #[test]
    fn source_points_lie_in_annulus_and_normalise() {
        let cfg = OpticsConfig::m1_default();
        let pts = cfg.source_points();
        assert!(pts.len() > 10, "expected a populated annulus");
        let r_in = cfg.sigma_inner * cfg.pupil_radius_bins;
        let r_out = cfg.sigma_outer * cfg.pupil_radius_bins;
        let mut total = 0.0;
        for p in &pts {
            let r = (p.fx * p.fx + p.fy * p.fy).sqrt();
            assert!(r >= r_in - 1e-9 && r <= r_out + 1e-9);
            total += p.weight;
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn source_is_symmetric() {
        // The sampled annulus must be symmetric under (fx, fy) -> (-fx, -fy),
        // which keeps aerial images of symmetric masks symmetric.
        let pts = OpticsConfig::m1_default().source_points();
        for p in &pts {
            assert!(
                pts.iter()
                    .any(|q| (q.fx + p.fx).abs() < 1e-9 && (q.fy + p.fy).abs() < 1e-9),
                "missing mirror of ({}, {})",
                p.fx,
                p.fy
            );
        }
    }
}

//! A process-wide kernel-bank cache: one [`LithoBank`] per distinct
//! (optics, resist) parameter set, shared behind an `Arc`.
//!
//! Building a bank means constructing the Hopkins TCC Gram matrix and
//! eigendecomposing it twice (nominal + defocused) — by far the most
//! expensive one-time step in the pipeline. Batch binaries amortise it by
//! building once per process; a long-lived job service must amortise it
//! across *jobs*, which is what this cache does: the first job for a given
//! optical setup pays the eigendecomposition, every later identical job is
//! a `HashMap` hit and an `Arc` clone. Hits and misses feed the
//! `litho.bank_cache.hit` / `litho.bank_cache.miss` telemetry counters —
//! the loopback test in `ilt-serve` asserts warm jobs skip construction
//! entirely by watching them.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::LithoError;
use crate::optics::OpticsConfig;
use crate::resist::ResistModel;
use crate::system::LithoBank;

/// Bit-exact cache key over every parameter that shapes the kernels.
///
/// `f64` fields are keyed by their bit patterns: two configurations hash
/// equal exactly when every parameter is bit-identical, which is the right
/// notion for memoisation (no tolerance surprises, `NaN` never matches
/// itself is irrelevant because [`OpticsConfig::validate`] rejects it).
#[derive(PartialEq, Eq, Hash)]
struct BankKey {
    base_n: usize,
    pupil_radius_bins: u64,
    sigma_inner: u64,
    sigma_outer: u64,
    source_step_bins: u64,
    defocus_edge_phase: u64,
    kernel_count: usize,
    resist_threshold: u64,
    resist_steepness: u64,
}

impl BankKey {
    fn new(config: &OpticsConfig, resist: &ResistModel) -> Self {
        BankKey {
            base_n: config.base_n,
            pupil_radius_bins: config.pupil_radius_bins.to_bits(),
            sigma_inner: config.sigma_inner.to_bits(),
            sigma_outer: config.sigma_outer.to_bits(),
            source_step_bins: config.source_step_bins.to_bits(),
            defocus_edge_phase: config.defocus_edge_phase.to_bits(),
            kernel_count: config.kernel_count,
            resist_threshold: resist.threshold.to_bits(),
            resist_steepness: resist.steepness.to_bits(),
        }
    }
}

static BANKS: OnceLock<Mutex<HashMap<BankKey, Arc<LithoBank>>>> = OnceLock::new();

/// Returns the shared kernel bank for the given parameters, building it on
/// first use.
///
/// The build runs *outside* the cache lock (it can take seconds), so
/// concurrent first requests for the same key may race and both build; the
/// first to finish wins and the loser's bank is dropped. That wastes one
/// build in the worst case but never blocks readers of other keys behind a
/// long eigendecomposition.
///
/// # Errors
///
/// Returns [`LithoError::KernelConstruction`] if the TCC decomposition
/// fails (never cached).
pub fn shared_bank(
    config: &OpticsConfig,
    resist: ResistModel,
) -> Result<Arc<LithoBank>, LithoError> {
    let cache = BANKS.get_or_init(|| Mutex::new(HashMap::new()));
    let key = BankKey::new(config, &resist);
    if let Some(bank) = cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&key)
        .map(Arc::clone)
    {
        ilt_telemetry::counter_add("litho.bank_cache.hit", 1);
        return Ok(bank);
    }
    let mut build = ilt_telemetry::span(ilt_telemetry::names::BUILD);
    build.add_field("what", "kernel_bank");
    let built = Arc::new(LithoBank::new(*config, resist)?);
    drop(build);
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    let bank = map
        .entry(BankKey::new(config, &resist))
        .or_insert_with(|| Arc::clone(&built));
    ilt_telemetry::counter_add("litho.bank_cache.miss", 1);
    Ok(Arc::clone(bank))
}

/// Number of distinct parameter sets currently cached (diagnostics only).
pub fn cached_bank_count() -> usize {
    BANKS
        .get()
        .map(|c| c.lock().unwrap_or_else(|e| e.into_inner()).len())
        .unwrap_or(0)
}

/// Estimated resident bytes of all cached banks (sum of
/// [`LithoBank::estimated_bytes`]; diagnostics only).
pub fn cached_bank_bytes() -> u64 {
    BANKS
        .get()
        .map(|c| {
            c.lock()
                .unwrap_or_else(|e| e.into_inner())
                .values()
                .map(|bank| bank.estimated_bytes())
                .sum()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_parameters_share_one_bank() {
        let config = OpticsConfig::test_small();
        let a = shared_bank(&config, ResistModel::m1_default()).unwrap();
        let b = shared_bank(&config, ResistModel::m1_default()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cached_bank_count() >= 1);
        // Each kernel stores its P x P spectrum plus a same-size precomputed
        // adjoint table; a bank holds the nominal and defocused sets.
        let p = a.config().kernel_support();
        let per_set = (a.config().kernel_count * p * p * 16 * 2) as u64;
        assert!(cached_bank_bytes() >= a.estimated_bytes());
        assert_eq!(a.estimated_bytes(), 2 * per_set);
    }

    #[test]
    fn different_parameters_get_distinct_banks() {
        let config = OpticsConfig::test_small();
        let a = shared_bank(&config, ResistModel::m1_default()).unwrap();
        let mut other = config;
        other.kernel_count = config.kernel_count.saturating_sub(1).max(1);
        let b = shared_bank(&other, ResistModel::m1_default()).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        // Resist parameters are part of the key too: the same optics with a
        // different threshold is a different bank.
        let resist = ResistModel {
            threshold: 0.41,
            ..ResistModel::m1_default()
        };
        let c = shared_bank(&config, resist).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn cached_bank_behaves_like_a_fresh_bank() {
        let config = OpticsConfig::test_small();
        let cached = shared_bank(&config, ResistModel::m1_default()).unwrap();
        let fresh = LithoBank::new(config, ResistModel::m1_default()).unwrap();
        let sys_cached = cached.system(64, 1).unwrap();
        let sys_fresh = fresh.system(64, 1).unwrap();
        let mut mask = ilt_grid::Grid::new(64, 64, 0.0);
        mask.fill_rect(ilt_grid::Rect::new(20, 20, 44, 44), 1.0);
        let a = sys_cached.print(&mask, crate::Corner::Nominal).unwrap();
        let b = sys_fresh.print(&mask, crate::Corner::Nominal).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }
}

//! The Hopkins aerial-image simulator and its adjoint (gradient).
//!
//! Implements Eq. (1)–(3) of the paper: the aerial image is
//! `I = sum_i w_i |IFFT(H_i . FFT(M))|^2`, where each `H_i` occupies only a
//! small centered support of the spectrum, so the per-kernel product touches
//! `P^2` bins while the transforms dominate the cost. The adjoint
//! (`gradient`) backpropagates a loss derivative `dL/dI` to the mask:
//! `dL/dM = 2 Re IFFT( sum_i w_i conj(H_i) . FFT((dL/dI) . A_i) )`.

use ilt_fft::{spectral, Complex, Fft2d};
use ilt_grid::RealGrid;

use crate::error::LithoError;
use crate::kernels::KernelSet;

/// A reusable aerial-image simulator for square `n x n` masks.
#[derive(Debug)]
pub struct LithoSimulator {
    n: usize,
    fft: Fft2d,
    kernels: KernelSet,
    /// `bin[i]` is the unshifted spectrum index of centered support row or
    /// column `i`.
    bin: Vec<usize>,
}

/// Everything the forward pass produced, retained for the adjoint pass.
#[derive(Debug, Clone)]
pub struct SimulationState {
    /// Per-kernel complex fields `A_i = h_i (x) M`, each `n^2` long.
    pub fields: Vec<Vec<Complex>>,
    /// The aerial image `I`.
    pub intensity: RealGrid,
}

impl LithoSimulator {
    /// Creates a simulator for `n x n` masks using the given (already
    /// scaled) kernel set.
    ///
    /// # Errors
    ///
    /// * [`LithoError::GridMismatch`] if the kernel support exceeds `n`;
    /// * [`LithoError::Fft`] if `n` is not a power of two.
    pub fn new(n: usize, kernels: KernelSet) -> Result<Self, LithoError> {
        if kernels.support() > n {
            return Err(LithoError::GridMismatch {
                grid: n,
                support: kernels.support(),
            });
        }
        let fft = Fft2d::new(n, n)?;
        let p = kernels.support();
        let half = p as i64 / 2;
        let bin = (0..p)
            .map(|i| spectral::wrap_index(i as i64 - half, n))
            .collect();
        Ok(LithoSimulator {
            n,
            fft,
            kernels,
            bin,
        })
    }

    /// Simulation grid edge length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The kernel set in use.
    #[inline]
    pub fn kernels(&self) -> &KernelSet {
        &self.kernels
    }

    /// Runs the forward model, returning the aerial image together with the
    /// per-kernel fields needed by [`LithoSimulator::gradient`].
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::MaskShape`] if the mask is not `n x n`.
    pub fn simulate(&self, mask: &RealGrid) -> Result<SimulationState, LithoError> {
        ilt_telemetry::counter_add("litho.simulate", 1);
        self.check_shape(mask)?;
        let n = self.n;
        let p = self.kernels.support();

        let mut spectrum: Vec<Complex> = mask
            .as_slice()
            .iter()
            .map(|&v| Complex::from_re(v))
            .collect();
        self.fft.forward(&mut spectrum)?;

        let mut fields = Vec::with_capacity(self.kernels.len());
        let mut intensity = vec![0.0f64; n * n];
        for kernel in self.kernels.iter() {
            let mut field = vec![Complex::ZERO; n * n];
            let h = kernel.spectrum();
            for r in 0..p {
                let row = self.bin[r] * n;
                for c in 0..p {
                    let idx = row + self.bin[c];
                    field[idx] = spectrum[idx] * h[r * p + c];
                }
            }
            self.fft.inverse(&mut field)?;
            let w = kernel.weight();
            for (acc, z) in intensity.iter_mut().zip(&field) {
                *acc += w * z.norm_sqr();
            }
            fields.push(field);
        }

        Ok(SimulationState {
            fields,
            intensity: RealGrid::from_vec(n, n, intensity),
        })
    }

    /// Convenience wrapper returning only the aerial image.
    ///
    /// # Errors
    ///
    /// Same as [`LithoSimulator::simulate`].
    pub fn aerial_image(&self, mask: &RealGrid) -> Result<RealGrid, LithoError> {
        Ok(self.simulate(mask)?.intensity)
    }

    /// Backpropagates `dL/dI` through the forward model, returning `dL/dM`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::MaskShape`] if `dldi` is not `n x n`, or a
    /// state/shape inconsistency is detected.
    ///
    /// # Panics
    ///
    /// Panics if `state` was produced by a different simulator (field
    /// lengths disagree).
    pub fn gradient(
        &self,
        state: &SimulationState,
        dldi: &RealGrid,
    ) -> Result<RealGrid, LithoError> {
        ilt_telemetry::counter_add("litho.gradient", 1);
        self.check_shape(dldi)?;
        let n = self.n;
        let p = self.kernels.support();
        assert_eq!(
            state.fields.len(),
            self.kernels.len(),
            "state does not match this simulator's kernel count"
        );

        let mut accum = vec![Complex::ZERO; n * n];
        let mut scratch = vec![Complex::ZERO; n * n];
        for (kernel, field) in self.kernels.iter().zip(&state.fields) {
            assert_eq!(field.len(), n * n, "field length mismatch");
            for ((dst, a), &g) in scratch.iter_mut().zip(field).zip(dldi.as_slice()) {
                *dst = a.scale(g);
            }
            self.fft.forward(&mut scratch)?;
            let h = kernel.spectrum();
            let w = kernel.weight();
            for r in 0..p {
                let row = self.bin[r] * n;
                for c in 0..p {
                    let idx = row + self.bin[c];
                    accum[idx] = accum[idx].mul_add(scratch[idx], h[r * p + c].conj().scale(w));
                }
            }
        }
        self.fft.inverse(&mut accum)?;
        let grad: Vec<f64> = accum.iter().map(|z| 2.0 * z.re).collect();
        Ok(RealGrid::from_vec(n, n, grad))
    }

    fn check_shape(&self, grid: &RealGrid) -> Result<(), LithoError> {
        if grid.width() != self.n || grid.height() != self.n {
            return Err(LithoError::MaskShape {
                expected: self.n,
                actual: (grid.width(), grid.height()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelSet;
    use crate::optics::OpticsConfig;
    use ilt_grid::{Grid, Rect};

    fn simulator() -> LithoSimulator {
        let cfg = OpticsConfig::test_small();
        let kernels = KernelSet::build(&cfg, false).unwrap();
        LithoSimulator::new(cfg.base_n, kernels).unwrap()
    }

    #[test]
    fn rejects_oversized_support() {
        let cfg = OpticsConfig::test_small();
        let kernels = KernelSet::build(&cfg, false).unwrap();
        assert!(matches!(
            LithoSimulator::new(16, kernels),
            Err(LithoError::GridMismatch { .. })
        ));
    }

    #[test]
    fn rejects_wrong_mask_shape() {
        let sim = simulator();
        let mask = Grid::new(32, 32, 0.0);
        assert!(matches!(
            sim.aerial_image(&mask),
            Err(LithoError::MaskShape { .. })
        ));
    }

    #[test]
    fn clear_field_prints_at_unity() {
        let sim = simulator();
        let mask = Grid::new(sim.n(), sim.n(), 1.0);
        let aerial = sim.aerial_image(&mask).unwrap();
        for (_, _, &v) in aerial.iter() {
            assert!((v - 1.0).abs() < 1e-9, "clear field intensity {v}");
        }
    }

    #[test]
    fn dark_field_prints_nothing() {
        let sim = simulator();
        let mask = Grid::new(sim.n(), sim.n(), 0.0);
        let aerial = sim.aerial_image(&mask).unwrap();
        assert!(aerial.max() < 1e-12);
    }

    #[test]
    fn intensity_is_nonnegative_and_bounded() {
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::new(n, n, 0.0);
        mask.fill_rect(Rect::new(20, 20, 44, 44), 1.0);
        let aerial = sim.aerial_image(&mask).unwrap();
        assert!(aerial.min() >= 0.0);
        // A binary mask can slightly overshoot 1 via ringing, but not wildly.
        assert!(aerial.max() < 1.6, "max {}", aerial.max());
    }

    #[test]
    fn image_is_blurred_version_of_mask() {
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::new(n, n, 0.0);
        mask.fill_rect(Rect::new(24, 24, 40, 40), 1.0);
        let aerial = sim.aerial_image(&mask).unwrap();
        // Bright inside, dim far away, intermediate at the edge.
        assert!(aerial.get(32, 32) > 0.4);
        assert!(aerial.get(4, 4) < 0.05);
        let edge = aerial.get(24, 32);
        assert!(edge > 0.1 && edge < aerial.get(32, 32));
    }

    #[test]
    fn shift_invariance() {
        // Shifting the mask shifts the image (circularly).
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::new(n, n, 0.0);
        mask.fill_rect(Rect::new(10, 12, 22, 20), 1.0);
        let a = sim.aerial_image(&mask).unwrap();
        let mut shifted = Grid::new(n, n, 0.0);
        shifted.fill_rect(Rect::new(15, 12, 27, 20), 1.0);
        let b = sim.aerial_image(&shifted).unwrap();
        for y in 0..n {
            for x in 0..n - 5 {
                assert!((a.get(x, y) - b.get(x + 5, y)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fields_match_intensity() {
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::new(n, n, 0.0);
        mask.fill_rect(Rect::new(16, 16, 48, 32), 1.0);
        let state = sim.simulate(&mask).unwrap();
        let recomputed: f64 = sim
            .kernels()
            .iter()
            .zip(&state.fields)
            .map(|(k, f)| k.weight() * f[33 * n + 20].norm_sqr())
            .sum();
        assert!((recomputed - state.intensity.get(20, 33)).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::from_fn(n, n, |x, y| {
            0.3 + 0.2 * ((x as f64 * 0.3).sin() * (y as f64 * 0.21).cos())
        });
        // Loss: L = sum I (so dL/dI = 1 everywhere).
        let dldi = Grid::new(n, n, 1.0);
        let state = sim.simulate(&mask).unwrap();
        let grad = sim.gradient(&state, &dldi).unwrap();

        let eps = 1e-5;
        for &(px, py) in &[(10usize, 10usize), (30, 17), (5, 40)] {
            let base: f64 = state.intensity.sum();
            let original = mask.get(px, py);
            mask.set(px, py, original + eps);
            let bumped: f64 = sim.aerial_image(&mask).unwrap().sum();
            mask.set(px, py, original);
            let numeric = (bumped - base) / eps;
            let analytic = grad.get(px, py);
            assert!(
                (numeric - analytic).abs() < 1e-3 * (1.0 + numeric.abs()),
                "at ({px},{py}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_of_weighted_loss_matches_finite_difference() {
        // dL/dI varying per pixel exercises the per-kernel product path.
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::from_fn(n, n, |x, y| ((x + y) % 3) as f64 * 0.4);
        let dldi = Grid::from_fn(n, n, |x, y| ((x as f64 - y as f64) * 0.01).tanh());
        let state = sim.simulate(&mask).unwrap();
        let grad = sim.gradient(&state, &dldi).unwrap();
        let loss = |intensity: &RealGrid| -> f64 {
            intensity
                .as_slice()
                .iter()
                .zip(dldi.as_slice())
                .map(|(i, g)| i * g)
                .sum()
        };
        let base = loss(&state.intensity);
        let eps = 1e-5;
        let (px, py) = (22, 13);
        let original = mask.get(px, py);
        mask.set(px, py, original + eps);
        let bumped = loss(&sim.aerial_image(&mask).unwrap());
        mask.set(px, py, original);
        let numeric = (bumped - base) / eps;
        let analytic = grad.get(px, py);
        assert!(
            (numeric - analytic).abs() < 1e-3 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }
}

//! The Hopkins aerial-image simulator and its adjoint (gradient).
//!
//! Implements Eq. (1)–(3) of the paper: the aerial image is
//! `I = sum_i w_i |IFFT(H_i . FFT(M))|^2`, where each `H_i` occupies only a
//! small centered support of the spectrum, so the per-kernel product touches
//! `P^2` bins while the transforms dominate the cost. The adjoint
//! (`gradient`) backpropagates a loss derivative `dL/dI` to the mask:
//! `dL/dM = 2 Re IFFT( sum_i w_i conj(H_i) . FFT((dL/dI) . A_i) )`.
//!
//! # Hot-path engineering
//!
//! The simulate/gradient pair is the inner loop of every ILT solver, so it
//! is built to run allocation-free at steady state and to parallelise
//! deterministically:
//!
//! * [`SimWorkspace`] is a scratch arena holding every buffer the two
//!   passes need (mask spectrum, per-kernel fields, per-kernel adjoint
//!   partials, per-worker scratch, the adjoint accumulator, and the output
//!   grids). [`LithoSimulator::simulate_into`] /
//!   [`LithoSimulator::gradient_into`] reuse it across iterations without
//!   touching the heap; the original [`LithoSimulator::simulate`] /
//!   [`LithoSimulator::gradient`] survive as thin allocate-per-call
//!   wrappers.
//! * Per-kernel work (the `K` inverse transforms of `simulate`, the `K`
//!   forward transforms of `gradient`) is spread across an
//!   [`ilt_par::InnerPool`]. Each kernel writes its own buffer and all
//!   cross-kernel reductions happen serially in kernel order afterwards, so
//!   results are **bit-identical** for any thread count.
//! * Per-kernel inverses use [`Fft2d::inverse_support`], skipping the
//!   `n - P` first-pass transforms of rows that the `P x P` crop-multiply
//!   left zero.

use ilt_fft::{spectral, Complex, Fft2d, Rfft2d};
use ilt_grid::{Grid, RealGrid};
use ilt_par::InnerPool;

use crate::error::LithoError;
use crate::kernels::KernelSet;

/// Which spectral representation the simulate/gradient pair runs on.
///
/// Masks and loss derivatives are real, so their spectra are conjugate
/// symmetric; [`SpectralPath::RealHermitian`] (the default) exploits that
/// with real-input transforms and half-spectrum storage, roughly halving
/// the transform work of the mask forward, the per-kernel gradient
/// forwards, and the final adjoint inverse. [`SpectralPath::Complex`] keeps
/// the dense complex pipeline — useful as a reference, and as the
/// historical-cost baseline in the microbenchmarks.
///
/// Both paths satisfy the same guarantees (allocation-free steady state,
/// serial-vs-parallel bit-identity); their outputs agree to floating-point
/// tolerance, not bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpectralPath {
    /// Dense complex transforms end to end (the historical path).
    Complex,
    /// Real-input transforms and Hermitian half-spectrum storage.
    #[default]
    RealHermitian,
}

/// A reusable aerial-image simulator for square `n x n` masks.
#[derive(Debug)]
pub struct LithoSimulator {
    n: usize,
    fft: Fft2d,
    /// Real-input 2-D plan for the Hermitian path (`None` only for grids
    /// too small to pack, which fall back to the complex path).
    rfft: Option<Rfft2d>,
    kernels: KernelSet,
    /// `bin[i]` is the unshifted spectrum index of centered support row or
    /// column `i`.
    bin: Vec<usize>,
    /// Stored half-spectrum columns (`0..=n/2`) the Hermitianised adjoint
    /// accumulator can touch: the support columns and their reflections.
    rbin_cols: Vec<usize>,
    /// Which spectral representation to run on.
    path: SpectralPath,
    /// Worker pool for per-kernel and per-row-batch parallelism. Serial by
    /// default; see [`LithoSimulator::with_inner_pool`].
    pool: InnerPool,
}

/// Everything the forward pass produced, retained for the adjoint pass.
#[derive(Debug, Clone)]
pub struct SimulationState {
    /// Per-kernel complex fields `A_i = h_i (x) M`, each `n^2` long.
    pub fields: Vec<Vec<Complex>>,
    /// The aerial image `I`.
    pub intensity: RealGrid,
}

/// Reusable scratch arena for [`LithoSimulator::simulate_into`] and
/// [`LithoSimulator::gradient_into`].
///
/// Holds every intermediate buffer of the forward and adjoint passes so
/// steady-state solver iterations perform no heap allocation. Create one
/// with [`LithoSimulator::workspace`] and reuse it across iterations; if it
/// is ever handed to a simulator of a different shape it transparently
/// reallocates (counted on the `litho.workspace.realloc` telemetry
/// counter).
#[derive(Debug)]
pub struct SimWorkspace {
    n: usize,
    /// Mask spectrum `FFT(M)`, `n^2` (complex path only; empty otherwise).
    spectrum: Vec<Complex>,
    /// Mask half-spectrum in transposed `(n/2+1) x n` layout (Hermitian
    /// path only; empty otherwise).
    half_spectrum: Vec<Complex>,
    /// Real-transform scratch, `(n/2+1) * n` (Hermitian path only).
    rscratch: Vec<Complex>,
    /// Hermitianised adjoint half-spectrum accumulator, `(n/2+1) * n`
    /// (Hermitian path only).
    raccum: Vec<Complex>,
    /// Per-kernel fields `A_i`, each `n^2`.
    fields: Vec<Vec<Complex>>,
    /// Per-kernel adjoint support products, each `P^2`.
    partials: Vec<Vec<Complex>>,
    /// Per-worker dense scratch for the adjoint forward transforms, each
    /// `n^2`.
    scratch: Vec<Vec<Complex>>,
    /// Adjoint spectral accumulator, `n^2` (complex path only).
    accum: Vec<Complex>,
    /// The aerial image written by the forward pass.
    intensity: RealGrid,
    /// The mask gradient written by the adjoint pass.
    grad: RealGrid,
}

impl SimWorkspace {
    fn new(n: usize, kernel_count: usize, support: usize, workers: usize, real: bool) -> Self {
        let cells = n * n;
        let half_len = if real { (n / 2 + 1) * n } else { 0 };
        let dense_len = if real { 0 } else { cells };
        SimWorkspace {
            n,
            spectrum: vec![Complex::ZERO; dense_len],
            half_spectrum: vec![Complex::ZERO; half_len],
            rscratch: vec![Complex::ZERO; half_len],
            raccum: vec![Complex::ZERO; half_len],
            fields: (0..kernel_count)
                .map(|_| vec![Complex::ZERO; cells])
                .collect(),
            partials: (0..kernel_count)
                .map(|_| vec![Complex::ZERO; support * support])
                .collect(),
            scratch: (0..workers.max(1))
                .map(|_| vec![Complex::ZERO; cells])
                .collect(),
            accum: vec![Complex::ZERO; dense_len],
            intensity: Grid::new(n, n, 0.0),
            grad: Grid::new(n, n, 0.0),
        }
    }

    /// Grid edge length this workspace is currently sized for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The aerial image produced by the most recent
    /// [`LithoSimulator::simulate_into`].
    #[inline]
    pub fn intensity(&self) -> &RealGrid {
        &self.intensity
    }

    /// Per-kernel fields produced by the most recent
    /// [`LithoSimulator::simulate_into`].
    #[inline]
    pub fn fields(&self) -> &[Vec<Complex>] {
        &self.fields
    }

    /// The mask gradient produced by the most recent
    /// [`LithoSimulator::gradient_into`].
    #[inline]
    pub fn grad(&self) -> &RealGrid {
        &self.grad
    }

    /// Consumes the workspace, moving the forward-pass results out as a
    /// [`SimulationState`] (no copies).
    pub fn into_state(self) -> SimulationState {
        SimulationState {
            fields: self.fields,
            intensity: self.intensity,
        }
    }

    /// Resizes any buffer that does not match the requested shape.
    /// Steady-state calls compare a handful of lengths and touch nothing.
    fn ensure(
        &mut self,
        n: usize,
        kernel_count: usize,
        support: usize,
        workers: usize,
        real: bool,
    ) {
        let cells = n * n;
        let p2 = support * support;
        let workers = workers.max(1);
        let half_len = if real { (n / 2 + 1) * n } else { 0 };
        let dense_len = if real { 0 } else { cells };
        let shape_ok = self.n == n
            && self.spectrum.len() == dense_len
            && self.half_spectrum.len() == half_len
            && self.rscratch.len() == half_len
            && self.raccum.len() == half_len
            && self.fields.len() == kernel_count
            && self.fields.iter().all(|f| f.len() == cells)
            && self.partials.len() == kernel_count
            && self.partials.iter().all(|p| p.len() == p2)
            && self.scratch.len() >= workers
            && self.scratch.iter().all(|s| s.len() == cells)
            && self.accum.len() == dense_len
            && self.intensity.width() == n
            && self.intensity.height() == n
            && self.grad.width() == n
            && self.grad.height() == n;
        if !shape_ok {
            ilt_telemetry::counter_add("litho.workspace.realloc", 1);
            *self = SimWorkspace::new(n, kernel_count, support, workers, real);
        }
    }
}

impl LithoSimulator {
    /// Creates a simulator for `n x n` masks using the given (already
    /// scaled) kernel set.
    ///
    /// The simulator starts with the process-configured inner pool
    /// ([`InnerPool::current`], i.e. the `ILT_INNER_THREADS` budget); use
    /// [`LithoSimulator::with_inner_pool`] to override it explicitly.
    ///
    /// # Errors
    ///
    /// * [`LithoError::GridMismatch`] if the kernel support exceeds `n`;
    /// * [`LithoError::Fft`] if `n` is not a power of two.
    pub fn new(n: usize, kernels: KernelSet) -> Result<Self, LithoError> {
        if kernels.support() > n {
            return Err(LithoError::GridMismatch {
                grid: n,
                support: kernels.support(),
            });
        }
        let fft = Fft2d::new(n, n)?;
        let rfft = Rfft2d::new(n).ok();
        let p = kernels.support();
        let half = p as i64 / 2;
        let bin: Vec<usize> = (0..p)
            .map(|i| spectral::wrap_index(i as i64 - half, n))
            .collect();
        // Stored columns the Hermitianised adjoint accumulator can touch:
        // every support column that lands in the stored half, plus the
        // stored image of every support column's reflection.
        let hw = n / 2 + 1;
        let mut rbin_cols: Vec<usize> = bin
            .iter()
            .flat_map(|&c| {
                let refl = (n - c) % n;
                [(c < hw).then_some(c), (refl < hw).then_some(refl)]
            })
            .flatten()
            .collect();
        rbin_cols.sort_unstable();
        rbin_cols.dedup();
        Ok(LithoSimulator {
            n,
            fft,
            rfft,
            kernels,
            bin,
            rbin_cols,
            path: SpectralPath::default(),
            pool: InnerPool::current(),
        })
    }

    /// Returns `self` with the given inner pool (builder style).
    #[must_use]
    pub fn with_inner_pool(mut self, pool: InnerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Returns `self` running on the given spectral path (builder style).
    #[must_use]
    pub fn with_spectral_path(mut self, path: SpectralPath) -> Self {
        self.path = path;
        self
    }

    /// Replaces the spectral path used by simulate/gradient.
    pub fn set_spectral_path(&mut self, path: SpectralPath) {
        self.path = path;
    }

    /// The spectral path currently configured.
    #[inline]
    pub fn spectral_path(&self) -> SpectralPath {
        self.path
    }

    /// Whether this simulator will actually run the Hermitian path (the
    /// configured path, downgraded to complex if no real plan exists for
    /// this grid size).
    #[inline]
    fn real_path(&self) -> bool {
        self.path == SpectralPath::RealHermitian && self.rfft.is_some()
    }

    /// Replaces the inner pool used for per-kernel parallelism.
    pub fn set_inner_pool(&mut self, pool: InnerPool) {
        self.pool = pool;
    }

    /// The inner pool currently in use.
    #[inline]
    pub fn inner_pool(&self) -> InnerPool {
        self.pool
    }

    /// Simulation grid edge length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The kernel set in use.
    #[inline]
    pub fn kernels(&self) -> &KernelSet {
        &self.kernels
    }

    /// Creates a scratch arena sized for this simulator and its pool.
    pub fn workspace(&self) -> SimWorkspace {
        SimWorkspace::new(
            self.n,
            self.kernels.len(),
            self.kernels.support(),
            self.pool.threads(),
            self.real_path(),
        )
    }

    /// Runs the forward model, returning the aerial image together with the
    /// per-kernel fields needed by [`LithoSimulator::gradient`].
    ///
    /// Allocates a fresh workspace per call; inner solver loops should use
    /// [`LithoSimulator::simulate_into`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::MaskShape`] if the mask is not `n x n`.
    pub fn simulate(&self, mask: &RealGrid) -> Result<SimulationState, LithoError> {
        let mut ws = self.workspace();
        self.simulate_into(mask, &mut ws)?;
        Ok(ws.into_state())
    }

    /// Runs the forward model into a reusable workspace: the aerial image
    /// lands in [`SimWorkspace::intensity`], the per-kernel fields (needed
    /// by the adjoint) in [`SimWorkspace::fields`]. Performs no heap
    /// allocation when the workspace already matches this simulator.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::MaskShape`] if the mask is not `n x n`.
    pub fn simulate_into(&self, mask: &RealGrid, ws: &mut SimWorkspace) -> Result<(), LithoError> {
        ilt_telemetry::counter_add("litho.simulate", 1);
        self.check_shape(mask)?;
        let n = self.n;
        let p = self.kernels.support();
        let real = self.real_path();
        ws.ensure(n, self.kernels.len(), p, self.pool.threads(), real);

        let kernels = self.kernels.iter().as_slice();
        let bin = &self.bin;
        let fft = &self.fft;
        if real {
            // The mask is real: a half-length rfft produces the stored half
            // of its conjugate-symmetric spectrum; the crop-multiply reads
            // the missing half through the symmetry.
            let rfft = self.rfft.as_ref().expect("real path implies a plan");
            rfft.forward(
                mask.as_slice(),
                &mut ws.half_spectrum,
                &mut ws.rscratch,
                &self.pool,
            )?;
            let hw = n / 2 + 1;
            let half = &ws.half_spectrum;
            self.pool.for_each_mut(&mut ws.fields, |k, field| {
                let h = kernels[k].spectrum();
                field.fill(Complex::ZERO);
                for r in 0..p {
                    let rr = bin[r];
                    let row = rr * n;
                    for c in 0..p {
                        let cc = bin[c];
                        // Hermitian lookup: stored columns are transposed
                        // (column-contiguous), mirrored columns conjugate.
                        let m = if cc < hw {
                            half[cc * n + rr]
                        } else {
                            half[(n - cc) * n + (n - rr) % n].conj()
                        };
                        field[row + cc] = m * h[r * p + c];
                    }
                }
                fft.inverse_support(field, bin)
                    .expect("field buffer matches plan by construction");
            });
        } else {
            for (dst, &v) in ws.spectrum.iter_mut().zip(mask.as_slice()) {
                *dst = Complex::from_re(v);
            }
            self.fft.forward_with_pool(&mut ws.spectrum, &self.pool)?;

            // Per-kernel crop-multiply + sparse inverse, one kernel per
            // buffer: disjoint writes, so the pool changes nothing about
            // the result.
            let spectrum = &ws.spectrum;
            self.pool.for_each_mut(&mut ws.fields, |k, field| {
                let h = kernels[k].spectrum();
                field.fill(Complex::ZERO);
                for r in 0..p {
                    let row = bin[r] * n;
                    for c in 0..p {
                        let idx = row + bin[c];
                        field[idx] = spectrum[idx] * h[r * p + c];
                    }
                }
                fft.inverse_support(field, bin)
                    .expect("field buffer matches plan by construction");
            });
        }

        // Intensity reduction stays serial and in kernel order so the sum
        // is bit-identical regardless of the pool.
        ws.intensity.as_mut_slice().fill(0.0);
        for (kernel, field) in kernels.iter().zip(&ws.fields) {
            let w = kernel.weight();
            for (acc, z) in ws.intensity.as_mut_slice().iter_mut().zip(field) {
                *acc += w * z.norm_sqr();
            }
        }
        Ok(())
    }

    /// Convenience wrapper returning only the aerial image.
    ///
    /// # Errors
    ///
    /// Same as [`LithoSimulator::simulate`].
    pub fn aerial_image(&self, mask: &RealGrid) -> Result<RealGrid, LithoError> {
        Ok(self.simulate(mask)?.intensity)
    }

    /// Backpropagates `dL/dI` through the forward model, returning `dL/dM`.
    ///
    /// Allocates per call; inner solver loops should use
    /// [`LithoSimulator::gradient_into`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::MaskShape`] if `dldi` is not `n x n`, or a
    /// state/shape inconsistency is detected.
    ///
    /// # Panics
    ///
    /// Panics if `state` was produced by a different simulator (field
    /// lengths disagree).
    pub fn gradient(
        &self,
        state: &SimulationState,
        dldi: &RealGrid,
    ) -> Result<RealGrid, LithoError> {
        let mut ws = self.workspace();
        self.gradient_core(&state.fields, dldi, &mut ws)?;
        Ok(ws.grad)
    }

    /// Backpropagates `dL/dI` using the fields left in the workspace by the
    /// preceding [`LithoSimulator::simulate_into`] call. The gradient lands
    /// in [`SimWorkspace::grad`] (also returned by reference). Performs no
    /// heap allocation when the workspace already matches this simulator.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::MaskShape`] if `dldi` is not `n x n`.
    pub fn gradient_into<'w>(
        &self,
        ws: &'w mut SimWorkspace,
        dldi: &RealGrid,
    ) -> Result<&'w RealGrid, LithoError> {
        // Shape-check before splitting the fields out: `ensure` must see the
        // complete workspace, and the core borrows the fields immutably
        // while writing the other buffers.
        ws.ensure(
            self.n,
            self.kernels.len(),
            self.kernels.support(),
            self.pool.threads(),
            self.real_path(),
        );
        let fields = std::mem::take(&mut ws.fields);
        let result = self.gradient_core(&fields, dldi, ws);
        ws.fields = fields;
        result?;
        Ok(&ws.grad)
    }

    /// The shared adjoint implementation. `fields` are the forward-pass
    /// fields (from a [`SimulationState`] or a workspace); every scratch
    /// buffer comes from `ws`.
    fn gradient_core(
        &self,
        fields: &[Vec<Complex>],
        dldi: &RealGrid,
        ws: &mut SimWorkspace,
    ) -> Result<(), LithoError> {
        ilt_telemetry::counter_add("litho.gradient", 1);
        self.check_shape(dldi)?;
        let n = self.n;
        let p = self.kernels.support();
        assert_eq!(
            fields.len(),
            self.kernels.len(),
            "state does not match this simulator's kernel count"
        );
        for field in fields {
            assert_eq!(field.len(), n * n, "field length mismatch");
        }

        // Per-kernel: scratch = A_i . dL/dI, forward transform, then record
        // the weighted conjugate-kernel product on the P x P support only.
        // Each kernel owns its partial buffer; workers never share scratch.
        let real = self.real_path();
        let kernels = self.kernels.iter().as_slice();
        let bin = &self.bin;
        let fft = &self.fft;
        let dldi_slice = dldi.as_slice();
        self.pool.for_each_with_scratch(
            &mut ws.partials,
            &mut ws.scratch,
            |k, partial, scratch| {
                for ((dst, a), &g) in scratch.iter_mut().zip(&fields[k]).zip(dldi_slice) {
                    *dst = a.scale(g);
                }
                let adj = kernels[k].adjoint_spectrum();
                if real {
                    // Only the P support columns of the spectrum are read
                    // below, so the forward can skip the other column
                    // transforms. The result is transposed; the pool slot is
                    // already a worker, so the column pass stays serial.
                    fft.forward_support_transposed(scratch, bin, &InnerPool::serial())
                        .expect("scratch buffer matches plan by construction");
                    for r in 0..p {
                        for c in 0..p {
                            let idx = bin[c] * n + bin[r];
                            partial[r * p + c] = scratch[idx] * adj[r * p + c];
                        }
                    }
                } else {
                    fft.forward(scratch)
                        .expect("scratch buffer matches plan by construction");
                    for r in 0..p {
                        let row = bin[r] * n;
                        for c in 0..p {
                            let idx = row + bin[c];
                            partial[r * p + c] = scratch[idx] * adj[r * p + c];
                        }
                    }
                }
            },
        );

        if real {
            // Fixed-order Hermitianised reduction: accumulate S + R(S) where
            // R(S)(r,c) = conj(S((n-r)%n, (n-c)%n)), so the inverse rfft of
            // the half-spectrum yields 2.Re(IFFT(S)) = dL/dM directly (the
            // trailing x2 of the complex path is absorbed here).
            let hw = n / 2 + 1;
            ws.raccum.fill(Complex::ZERO);
            for partial in &ws.partials {
                for r in 0..p {
                    let rr = bin[r];
                    let r2 = (n - rr) % n;
                    for c in 0..p {
                        let cc = bin[c];
                        let v = partial[r * p + c];
                        if cc < hw {
                            ws.raccum[cc * n + rr] += v;
                        }
                        let c2 = (n - cc) % n;
                        if c2 < hw {
                            ws.raccum[c2 * n + r2] += v.conj();
                        }
                    }
                }
            }
            // Only the support columns (and their reflections) are nonzero,
            // so the inverse skips the rest of the first-pass transforms.
            let rfft = self.rfft.as_ref().expect("real path implies a plan");
            rfft.inverse_support_scaled(
                &mut ws.raccum,
                ws.grad.as_mut_slice(),
                &mut ws.rscratch,
                Some(&self.rbin_cols),
                1.0,
                &self.pool,
            )?;
        } else {
            // Fixed-order reduction over the P x P support keeps the sum
            // bit-identical for any pool size.
            ws.accum.fill(Complex::ZERO);
            for partial in &ws.partials {
                for r in 0..p {
                    let row = bin[r] * n;
                    for c in 0..p {
                        let idx = row + bin[c];
                        ws.accum[idx] += partial[r * p + c];
                    }
                }
            }
            // The accumulator is zero outside the support rows, so the
            // inverse can skip the remaining first-pass transforms.
            self.fft
                .inverse_support_with_pool(&mut ws.accum, bin, &self.pool)?;
            for (dst, z) in ws.grad.as_mut_slice().iter_mut().zip(&ws.accum) {
                *dst = 2.0 * z.re;
            }
        }
        Ok(())
    }

    fn check_shape(&self, grid: &RealGrid) -> Result<(), LithoError> {
        if grid.width() != self.n || grid.height() != self.n {
            return Err(LithoError::MaskShape {
                expected: self.n,
                actual: (grid.width(), grid.height()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelSet;
    use crate::optics::OpticsConfig;
    use ilt_grid::{Grid, Rect};

    fn simulator() -> LithoSimulator {
        let cfg = OpticsConfig::test_small();
        let kernels = KernelSet::build(&cfg, false).unwrap();
        LithoSimulator::new(cfg.base_n, kernels).unwrap()
    }

    fn wavy_mask(n: usize) -> RealGrid {
        Grid::from_fn(n, n, |x, y| {
            0.3 + 0.2 * ((x as f64 * 0.3).sin() * (y as f64 * 0.21).cos())
        })
    }

    #[test]
    fn rejects_oversized_support() {
        let cfg = OpticsConfig::test_small();
        let kernels = KernelSet::build(&cfg, false).unwrap();
        assert!(matches!(
            LithoSimulator::new(16, kernels),
            Err(LithoError::GridMismatch { .. })
        ));
    }

    #[test]
    fn rejects_wrong_mask_shape() {
        let sim = simulator();
        let mask = Grid::new(32, 32, 0.0);
        assert!(matches!(
            sim.aerial_image(&mask),
            Err(LithoError::MaskShape { .. })
        ));
        let good = Grid::new(sim.n(), sim.n(), 0.5);
        let mut ws = sim.workspace();
        sim.simulate_into(&good, &mut ws).unwrap();
        assert!(matches!(
            sim.gradient_into(&mut ws, &mask),
            Err(LithoError::MaskShape { .. })
        ));
    }

    #[test]
    fn clear_field_prints_at_unity() {
        let sim = simulator();
        let mask = Grid::new(sim.n(), sim.n(), 1.0);
        let aerial = sim.aerial_image(&mask).unwrap();
        for (_, _, &v) in aerial.iter() {
            assert!((v - 1.0).abs() < 1e-9, "clear field intensity {v}");
        }
    }

    #[test]
    fn dark_field_prints_nothing() {
        let sim = simulator();
        let mask = Grid::new(sim.n(), sim.n(), 0.0);
        let aerial = sim.aerial_image(&mask).unwrap();
        assert!(aerial.max() < 1e-12);
    }

    #[test]
    fn intensity_is_nonnegative_and_bounded() {
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::new(n, n, 0.0);
        mask.fill_rect(Rect::new(20, 20, 44, 44), 1.0);
        let aerial = sim.aerial_image(&mask).unwrap();
        assert!(aerial.min() >= 0.0);
        // A binary mask can slightly overshoot 1 via ringing, but not wildly.
        assert!(aerial.max() < 1.6, "max {}", aerial.max());
    }

    #[test]
    fn image_is_blurred_version_of_mask() {
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::new(n, n, 0.0);
        mask.fill_rect(Rect::new(24, 24, 40, 40), 1.0);
        let aerial = sim.aerial_image(&mask).unwrap();
        // Bright inside, dim far away, intermediate at the edge.
        assert!(aerial.get(32, 32) > 0.4);
        assert!(aerial.get(4, 4) < 0.05);
        let edge = aerial.get(24, 32);
        assert!(edge > 0.1 && edge < aerial.get(32, 32));
    }

    #[test]
    fn shift_invariance() {
        // Shifting the mask shifts the image (circularly).
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::new(n, n, 0.0);
        mask.fill_rect(Rect::new(10, 12, 22, 20), 1.0);
        let a = sim.aerial_image(&mask).unwrap();
        let mut shifted = Grid::new(n, n, 0.0);
        shifted.fill_rect(Rect::new(15, 12, 27, 20), 1.0);
        let b = sim.aerial_image(&shifted).unwrap();
        for y in 0..n {
            for x in 0..n - 5 {
                assert!((a.get(x, y) - b.get(x + 5, y)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fields_match_intensity() {
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::new(n, n, 0.0);
        mask.fill_rect(Rect::new(16, 16, 48, 32), 1.0);
        let state = sim.simulate(&mask).unwrap();
        let recomputed: f64 = sim
            .kernels()
            .iter()
            .zip(&state.fields)
            .map(|(k, f)| k.weight() * f[33 * n + 20].norm_sqr())
            .sum();
        assert!((recomputed - state.intensity.get(20, 33)).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let sim = simulator();
        let n = sim.n();
        let mut mask = wavy_mask(n);
        // Loss: L = sum I (so dL/dI = 1 everywhere).
        let dldi = Grid::new(n, n, 1.0);
        let state = sim.simulate(&mask).unwrap();
        let grad = sim.gradient(&state, &dldi).unwrap();

        let eps = 1e-5;
        for &(px, py) in &[(10usize, 10usize), (30, 17), (5, 40)] {
            let base: f64 = state.intensity.sum();
            let original = mask.get(px, py);
            mask.set(px, py, original + eps);
            let bumped: f64 = sim.aerial_image(&mask).unwrap().sum();
            mask.set(px, py, original);
            let numeric = (bumped - base) / eps;
            let analytic = grad.get(px, py);
            assert!(
                (numeric - analytic).abs() < 1e-3 * (1.0 + numeric.abs()),
                "at ({px},{py}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_of_weighted_loss_matches_finite_difference() {
        // dL/dI varying per pixel exercises the per-kernel product path.
        let sim = simulator();
        let n = sim.n();
        let mut mask = Grid::from_fn(n, n, |x, y| ((x + y) % 3) as f64 * 0.4);
        let dldi = Grid::from_fn(n, n, |x, y| ((x as f64 - y as f64) * 0.01).tanh());
        let state = sim.simulate(&mask).unwrap();
        let grad = sim.gradient(&state, &dldi).unwrap();
        let loss = |intensity: &RealGrid| -> f64 {
            intensity
                .as_slice()
                .iter()
                .zip(dldi.as_slice())
                .map(|(i, g)| i * g)
                .sum()
        };
        let base = loss(&state.intensity);
        let eps = 1e-5;
        let (px, py) = (22, 13);
        let original = mask.get(px, py);
        mask.set(px, py, original + eps);
        let bumped = loss(&sim.aerial_image(&mask).unwrap());
        mask.set(px, py, original);
        let numeric = (bumped - base) / eps;
        let analytic = grad.get(px, py);
        assert!(
            (numeric - analytic).abs() < 1e-3 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh_allocation() {
        let sim = simulator();
        let n = sim.n();
        let mask = wavy_mask(n);
        let dldi = Grid::from_fn(n, n, |x, y| ((x * 3 + y) % 7) as f64 * 0.1 - 0.3);

        // Fresh workspace per call.
        let state = sim.simulate(&mask).unwrap();
        let grad = sim.gradient(&state, &dldi).unwrap();

        // One workspace reused across three iterations.
        let mut ws = sim.workspace();
        for _ in 0..3 {
            sim.simulate_into(&mask, &mut ws).unwrap();
            sim.gradient_into(&mut ws, &dldi).unwrap();
        }
        assert_eq!(state.intensity.as_slice(), ws.intensity().as_slice());
        assert_eq!(grad.as_slice(), ws.grad().as_slice());
    }

    #[test]
    fn parallel_pool_is_bit_identical_to_serial() {
        let cfg = OpticsConfig::test_small();
        let kernels = KernelSet::build(&cfg, false).unwrap();
        let serial = LithoSimulator::new(cfg.base_n, kernels.clone())
            .unwrap()
            .with_inner_pool(InnerPool::serial());
        let parallel = LithoSimulator::new(cfg.base_n, kernels)
            .unwrap()
            .with_inner_pool(InnerPool::new(4));
        let n = serial.n();
        let mask = wavy_mask(n);
        let dldi = Grid::from_fn(n, n, |x, y| ((x as f64 - y as f64) * 0.01).tanh());

        let mut ws_s = serial.workspace();
        serial.simulate_into(&mask, &mut ws_s).unwrap();
        serial.gradient_into(&mut ws_s, &dldi).unwrap();

        let mut ws_p = parallel.workspace();
        parallel.simulate_into(&mask, &mut ws_p).unwrap();
        parallel.gradient_into(&mut ws_p, &dldi).unwrap();

        assert_eq!(ws_s.intensity().as_slice(), ws_p.intensity().as_slice());
        assert_eq!(ws_s.grad().as_slice(), ws_p.grad().as_slice());
        for (a, b) in ws_s.fields().iter().zip(ws_p.fields()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn real_and_complex_paths_agree() {
        let cfg = OpticsConfig::test_small();
        let kernels = KernelSet::build(&cfg, false).unwrap();
        let real = LithoSimulator::new(cfg.base_n, kernels.clone()).unwrap();
        assert_eq!(real.spectral_path(), SpectralPath::RealHermitian);
        let complex = LithoSimulator::new(cfg.base_n, kernels)
            .unwrap()
            .with_spectral_path(SpectralPath::Complex);
        let n = real.n();
        let mask = wavy_mask(n);
        let dldi = Grid::from_fn(n, n, |x, y| ((x as f64 - y as f64) * 0.01).tanh());

        let mut ws_r = real.workspace();
        real.simulate_into(&mask, &mut ws_r).unwrap();
        real.gradient_into(&mut ws_r, &dldi).unwrap();
        let mut ws_c = complex.workspace();
        complex.simulate_into(&mask, &mut ws_c).unwrap();
        complex.gradient_into(&mut ws_c, &dldi).unwrap();

        // Different transform orders: equal to floating-point tolerance,
        // not bit for bit.
        for (a, b) in ws_r
            .intensity()
            .as_slice()
            .iter()
            .zip(ws_c.intensity().as_slice())
        {
            assert!((a - b).abs() < 1e-10, "intensity {a} vs {b}");
        }
        for (a, b) in ws_r.grad().as_slice().iter().zip(ws_c.grad().as_slice()) {
            assert!((a - b).abs() < 1e-9, "grad {a} vs {b}");
        }
    }

    #[test]
    fn one_workspace_survives_a_path_switch() {
        let cfg = OpticsConfig::test_small();
        let kernels = KernelSet::build(&cfg, false).unwrap();
        let mut sim = LithoSimulator::new(cfg.base_n, kernels).unwrap();
        let mask = wavy_mask(sim.n());
        let mut ws = sim.workspace();
        sim.simulate_into(&mask, &mut ws).unwrap();
        let real_intensity = ws.intensity().clone();
        sim.set_spectral_path(SpectralPath::Complex);
        sim.simulate_into(&mask, &mut ws).unwrap();
        for (a, b) in real_intensity
            .as_slice()
            .iter()
            .zip(ws.intensity().as_slice())
        {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn workspace_adapts_to_mismatched_simulator() {
        let cfg = OpticsConfig::test_small();
        let kernels = KernelSet::build(&cfg, false).unwrap();
        let sim = LithoSimulator::new(cfg.base_n, kernels.clone()).unwrap();
        let big = LithoSimulator::new(cfg.base_n * 2, kernels.scaled(2).unwrap()).unwrap();
        // A workspace sized for `sim` must still produce correct results
        // when handed to `big`.
        let mut ws = sim.workspace();
        let mask = wavy_mask(big.n());
        big.simulate_into(&mask, &mut ws).unwrap();
        let fresh = big.simulate(&mask).unwrap();
        assert_eq!(fresh.intensity.as_slice(), ws.intensity().as_slice());
    }
}

//! Error type for lithography simulation.

use std::error::Error;
use std::fmt;

use ilt_fft::FftError;

/// Errors returned by kernel construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum LithoError {
    /// The TCC eigendecomposition or kernel resampling failed.
    KernelConstruction {
        /// Human-readable cause.
        reason: String,
    },
    /// Simulation grid and kernel set are incompatible.
    GridMismatch {
        /// Simulation grid edge length.
        grid: usize,
        /// Scaled kernel support edge length.
        support: usize,
    },
    /// The mask does not match the simulator's grid.
    MaskShape {
        /// Expected edge length.
        expected: usize,
        /// Actual mask width and height.
        actual: (usize, usize),
    },
    /// An FFT operation failed.
    Fft(FftError),
}

impl fmt::Display for LithoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LithoError::KernelConstruction { reason } => {
                write!(f, "kernel construction failed: {reason}")
            }
            LithoError::GridMismatch { grid, support } => write!(
                f,
                "kernel support {support} does not fit the {grid}-pixel simulation grid"
            ),
            LithoError::MaskShape { expected, actual } => write!(
                f,
                "mask is {}x{} but the simulator expects {expected}x{expected}",
                actual.0, actual.1
            ),
            LithoError::Fft(e) => write!(f, "fft failure: {e}"),
        }
    }
}

impl Error for LithoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LithoError::Fft(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FftError> for LithoError {
    fn from(e: FftError) -> Self {
        LithoError::Fft(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LithoError::KernelConstruction { reason: "x".into() };
        assert!(e.to_string().contains('x'));
        let e = LithoError::GridMismatch {
            grid: 64,
            support: 100,
        };
        assert!(e.to_string().contains("100"));
        let e = LithoError::MaskShape {
            expected: 64,
            actual: (32, 16),
        };
        assert!(e.to_string().contains("32x16"));
        let e: LithoError = FftError::NonPowerOfTwo { len: 3 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: std::error::Error + Send + Sync>() {}
        check::<LithoError>();
    }
}

//! # ilt-litho
//!
//! Partially coherent lithography simulation built from first principles:
//! annular Köhler illumination, a circular projection pupil with paraxial
//! defocus, Hopkins transmission cross-coefficients, SOCS kernel extraction,
//! FFT-based aerial imaging (Eq. (1)–(3) of the paper), a constant-threshold
//! resist, and the dose/defocus process corners of Definition 3.
//!
//! The paper used the ICCAD-2013 contest kernels; those are proprietary
//! data, so this crate *derives* an equivalent kernel set from the same
//! physics (see `DESIGN.md`). The method under study consumes kernels only
//! through the frequency-domain products of Eq. (2)/(3)/(9), which this
//! crate implements verbatim, including the fractional-bin resampling
//! `H_i(j/s, k/s)` that lets one tabulated set serve every grid scale.
//!
//! # Examples
//!
//! ```
//! use ilt_grid::{Grid, Rect};
//! use ilt_litho::{Corner, LithoBank, OpticsConfig, ResistModel};
//!
//! # fn main() -> Result<(), ilt_litho::LithoError> {
//! let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::default())?;
//! let system = bank.system(64, 1)?;
//! let mut mask = Grid::new(64, 64, 0.0);
//! mask.fill_rect(Rect::new(20, 20, 44, 44), 1.0);
//! let wafer = system.print(&mask, Corner::Nominal)?;
//! assert_eq!(wafer.get(32, 32), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod error;
mod kernels;
mod optics;
mod resist;
mod sim;
mod system;

pub use cache::{cached_bank_bytes, cached_bank_count, shared_bank};
pub use error::LithoError;
pub use kernels::{Kernel, KernelSet};
pub use optics::{OpticsConfig, SourcePoint};
pub use resist::ResistModel;
pub use sim::{LithoSimulator, SimWorkspace, SimulationState, SpectralPath};
pub use system::{Corner, LithoBank, LithoSystem, PvBand};

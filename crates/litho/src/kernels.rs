//! SOCS kernel construction: Abbe source-point factorisation of the Hopkins
//! TCC, compressed by eigendecomposition.
//!
//! The transmission cross-coefficient operator of a partially coherent
//! imaging system is
//!
//! ```text
//! TCC(f1, f2) = sum_s J(s) P(s + f1) conj(P(s + f2))
//! ```
//!
//! which is Hermitian positive semi-definite and already a sum of one
//! rank-one term per source point. Rather than eigendecomposing the
//! `P^2 x P^2` operator directly, we exploit the SVD identity: with
//! `B[s, f] = sqrt(J_s) conj(P(s + f))`, the Gram matrix `G = B B^H` is only
//! `n_src x n_src`; its eigenpairs `(lambda_i, u_i)` yield the SOCS kernels
//! `H_i = B^H u_i / sqrt(lambda_i)` with weights `w_i = lambda_i`. This is
//! the same decomposition the ICCAD-2013 kernels were distributed as.

use ilt_fft::{spectral, Complex};
use ilt_linalg::{eigh, Matrix};

use crate::error::LithoError;
use crate::optics::OpticsConfig;

/// One optical kernel: a weight and a **centered** `support x support`
/// frequency-domain tabulation (`H_i` in the paper's Eq. (2)).
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    weight: f64,
    spectrum: Vec<Complex>,
    /// Precomputed adjoint tabulation `w_i conj(H_i)`, same layout as
    /// `spectrum` — the constant every gradient pass multiplies by per
    /// support bin, hoisted out of the hot loop.
    adjoint: Vec<Complex>,
}

impl Kernel {
    fn new(weight: f64, spectrum: Vec<Complex>) -> Self {
        let adjoint = spectrum.iter().map(|h| h.conj().scale(weight)).collect();
        Kernel {
            weight,
            spectrum,
            adjoint,
        }
    }

    /// SOCS weight `w_i`.
    #[inline]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Centered frequency-domain tabulation, row-major `support x support`.
    #[inline]
    pub fn spectrum(&self) -> &[Complex] {
        &self.spectrum
    }

    /// Centered adjoint tabulation `w_i conj(H_i)`, row-major
    /// `support x support`.
    #[inline]
    pub fn adjoint_spectrum(&self) -> &[Complex] {
        &self.adjoint
    }
}

/// A truncated SOCS kernel set tabulated on a base FFT grid.
///
/// # Examples
///
/// ```
/// use ilt_litho::{KernelSet, OpticsConfig};
///
/// # fn main() -> Result<(), ilt_litho::LithoError> {
/// let set = KernelSet::build(&OpticsConfig::test_small(), false)?;
/// assert!(set.len() > 0);
/// // Weights are positive and sorted descending.
/// let w: Vec<f64> = set.iter().map(|k| k.weight()).collect();
/// assert!(w.windows(2).all(|p| p[0] >= p[1] && p[1] > 0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSet {
    base_n: usize,
    support: usize,
    scale: usize,
    kernels: Vec<Kernel>,
}

impl KernelSet {
    /// Builds the kernel set for the given optics; `defocused` selects the
    /// aberrated pupil (used for the process-window inner corner).
    ///
    /// The returned set is normalised so that a clear field prints with unit
    /// intensity: `sum_i w_i |H_i(0)|^2 = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::KernelConstruction`] if the eigensolver fails
    /// or the optics produce no usable kernels.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`OpticsConfig::validate`]).
    pub fn build(config: &OpticsConfig, defocused: bool) -> Result<Self, LithoError> {
        config.validate();
        let sources = config.source_points();
        let n_src = sources.len();
        let p = config.kernel_support();
        let half = (p / 2) as f64;

        // Pupil rows: row s holds P(s + f) over the centered P x P grid.
        let mut rows: Vec<Vec<Complex>> = Vec::with_capacity(n_src);
        for src in &sources {
            let mut row = Vec::with_capacity(p * p);
            for r in 0..p {
                let fy = r as f64 - half;
                for c in 0..p {
                    let fx = c as f64 - half;
                    row.push(config.pupil(src.fx + fx, src.fy + fy, defocused));
                }
            }
            rows.push(row);
        }

        // Gram matrix G[s, t] = sqrt(J_s J_t) sum_f conj(P(s+f)) P(t+f).
        let gram = Matrix::from_fn(n_src, n_src, |s, t| {
            let js = sources[s].weight;
            let jt = sources[t].weight;
            let mut acc = Complex::ZERO;
            for (a, b) in rows[s].iter().zip(&rows[t]) {
                acc = acc.mul_add(a.conj(), *b);
            }
            acc.scale((js * jt).sqrt())
        });

        let eig = eigh(&gram).map_err(|source| LithoError::KernelConstruction {
            reason: source.to_string(),
        })?;

        let lambda_max = eig.values.first().copied().unwrap_or(0.0);
        if lambda_max <= 0.0 {
            return Err(LithoError::KernelConstruction {
                reason: "TCC has no positive eigenvalues".to_string(),
            });
        }

        let keep = config.kernel_count.min(n_src);
        let mut kernels = Vec::with_capacity(keep);
        for i in 0..keep {
            let lambda = eig.values[i];
            if lambda < 1e-12 * lambda_max {
                break;
            }
            let u = eig.vector(i);
            let sigma = lambda.sqrt();
            // H_i(f) = (1 / sigma) sum_s sqrt(J_s) P(s + f) u_i[s].
            let mut spectrum = vec![Complex::ZERO; p * p];
            for (s, row) in rows.iter().enumerate() {
                let coeff = u[s].scale(sources[s].weight.sqrt() / sigma);
                for (out, pv) in spectrum.iter_mut().zip(row) {
                    *out = out.mul_add(*pv, coeff);
                }
            }
            kernels.push(Kernel::new(lambda, spectrum));
        }
        if kernels.is_empty() {
            return Err(LithoError::KernelConstruction {
                reason: "all kernels truncated away".to_string(),
            });
        }

        let mut set = KernelSet {
            base_n: config.base_n,
            support: p,
            scale: 1,
            kernels,
        };
        set.normalise_clear_field()?;
        Ok(set)
    }

    /// Rescales weights so a clear field images at unit intensity.
    fn normalise_clear_field(&mut self) -> Result<(), LithoError> {
        let dc = self.clear_field_intensity();
        if dc <= 0.0 {
            return Err(LithoError::KernelConstruction {
                reason: "clear-field intensity is zero; cannot normalise".to_string(),
            });
        }
        for k in &mut self.kernels {
            // Rebuild rather than rescale so the adjoint table is always
            // exactly `weight * conj(spectrum)` bit for bit.
            *k = Kernel::new(k.weight / dc, std::mem::take(&mut k.spectrum));
        }
        Ok(())
    }

    /// Intensity a fully transparent mask would produce
    /// (`sum_i w_i |H_i(0)|^2`); exactly 1 after normalisation.
    pub fn clear_field_intensity(&self) -> f64 {
        let center = (self.support / 2) * self.support + self.support / 2;
        self.kernels
            .iter()
            .map(|k| k.weight * k.spectrum[center].norm_sqr())
            .sum()
    }

    /// Number of kernels.
    #[inline]
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Returns `true` if the set holds no kernels (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Kernel support edge length (scaled).
    #[inline]
    pub fn support(&self) -> usize {
        self.support
    }

    /// Base grid size `N` the kernels were tabulated for.
    #[inline]
    pub fn base_n(&self) -> usize {
        self.base_n
    }

    /// Current scale factor `s` relative to the base tabulation.
    #[inline]
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Estimated resident bytes of this set's kernel tables — the
    /// `support x support` complex spectrum *and* the same-size precomputed
    /// adjoint table per kernel (per-kernel headers are ignored). Used by
    /// cache introspection (`/debug/caches`) and store budget math.
    pub fn estimated_bytes(&self) -> u64 {
        self.kernels
            .iter()
            .map(|k| ((k.spectrum.len() + k.adjoint.len()) * std::mem::size_of::<Complex>()) as u64)
            .sum()
    }

    /// Iterates over the kernels, largest weight first.
    pub fn iter(&self) -> std::slice::Iter<'_, Kernel> {
        self.kernels.iter()
    }

    /// Keeps only the `count` strongest kernels (saturating).
    pub fn truncate(&self, count: usize) -> KernelSet {
        let mut out = self.clone();
        out.kernels.truncate(count.max(1));
        out
    }

    /// Resamples every kernel at fractional bins `j/s` (Eq. (3)/(9) of the
    /// paper), producing a set usable on grids covering `s x` larger
    /// physical regions. Scales compose: `set.scaled(2).scaled(2)` equals
    /// `set.scaled(4)` up to interpolation error.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::KernelConstruction`] if resampling fails.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0`.
    pub fn scaled(&self, s: usize) -> Result<KernelSet, LithoError> {
        assert!(s >= 1, "scale factor must be at least 1");
        if s == 1 {
            return Ok(self.clone());
        }
        let mut kernels = Vec::with_capacity(self.kernels.len());
        for k in &self.kernels {
            let spectrum =
                spectral::upsample_centered(&k.spectrum, self.support, s).map_err(|source| {
                    LithoError::KernelConstruction {
                        reason: format!("kernel resampling failed: {source}"),
                    }
                })?;
            kernels.push(Kernel::new(k.weight, spectrum));
        }
        Ok(KernelSet {
            base_n: self.base_n,
            support: self.support * s,
            scale: self.scale * s,
            kernels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KernelSet {
        KernelSet::build(&OpticsConfig::test_small(), false).unwrap()
    }

    #[test]
    fn builds_requested_kernel_count() {
        let cfg = OpticsConfig::test_small();
        let set = small();
        assert_eq!(set.len(), cfg.kernel_count);
        assert_eq!(set.support(), cfg.kernel_support());
        assert_eq!(set.base_n(), cfg.base_n);
        assert_eq!(set.scale(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn weights_positive_descending() {
        let set = small();
        let w: Vec<f64> = set.iter().map(|k| k.weight()).collect();
        assert!(w.iter().all(|&x| x > 0.0));
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn adjoint_table_is_weighted_conjugate() {
        let set = small();
        for k in set.iter() {
            assert_eq!(k.adjoint_spectrum().len(), k.spectrum().len());
            for (a, h) in k.adjoint_spectrum().iter().zip(k.spectrum()) {
                assert_eq!(*a, h.conj().scale(k.weight()));
            }
        }
    }

    #[test]
    fn clear_field_normalised() {
        let set = small();
        assert!((set.clear_field_intensity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_kernel_dominates() {
        // For a well-conditioned source the leading kernel carries most of
        // the energy — the property SOCS truncation relies on.
        let set = small();
        let total: f64 = set.iter().map(|k| k.weight()).sum();
        assert!(set.iter().next().unwrap().weight() / total > 0.3);
    }

    #[test]
    fn kernels_are_band_limited() {
        // No kernel energy outside the shifted-pupil reach.
        let cfg = OpticsConfig::test_small();
        let set = small();
        let p = set.support();
        let half = (p / 2) as f64;
        let reach = (1.0 + cfg.sigma_outer) * cfg.pupil_radius_bins;
        for k in set.iter() {
            for r in 0..p {
                for c in 0..p {
                    let fy = r as f64 - half;
                    let fx = c as f64 - half;
                    if (fx * fx + fy * fy).sqrt() > reach + 1.5 {
                        assert_eq!(k.spectrum()[r * p + c], Complex::ZERO);
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_kernel_energy_is_symmetric() {
        // Individual eigenvectors of degenerate TCC eigenvalues are only
        // determined up to a unitary mix, but the weighted energy
        // sum_i w_i |H_i(f)|^2 equals the TCC diagonal, which is symmetric
        // under f -> -f for a symmetric source. Keep every kernel so the
        // truncation cannot split a degenerate pair.
        let mut cfg = OpticsConfig::test_small();
        cfg.kernel_count = 1000;
        let set = KernelSet::build(&cfg, false).unwrap();
        let p = set.support();
        let energy = |r: usize, c: usize| -> f64 {
            set.iter()
                .map(|k| k.weight() * k.spectrum()[r * p + c].norm_sqr())
                .sum()
        };
        for r in 0..p {
            for c in 0..p {
                let here = energy(r, c);
                let mirrored = energy(p - 1 - r, p - 1 - c);
                assert!(
                    (here - mirrored).abs() < 1e-9 * (1.0 + here.abs()),
                    "asymmetry at ({r},{c}): {here} vs {mirrored}"
                );
            }
        }
    }

    #[test]
    fn defocused_set_differs_from_nominal() {
        let cfg = OpticsConfig::test_small();
        let nominal = KernelSet::build(&cfg, false).unwrap();
        let defocused = KernelSet::build(&cfg, true).unwrap();
        assert_ne!(nominal, defocused);
        // Defocus only adds phase, so the clear field still normalises.
        assert!((defocused.clear_field_intensity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncate_keeps_strongest() {
        let set = small();
        let t = set.truncate(2);
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.iter().next().unwrap().weight(),
            set.iter().next().unwrap().weight()
        );
        // Truncating to zero still keeps one kernel.
        assert_eq!(set.truncate(0).len(), 1);
    }

    #[test]
    fn scaled_preserves_weights_and_dc() {
        let set = small();
        let scaled = set.scaled(2).unwrap();
        assert_eq!(scaled.scale(), 2);
        assert_eq!(scaled.support(), set.support() * 2);
        for (a, b) in set.iter().zip(scaled.iter()) {
            assert_eq!(a.weight(), b.weight());
            let pa = set.support();
            let pb = scaled.support();
            let dc_a = a.spectrum()[(pa / 2) * pa + pa / 2];
            let dc_b = b.spectrum()[(pb / 2) * pb + pb / 2];
            assert!((dc_a - dc_b).abs() < 1e-12);
        }
        // Clear field intensity is preserved under scaling.
        assert!((scaled.clear_field_intensity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_of_one_is_identity() {
        let set = small();
        assert_eq!(set.scaled(1).unwrap(), set);
    }

    #[test]
    fn eigen_reconstruction_approximates_tcc_diagonal() {
        // sum_i w_i |H_i(f)|^2 must approximate TCC(f, f) (before
        // normalisation they are equal for untruncated sets; here we keep
        // all kernels of a tiny config and compare shapes via ratio).
        let mut cfg = OpticsConfig::test_small();
        cfg.kernel_count = 64; // keep everything the source offers
        let set = KernelSet::build(&cfg, false).unwrap();
        let p = set.support();
        let half = (p / 2) as f64;
        let sources = cfg.source_points();
        // Unnormalised TCC diagonal and kernel sum at a few frequencies.
        let probe = [(0i64, 0i64), (2, 0), (0, 3), (-2, 2)];
        let mut ratios = Vec::new();
        for &(fx, fy) in &probe {
            let tcc: f64 = sources
                .iter()
                .map(|s| {
                    s.weight
                        * cfg
                            .pupil(s.fx + fx as f64, s.fy + fy as f64, false)
                            .norm_sqr()
                })
                .sum();
            let r = (half as i64 + fy) as usize;
            let c = (half as i64 + fx) as usize;
            let sum: f64 = set
                .iter()
                .map(|k| k.weight * k.spectrum()[r * p + c].norm_sqr())
                .sum();
            if tcc > 1e-9 {
                ratios.push(sum / tcc);
            }
        }
        // All probes give the same normalisation constant.
        for w in ratios.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6 * w[0].abs(), "{ratios:?}");
        }
    }
}

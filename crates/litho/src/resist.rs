//! The photoresist model: constant threshold for printing, sigmoid
//! relaxation for optimisation.
//!
//! Consistent with the ICCAD-2013 setup the paper uses, the resist is a
//! constant-threshold model: a pixel develops when the (dose-scaled) aerial
//! intensity reaches `threshold`. Gradient-based ILT needs a differentiable
//! surrogate, so the same model also exposes the logistic relaxation
//! `Z = sigmoid(steepness * (I - threshold))` and its derivative.

use ilt_grid::{BitGrid, RealGrid};

/// Constant-threshold resist with a sigmoid relaxation.
///
/// # Examples
///
/// ```
/// use ilt_grid::Grid;
/// use ilt_litho::ResistModel;
///
/// let resist = ResistModel::default();
/// let aerial = Grid::from_vec(2, 1, vec![0.1, 0.9]);
/// let wafer = resist.print(&aerial);
/// assert_eq!(wafer.as_slice(), &[0, 1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResistModel {
    /// Intensity at which the resist switches.
    pub threshold: f64,
    /// Steepness of the sigmoid relaxation.
    pub steepness: f64,
}

impl ResistModel {
    /// The threshold used by the benchmark configuration.
    pub fn m1_default() -> Self {
        ResistModel {
            threshold: 0.32,
            steepness: 32.0,
        }
    }

    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `(0, 1)` or the steepness is not
    /// positive.
    pub fn validate(&self) {
        assert!(
            self.threshold > 0.0 && self.threshold < 1.0,
            "threshold must lie in (0, 1)"
        );
        assert!(self.steepness > 0.0, "steepness must be positive");
    }

    /// Hard-threshold print at nominal dose.
    pub fn print(&self, aerial: &RealGrid) -> BitGrid {
        self.print_with_dose(aerial, 1.0)
    }

    /// Hard-threshold print with the intensity scaled by `dose`.
    pub fn print_with_dose(&self, aerial: &RealGrid, dose: f64) -> BitGrid {
        aerial.map(|&i| u8::from(i * dose >= self.threshold))
    }

    /// Sigmoid-relaxed wafer value `Z = sigmoid(k (I - th))` at one
    /// intensity. The scalar form of [`ResistModel::sigmoid`], for
    /// allocation-free per-pixel loops.
    #[inline]
    pub fn sigmoid_at(&self, intensity: f64) -> f64 {
        logistic(self.steepness * (intensity - self.threshold))
    }

    /// Derivative `dZ/dI = k Z (1 - Z)` at one intensity (scalar form of
    /// [`ResistModel::sigmoid_derivative`]).
    #[inline]
    pub fn sigmoid_derivative_at(&self, intensity: f64) -> f64 {
        self.sigmoid_derivative_from(self.sigmoid_at(intensity))
    }

    /// Derivative `dZ/dI = k Z (1 - Z)` given an already-computed sigmoid
    /// value `z`. Loops that need both `Z` and `dZ/dI` per pixel should
    /// call [`ResistModel::sigmoid_at`] once and feed the result here,
    /// halving the `exp` work.
    #[inline]
    pub fn sigmoid_derivative_from(&self, z: f64) -> f64 {
        self.steepness * z * (1.0 - z)
    }

    /// Sigmoid-relaxed wafer image `Z = sigmoid(k (I - th))`.
    pub fn sigmoid(&self, aerial: &RealGrid) -> RealGrid {
        aerial.map(|&i| self.sigmoid_at(i))
    }

    /// Derivative `dZ/dI = k Z (1 - Z)` evaluated from the aerial image.
    pub fn sigmoid_derivative(&self, aerial: &RealGrid) -> RealGrid {
        aerial.map(|&i| self.sigmoid_derivative_at(i))
    }
}

impl Default for ResistModel {
    fn default() -> Self {
        ResistModel::m1_default()
    }
}

/// Numerically stable logistic function.
fn logistic(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Grid;

    #[test]
    fn default_validates() {
        ResistModel::default().validate();
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        ResistModel {
            threshold: 1.5,
            steepness: 10.0,
        }
        .validate();
    }

    #[test]
    fn print_thresholds_exactly() {
        let r = ResistModel {
            threshold: 0.5,
            steepness: 10.0,
        };
        let aerial = Grid::from_vec(3, 1, vec![0.49, 0.5, 0.51]);
        assert_eq!(r.print(&aerial).as_slice(), &[0, 1, 1]);
    }

    #[test]
    fn dose_scales_intensity() {
        let r = ResistModel {
            threshold: 0.5,
            steepness: 10.0,
        };
        let aerial = Grid::from_vec(1, 1, vec![0.49]);
        assert_eq!(r.print_with_dose(&aerial, 1.05).as_slice(), &[1]);
        assert_eq!(r.print_with_dose(&aerial, 0.95).as_slice(), &[0]);
    }

    #[test]
    fn sigmoid_is_centered_and_monotone() {
        let r = ResistModel {
            threshold: 0.3,
            steepness: 20.0,
        };
        let aerial = Grid::from_vec(3, 1, vec![0.1, 0.3, 0.5]);
        let z = r.sigmoid(&aerial);
        assert!(z.get(0, 0) < 0.5);
        assert!((z.get(1, 0) - 0.5).abs() < 1e-12);
        assert!(z.get(2, 0) > 0.5);
        assert!(z.get(0, 0) < z.get(1, 0) && z.get(1, 0) < z.get(2, 0));
    }

    #[test]
    fn sigmoid_derivative_matches_finite_difference() {
        let r = ResistModel::default();
        let eps = 1e-7;
        for &i0 in &[0.1, 0.32, 0.7] {
            let a = Grid::from_vec(1, 1, vec![i0]);
            let b = Grid::from_vec(1, 1, vec![i0 + eps]);
            let numeric = (r.sigmoid(&b).get(0, 0) - r.sigmoid(&a).get(0, 0)) / eps;
            let analytic = r.sigmoid_derivative(&a).get(0, 0);
            assert!((numeric - analytic).abs() < 1e-5 * (1.0 + analytic.abs()));
        }
    }

    #[test]
    fn logistic_is_stable_for_large_inputs() {
        assert!((logistic(800.0) - 1.0).abs() < 1e-15);
        assert!(logistic(-800.0).abs() < 1e-15);
        assert!((logistic(0.0) - 0.5).abs() < 1e-15);
    }
}

//! Pins the tentpole guarantee: steady-state simulate/gradient iterations
//! through a reused [`ilt_litho::SimWorkspace`] perform **zero** heap
//! allocations.
//!
//! Uses a counting `#[global_allocator]` with a thread-local counter so
//! allocations from unrelated runtime threads cannot pollute the
//! measurement. The counter delegates through [`ilt_prof::TrackingAlloc`]
//! rather than `System` directly, so the profiling allocator's per-stage
//! counters watch the identical allocation stream and must agree with the
//! test's own count. Single test, own binary: a global allocator is
//! process-wide state.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::Cell;

use ilt_grid::Grid;
use ilt_litho::{KernelSet, LithoSimulator, OpticsConfig};
use ilt_par::InnerPool;
use ilt_prof::Stage;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

static TRACKING: ilt_prof::TrackingAlloc = ilt_prof::TrackingAlloc::new();

struct CountingAlloc;

// SAFETY: defers every operation to the tracking allocator (which defers
// to `System`); the bookkeeping only touches a thread-local counter (via
// `try_with`, so TLS teardown is safe).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { TRACKING.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { TRACKING.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { TRACKING.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { TRACKING.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn steady_state_simulate_gradient_is_allocation_free() {
    let cfg = OpticsConfig::test_small();
    let kernels = KernelSet::build(&cfg, false).unwrap();
    // Serial pool: spawning scoped workers necessarily allocates, so the
    // zero-allocation guarantee is about the compute path itself.
    let sim = LithoSimulator::new(cfg.base_n, kernels)
        .unwrap()
        .with_inner_pool(InnerPool::serial());
    let n = sim.n();
    let mask = Grid::from_fn(n, n, |x, y| {
        0.3 + 0.2 * ((x as f64 * 0.3).sin() * (y as f64 * 0.21).cos())
    });
    let dldi = Grid::from_fn(n, n, |x, y| ((x as f64 - y as f64) * 0.01).tanh());
    let mut ws = sim.workspace();

    // Warm-up: first iteration may fault in lazily initialised state
    // (shared FFT plan cache, etc.).
    sim.simulate_into(&mask, &mut ws).unwrap();
    sim.gradient_into(&mut ws, &dldi).unwrap();

    // Watch the steady-state window with the tracking allocator too: only
    // this thread wears the stage tag, so its per-stage counter sees
    // exactly the events the thread-local counter sees — both must be 0.
    ilt_prof::alloc::set_enabled(true);
    let (delta, tracked_delta) = {
        let _tag = ilt_prof::stage_scope(Stage::Fine);
        let before = allocations_on_this_thread();
        let tracked_before = ilt_prof::alloc::stats().stages[Stage::Fine as usize].calls;
        for _ in 0..3 {
            sim.simulate_into(&mask, &mut ws).unwrap();
            sim.gradient_into(&mut ws, &dldi).unwrap();
        }
        (
            allocations_on_this_thread() - before,
            ilt_prof::alloc::stats().stages[Stage::Fine as usize].calls - tracked_before,
        )
    };
    ilt_prof::alloc::set_enabled(false);
    assert_eq!(
        delta, 0,
        "steady-state simulate/gradient iterations must not allocate"
    );
    assert_eq!(
        tracked_delta, 0,
        "tracking allocator per-stage count must agree: zero allocations in the window"
    );

    // Sanity: the measurement itself works — a fresh-workspace call does
    // allocate.
    let before = allocations_on_this_thread();
    let _ = sim.simulate(&mask).unwrap();
    assert!(allocations_on_this_thread() > before);
}

//! # ilt-diag
//!
//! Diagnostics for the multigrid-Schwarz ILT pipeline, three pillars on
//! top of `ilt-telemetry`:
//!
//! * **Spatial quality diagnostics** ([`spatial`]) — per-tile quality
//!   matrices (EPE percentiles, stitch loss, MRC counts attributed by core
//!   rectangle) and coarse heatmaps (EPE hotspots, seam mismatch, MRC
//!   overlay) rendered to PGM/CSV artifacts by the bench harness.
//! * **Convergence anomaly detection** ([`anomaly`]) — stall, divergence,
//!   and oscillation detection over per-iteration loss traces;
//!   [`observe_solve`] turns anomalies into `anomaly` spans in the
//!   telemetry tree and cells in the run's convergence matrix.
//! * **Regression gating** ([`diff`]) — [`compare_reports`] diffs two
//!   `ilt-report` JSON documents (parsed with the dependency-free
//!   [`jsonv::Json`] parser) and lists quality/latency regressions; the
//!   `report_diff` bench binary wraps it for CI.
//!
//! Everything funnels through the process-global [`sink`], gated — like
//! telemetry itself — on [`ilt_telemetry::enabled`]: with `ILT_TRACE`
//! off, every hook is a no-op behind one relaxed atomic load and
//! allocates nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod diff;
/// The JSON value parser, re-exported from [`ilt_json`] where it now lives
/// (kept at its historical `ilt_diag::jsonv` path for compatibility).
pub mod jsonv {
    pub use ilt_json::Json;
}
pub mod report;
pub mod sink;
pub mod spatial;

pub use anomaly::{detect, observe_solve, Anomaly, AnomalyConfig, AnomalyKind};
pub use diff::{compare_reports, DiffThresholds, Regression};
pub use jsonv::Json;
pub use report::{anomalies_from, render_diagnostics_json, AnomalyEvent};
pub use sink::{
    observe_degraded, CaseQuality, DegradedTileRecord, QualitySummary, RunDiagnostics, StageCell,
    TileQuality,
};
pub use spatial::{
    epe_hotspot_grid, mrc_overlay, seam_mismatch_map, tile_quality_matrix, HEATMAP_CELL,
};

/// Serialises tests that flip the global telemetry flag or drain the
/// process-global sink.
#[cfg(test)]
pub(crate) mod testlock {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

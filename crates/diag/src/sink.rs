//! Process-global diagnostics sink.
//!
//! Flow code and the experiment driver record solve traces and quality
//! matrices here while tracing is enabled; the bench harness drains the
//! sink once per run and renders it into the `diagnostics` section of
//! `report.json` plus the on-disk heatmap artifacts. Mirrors the telemetry
//! sink's contract: recording is gated on [`ilt_telemetry::enabled`], and
//! when disabled every entry point is a no-op that allocates nothing.

use std::sync::Mutex;

use ilt_grid::RealGrid;
use ilt_telemetry as tele;

use crate::anomaly::Anomaly;

/// One tile solve observed by [`crate::observe_solve`]: a cell of the
/// flow × stage × tile convergence matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCell {
    /// Flow name (e.g. `ours:pgd`).
    pub flow: String,
    /// Stage label within the flow (e.g. `fine stage 1`).
    pub stage: String,
    /// Tile index within the partition.
    pub tile: usize,
    /// Number of solver iterations recorded.
    pub iterations: usize,
    /// Last recorded loss, if the trace was non-empty.
    pub final_loss: Option<f64>,
    /// Anomalies detected in the loss trace (at most one per kind).
    pub anomalies: Vec<Anomaly>,
}

/// Per-tile quality summary for one (case, method) result.
#[derive(Debug, Clone, PartialEq)]
pub struct TileQuality {
    /// Tile index within the partition.
    pub tile: usize,
    /// Number of EPE gauges inside the tile core.
    pub epe_gauges: usize,
    /// Median |EPE| over the tile's gauges (nearest-rank, found only).
    pub epe_p50: f64,
    /// 95th-percentile |EPE| over the tile's gauges.
    pub epe_p95: f64,
    /// Maximum |EPE| over the tile's gauges.
    pub epe_max: usize,
    /// EPE violations inside the tile (beyond tolerance or missing).
    pub epe_violations: usize,
    /// Stitch loss attributed to the tile (intersections in its core).
    pub stitch: f64,
    /// MRC violations whose bounding box centres in the tile core.
    pub mrc: usize,
}

/// Quality diagnostics for one (case, method) result: the per-tile matrix
/// plus the rendered spatial heatmaps.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseQuality {
    /// Benchmark case name.
    pub case: String,
    /// Method label (e.g. `Ours`).
    pub method: String,
    /// One row per tile of the partition.
    pub tiles: Vec<TileQuality>,
    /// EPE hotspot heatmap (coarse cells, value = worst |EPE| in cell).
    pub epe_heatmap: RealGrid,
    /// Seam mismatch map (coarse cells, value = stitch loss in cell).
    pub seam_map: RealGrid,
    /// MRC violation overlay (coarse cells, value = violation count).
    pub mrc_overlay: RealGrid,
}

impl CaseQuality {
    /// Case-level aggregates folded from the tile rows — the numbers
    /// `report_diff` gates on.
    pub fn summary(&self) -> QualitySummary {
        let mut s = QualitySummary::default();
        for t in &self.tiles {
            s.epe_p95 = s.epe_p95.max(t.epe_p95);
            s.epe_max = s.epe_max.max(t.epe_max);
            s.epe_violations += t.epe_violations;
            s.stitch += t.stitch;
            s.mrc += t.mrc;
        }
        s
    }
}

/// Case-level quality aggregates (see [`CaseQuality::summary`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QualitySummary {
    /// Worst per-tile p95 |EPE|.
    pub epe_p95: f64,
    /// Worst per-tile max |EPE|.
    pub epe_max: usize,
    /// Total EPE violations across tiles.
    pub epe_violations: usize,
    /// Total stitch loss attributed to tiles.
    pub stitch: f64,
    /// Total MRC violations across tiles.
    pub mrc: usize,
}

/// One tile that fell back to its pre-stage (coarse-grid) mask after its
/// solve failed every retry attempt. Recorded by [`crate::observe_degraded`].
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedTileRecord {
    /// Flow name (e.g. `ours:pgd`).
    pub flow: String,
    /// Stage label whose solve failed (e.g. `fine stage 1`).
    pub stage: String,
    /// Tile index within the partition.
    pub tile: usize,
    /// The failure that exhausted the retries.
    pub error: String,
}

/// Everything recorded since the last [`drain`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunDiagnostics {
    /// Convergence matrix cells, in record order.
    pub solves: Vec<StageCell>,
    /// Quality matrices, one per (case, method) inspected under tracing.
    pub cases: Vec<CaseQuality>,
    /// Tiles that degraded to their coarse-grid mask, in record order.
    pub degraded: Vec<DegradedTileRecord>,
}

impl RunDiagnostics {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.solves.is_empty() && self.cases.is_empty() && self.degraded.is_empty()
    }
}

static SINK: Mutex<RunDiagnostics> = Mutex::new(RunDiagnostics {
    solves: Vec::new(),
    cases: Vec::new(),
    degraded: Vec::new(),
});

fn lock() -> std::sync::MutexGuard<'static, RunDiagnostics> {
    SINK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Records one solve cell. No-op unless telemetry is enabled.
pub fn record_solve(cell: StageCell) {
    if !tele::enabled() {
        return;
    }
    lock().solves.push(cell);
}

/// Records one case quality matrix. No-op unless telemetry is enabled.
pub fn record_case(case: CaseQuality) {
    if !tele::enabled() {
        return;
    }
    lock().cases.push(case);
}

/// Records one degraded tile. No-op unless telemetry is enabled.
pub fn record_degraded(record: DegradedTileRecord) {
    if !tele::enabled() {
        return;
    }
    lock().degraded.push(record);
}

/// Observes a tile falling back to its coarse-grid mask: emits a
/// zero-length `degraded` span (so the event sits inside the span tree at
/// the moment it happened) and records a [`DegradedTileRecord`] for the
/// report's diagnostics section. No-op unless telemetry is enabled.
pub fn observe_degraded(flow: &str, stage: &str, tile: usize, error: &str) {
    if !tele::enabled() {
        return;
    }
    let mut span = tele::span(tele::names::DEGRADED);
    span.add_field("flow", flow.to_string());
    span.add_field("stage", stage.to_string());
    span.add_field("tile", tile);
    span.add_field("error", error.to_string());
    record_degraded(DegradedTileRecord {
        flow: flow.to_string(),
        stage: stage.to_string(),
        tile,
        error: error.to_string(),
    });
}

/// Takes and resets the recorded diagnostics.
pub fn drain() -> RunDiagnostics {
    std::mem::take(&mut *lock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Grid;

    #[test]
    fn sink_gates_on_enabled_and_drains_once() {
        let _guard = crate::testlock::lock();
        tele::set_enabled(false);
        let _ = drain();
        record_solve(cell("off"));
        assert!(drain().is_empty());

        tele::set_enabled(true);
        record_solve(cell("on"));
        record_case(CaseQuality {
            case: "c".into(),
            method: "m".into(),
            tiles: vec![],
            epe_heatmap: Grid::new(1, 1, 0.0),
            seam_map: Grid::new(1, 1, 0.0),
            mrc_overlay: Grid::new(1, 1, 0.0),
        });
        tele::set_enabled(false);
        let d = drain();
        assert_eq!(d.solves.len(), 1);
        assert_eq!(d.solves[0].flow, "on");
        assert_eq!(d.cases.len(), 1);
        assert!(drain().is_empty(), "drain resets the sink");
    }

    #[test]
    fn summary_folds_tile_rows() {
        let q = CaseQuality {
            case: "c".into(),
            method: "m".into(),
            tiles: vec![
                TileQuality {
                    tile: 0,
                    epe_gauges: 4,
                    epe_p50: 1.0,
                    epe_p95: 2.0,
                    epe_max: 3,
                    epe_violations: 1,
                    stitch: 0.5,
                    mrc: 2,
                },
                TileQuality {
                    tile: 1,
                    epe_gauges: 4,
                    epe_p50: 0.0,
                    epe_p95: 4.0,
                    epe_max: 5,
                    epe_violations: 2,
                    stitch: 1.5,
                    mrc: 0,
                },
            ],
            epe_heatmap: Grid::new(1, 1, 0.0),
            seam_map: Grid::new(1, 1, 0.0),
            mrc_overlay: Grid::new(1, 1, 0.0),
        };
        let s = q.summary();
        assert_eq!(s.epe_p95, 4.0);
        assert_eq!(s.epe_max, 5);
        assert_eq!(s.epe_violations, 3);
        assert_eq!(s.stitch, 2.0);
        assert_eq!(s.mrc, 2);
    }

    fn cell(flow: &str) -> StageCell {
        StageCell {
            flow: flow.into(),
            stage: "s".into(),
            tile: 0,
            iterations: 1,
            final_loss: Some(1.0),
            anomalies: vec![],
        }
    }
}

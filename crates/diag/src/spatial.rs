//! Spatial quality diagnostics: the per-tile quality matrix and the coarse
//! heatmaps (EPE hotspots, seam mismatch, MRC overlay) written as PGM
//! artifacts.
//!
//! All attribution uses the partition's **core** rectangles — cores
//! partition the layout, so every gauge, stitch intersection, and MRC
//! violation lands in exactly one tile row.

use ilt_grid::{Grid, RealGrid};
use ilt_metrics::{EpeConfig, EpeReport, MrcReport, StitchReport};
use ilt_tile::Partition;

use crate::sink::TileQuality;

/// Heatmap cell size in layout pixels: matches the default EPE gauge
/// spacing so each cell holds on the order of one gauge per edge.
pub const HEATMAP_CELL: usize = 8;

/// Builds the per-tile quality matrix for one (case, method) result.
///
/// Gauges are attributed to the tile whose core contains them; EPE
/// percentiles are exact nearest-rank statistics over the tile's found
/// gauges. Stitch intersections attribute by their sample point, MRC
/// violations by their bounding-box centre.
pub fn tile_quality_matrix(
    partition: &Partition,
    epe: &EpeReport,
    epe_config: &EpeConfig,
    stitch: &StitchReport,
    mrc: &MrcReport,
) -> Vec<TileQuality> {
    partition
        .tiles()
        .iter()
        .map(|tile| {
            let core = tile.core;
            let mut abs: Vec<usize> = Vec::new();
            let mut gauges = 0usize;
            let mut violations = 0usize;
            for g in &epe.gauges {
                if !core.contains(g.x as i64, g.y as i64) {
                    continue;
                }
                gauges += 1;
                match g.epe {
                    Some(e) => {
                        let a = e.unsigned_abs() as usize;
                        abs.push(a);
                        if a > epe_config.tolerance {
                            violations += 1;
                        }
                    }
                    None => violations += 1,
                }
            }
            abs.sort_unstable();
            let stitch_loss: f64 = stitch
                .intersections
                .iter()
                .filter(|i| core.contains(i.x as i64, i.y as i64))
                .map(|i| i.loss)
                .sum();
            let mrc_count = mrc
                .violations
                .iter()
                .filter(|v| {
                    let cx = (v.bbox.x0 + v.bbox.x1) / 2;
                    let cy = (v.bbox.y0 + v.bbox.y1) / 2;
                    core.contains(cx, cy)
                })
                .count();
            TileQuality {
                tile: tile.index,
                epe_gauges: gauges,
                epe_p50: nearest_rank(&abs, 0.5),
                epe_p95: nearest_rank(&abs, 0.95),
                epe_max: abs.last().copied().unwrap_or(0),
                epe_violations: violations,
                stitch: stitch_loss,
                mrc: mrc_count,
            }
        })
        .collect()
}

/// Exact nearest-rank percentile of an ascending-sorted slice (0.0 when
/// empty).
fn nearest_rank(sorted: &[usize], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

fn cell_grid(partition: &Partition, cell: usize) -> RealGrid {
    let w = partition.width().div_ceil(cell).max(1);
    let h = partition.height().div_ceil(cell).max(1);
    Grid::new(w, h, 0.0)
}

/// EPE hotspot heatmap: one coarse cell per `cell x cell` block, valued at
/// the worst |EPE| of the gauges inside it. Gauges that found no contour
/// count as `search_range + 1` — strictly worse than anything measurable.
pub fn epe_hotspot_grid(
    partition: &Partition,
    epe: &EpeReport,
    epe_config: &EpeConfig,
    cell: usize,
) -> RealGrid {
    let mut grid = cell_grid(partition, cell);
    for g in &epe.gauges {
        let (cx, cy) = (g.x / cell, g.y / cell);
        if cx >= grid.width() || cy >= grid.height() {
            continue;
        }
        let a = match g.epe {
            Some(e) => e.unsigned_abs() as f64,
            None => (epe_config.search_range + 1) as f64,
        };
        if a > grid.get(cx, cy) {
            grid.set(cx, cy, a);
        }
    }
    grid
}

/// Seam mismatch map: stitch loss accumulated per coarse cell along the
/// partition's stitch lines.
pub fn seam_mismatch_map(partition: &Partition, stitch: &StitchReport, cell: usize) -> RealGrid {
    let mut grid = cell_grid(partition, cell);
    for i in &stitch.intersections {
        let (cx, cy) = (i.x / cell, i.y / cell);
        if cx >= grid.width() || cy >= grid.height() {
            continue;
        }
        grid.set(cx, cy, grid.get(cx, cy) + i.loss);
    }
    grid
}

/// MRC violation overlay: violation count per coarse cell (by bounding-box
/// centre).
pub fn mrc_overlay(partition: &Partition, mrc: &MrcReport, cell: usize) -> RealGrid {
    let mut grid = cell_grid(partition, cell);
    for v in &mrc.violations {
        let cx = ((v.bbox.x0 + v.bbox.x1) / 2).max(0) as usize / cell;
        let cy = ((v.bbox.y0 + v.bbox.y1) / 2).max(0) as usize / cell;
        if cx >= grid.width() || cy >= grid.height() {
            continue;
        }
        grid.set(cx, cy, grid.get(cx, cy) + 1.0);
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::{BitGrid, Rect};
    use ilt_metrics::{check_mask, edge_placement_error, stitch_loss, MrcRules, StitchConfig};
    use ilt_tile::PartitionConfig;

    fn quad_partition() -> Partition {
        Partition::new(
            128,
            128,
            PartitionConfig {
                tile: 96,
                overlap: 64,
            },
        )
        .unwrap()
    }

    fn target() -> BitGrid {
        let mut t: BitGrid = Grid::new(128, 128, 0);
        // One feature per quadrant core.
        t.fill_rect(Rect::new(16, 16, 48, 48), 1);
        t.fill_rect(Rect::new(80, 80, 112, 112), 1);
        t
    }

    #[test]
    fn matrix_has_one_row_per_tile_and_attributes_by_core() {
        let partition = quad_partition();
        let target = target();
        let mut printed = target.clone();
        // Damage only the second feature (bottom-right core): 2 px shrink.
        printed.fill_rect(Rect::new(80, 80, 112, 112), 0);
        printed.fill_rect(Rect::new(82, 82, 110, 110), 1);
        let config = EpeConfig::m1_default();
        let epe = edge_placement_error(&target, &printed, &config);
        let stitch = stitch_loss(&printed, &[], &StitchConfig::default());
        let mrc = check_mask(&printed, &MrcRules::m1_default());
        let rows = tile_quality_matrix(&partition, &epe, &config, &stitch, &mrc);
        assert_eq!(rows.len(), partition.tiles().len());
        let total_gauges: usize = rows.iter().map(|r| r.epe_gauges).sum();
        assert_eq!(total_gauges, epe.gauges.len(), "cores partition the gauges");
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert_eq!(first.epe_max, 0, "undamaged quadrant is clean");
        assert!(last.epe_max >= 2, "damaged quadrant shows the error");
    }

    #[test]
    fn hotspot_grid_marks_damaged_cells_only() {
        let partition = quad_partition();
        let target = target();
        let mut printed = target.clone();
        printed.fill_rect(Rect::new(80, 80, 112, 112), 0); // feature missing
        let config = EpeConfig::m1_default();
        let epe = edge_placement_error(&target, &printed, &config);
        let grid = epe_hotspot_grid(&partition, &epe, &config, HEATMAP_CELL);
        assert_eq!(grid.width(), 16);
        assert_eq!(grid.height(), 16);
        // Cells over the intact feature stay at zero; the missing feature's
        // gauges read search_range + 1.
        assert_eq!(grid.get(16 / HEATMAP_CELL, 24 / HEATMAP_CELL), 0.0);
        let worst = (0..16)
            .flat_map(|y| (0..16).map(move |x| (x, y)))
            .map(|(x, y)| grid.get(x, y))
            .fold(0.0f64, f64::max);
        assert_eq!(worst, (config.search_range + 1) as f64);
    }

    #[test]
    fn seam_map_accumulates_on_stitch_lines() {
        let partition = quad_partition();
        let mask = target();
        let lines = partition.stitch_lines();
        assert!(!lines.is_empty());
        let report = stitch_loss(&mask, &lines, &StitchConfig::default());
        let map = seam_mismatch_map(&partition, &report, HEATMAP_CELL);
        let total: f64 = (0..map.height())
            .flat_map(|y| (0..map.width()).map(move |x| (x, y)))
            .map(|(x, y)| map.get(x, y))
            .sum();
        assert!(
            (total - report.total).abs() < 1e-9,
            "map conserves total loss"
        );
    }

    #[test]
    fn nearest_rank_percentiles() {
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
        assert_eq!(nearest_rank(&[1, 2, 3, 4], 0.5), 2.0);
        assert_eq!(nearest_rank(&[1, 2, 3, 4], 0.95), 4.0);
        assert_eq!(nearest_rank(&[7], 0.5), 7.0);
    }
}

//! Renders drained diagnostics into the `diagnostics` section of
//! `report.json` (schema `ilt-report/v2`) and extracts anomaly events back
//! out of a telemetry snapshot.

use std::fmt::Write as _;

use ilt_telemetry::{json, names, FieldValue, Telemetry};

use crate::sink::{CaseQuality, RunDiagnostics, StageCell};

/// One anomaly event extracted from the span tree (the flattened form of
/// the `anomaly` spans emitted by [`crate::observe_solve`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyEvent {
    /// Flow name.
    pub flow: String,
    /// Stage label.
    pub stage: String,
    /// Tile index.
    pub tile: u64,
    /// Anomaly kind code (`stall`, `divergence`, `oscillation`).
    pub kind: String,
    /// Iteration where detection fired.
    pub iteration: u64,
    /// Kind-specific magnitude.
    pub value: f64,
}

fn field_str(e: &ilt_telemetry::SpanEvent, key: &str) -> String {
    e.field(key)
        .and_then(FieldValue::as_str)
        .unwrap_or("?")
        .to_string()
}

fn field_f64(e: &ilt_telemetry::SpanEvent, key: &str) -> f64 {
    match e.field(key) {
        Some(FieldValue::F64(v)) => *v,
        Some(FieldValue::U64(v)) => *v as f64,
        Some(FieldValue::I64(v)) => *v as f64,
        _ => 0.0,
    }
}

/// Collects every anomaly span from a drained telemetry snapshot, in
/// record order.
pub fn anomalies_from(telemetry: &Telemetry) -> Vec<AnomalyEvent> {
    telemetry
        .events
        .iter()
        .filter(|e| e.name == names::ANOMALY)
        .map(|e| AnomalyEvent {
            flow: field_str(e, "flow"),
            stage: field_str(e, "stage"),
            tile: e.field("tile").and_then(FieldValue::as_u64).unwrap_or(0),
            kind: field_str(e, "kind"),
            iteration: e
                .field("iteration")
                .and_then(FieldValue::as_u64)
                .unwrap_or(0),
            value: field_f64(e, "value"),
        })
        .collect()
}

/// Renders the `diagnostics` JSON object embedded in `ilt-report/v2`:
/// the convergence matrix (one cell per observed tile solve), the per-case
/// quality matrices with folded summaries, and the flattened anomaly list.
pub fn render_diagnostics_json(diag: &RunDiagnostics, anomalies: &[AnomalyEvent]) -> String {
    let mut out = String::from("{\"convergence\":[");
    for (i, cell) in diag.solves.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_cell(&mut out, cell);
    }
    out.push_str("],\"quality\":[");
    for (i, case) in diag.cases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_case(&mut out, case);
    }
    out.push_str("],\"anomalies\":[");
    for (i, a) in anomalies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_anomaly(&mut out, a);
    }
    out.push_str("],\"degraded\":[");
    for (i, d) in diag.degraded.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_degraded(&mut out, d);
    }
    let _ = write!(out, "],\"tiles_degraded\":{}}}", diag.degraded.len());
    out
}

fn push_cell(out: &mut String, cell: &StageCell) {
    out.push_str("{\"flow\":");
    json::push_str_literal(out, &cell.flow);
    out.push_str(",\"stage\":");
    json::push_str_literal(out, &cell.stage);
    let _ = write!(
        out,
        ",\"tile\":{},\"iterations\":{}",
        cell.tile, cell.iterations
    );
    out.push_str(",\"final_loss\":");
    match cell.final_loss {
        Some(v) => json::push_f64(out, v),
        None => out.push_str("null"),
    }
    out.push_str(",\"anomalies\":[");
    for (i, a) in cell.anomalies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str_literal(out, a.kind.code());
    }
    out.push_str("]}");
}

fn push_case(out: &mut String, case: &CaseQuality) {
    out.push_str("{\"case\":");
    json::push_str_literal(out, &case.case);
    out.push_str(",\"method\":");
    json::push_str_literal(out, &case.method);
    let s = case.summary();
    out.push_str(",\"summary\":{\"epe_p95\":");
    json::push_f64(out, s.epe_p95);
    let _ = write!(
        out,
        ",\"epe_max\":{},\"epe_violations\":{},\"stitch\":",
        s.epe_max, s.epe_violations
    );
    json::push_f64(out, s.stitch);
    let _ = write!(out, ",\"mrc\":{}}}", s.mrc);
    out.push_str(",\"tiles\":[");
    for (i, t) in case.tiles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"tile\":{},\"epe_gauges\":{}", t.tile, t.epe_gauges);
        out.push_str(",\"epe_p50\":");
        json::push_f64(out, t.epe_p50);
        out.push_str(",\"epe_p95\":");
        json::push_f64(out, t.epe_p95);
        let _ = write!(
            out,
            ",\"epe_max\":{},\"epe_violations\":{},\"stitch\":",
            t.epe_max, t.epe_violations
        );
        json::push_f64(out, t.stitch);
        let _ = write!(out, ",\"mrc\":{}}}", t.mrc);
    }
    out.push_str("]}");
}

fn push_degraded(out: &mut String, d: &crate::sink::DegradedTileRecord) {
    out.push_str("{\"flow\":");
    json::push_str_literal(out, &d.flow);
    out.push_str(",\"stage\":");
    json::push_str_literal(out, &d.stage);
    let _ = write!(out, ",\"tile\":{},\"error\":", d.tile);
    json::push_str_literal(out, &d.error);
    out.push('}');
}

fn push_anomaly(out: &mut String, a: &AnomalyEvent) {
    out.push_str("{\"flow\":");
    json::push_str_literal(out, &a.flow);
    out.push_str(",\"stage\":");
    json::push_str_literal(out, &a.stage);
    out.push_str(",\"kind\":");
    json::push_str_literal(out, &a.kind);
    let _ = write!(out, ",\"tile\":{},\"iteration\":{}", a.tile, a.iteration);
    out.push_str(",\"value\":");
    json::push_f64(out, a.value);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::observe_solve;
    use crate::jsonv::Json;
    use ilt_telemetry as tele;

    #[test]
    fn diagnostics_json_parses_and_carries_the_matrix() {
        let _guard = crate::testlock::lock();
        tele::set_enabled(true);
        let _ = tele::drain();
        let _ = crate::sink::drain();
        observe_solve("f:solver", "stage 0", 2, &[10.0, 5.0, 2.5, 1.25]);
        observe_solve("f:solver", "stage 0", 7, &[5.0; 20]);
        tele::flush_thread();
        let t = tele::drain();
        tele::set_enabled(false);
        let diag = crate::sink::drain();
        let anomalies = anomalies_from(&t);
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, "stall");
        assert_eq!(anomalies[0].tile, 7);
        assert_eq!(anomalies[0].stage, "stage 0");

        let rendered = render_diagnostics_json(&diag, &anomalies);
        let v = Json::parse(&rendered).expect("diagnostics JSON must parse");
        let cells = v.get("convergence").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("iterations").and_then(Json::as_f64), Some(4.0));
        assert_eq!(cells[1].get("final_loss").and_then(Json::as_f64), Some(5.0));
        let listed = v.get("anomalies").and_then(Json::as_arr).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].get("kind").and_then(Json::as_str), Some("stall"));
        assert_eq!(v.get("tiles_degraded").and_then(Json::as_f64), Some(0.0));
        assert!(v.get("degraded").and_then(Json::as_arr).unwrap().is_empty());
    }

    #[test]
    fn degraded_tiles_render_into_the_diagnostics_section() {
        let _guard = crate::testlock::lock();
        tele::set_enabled(true);
        let _ = tele::drain();
        let _ = crate::sink::drain();
        crate::sink::observe_degraded("ours:pgd", "fine stage 1", 4, "tile 4 failed: boom");
        tele::flush_thread();
        let t = tele::drain();
        tele::set_enabled(false);
        let diag = crate::sink::drain();
        assert_eq!(diag.degraded.len(), 1);
        // The zero-length span is visible in the trace too.
        assert!(t
            .events
            .iter()
            .any(|e| e.name == ilt_telemetry::names::DEGRADED));

        let rendered = render_diagnostics_json(&diag, &[]);
        let v = Json::parse(&rendered).expect("diagnostics JSON must parse");
        assert_eq!(v.get("tiles_degraded").and_then(Json::as_f64), Some(1.0));
        let listed = v.get("degraded").and_then(Json::as_arr).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(
            listed[0].get("stage").and_then(Json::as_str),
            Some("fine stage 1")
        );
        assert_eq!(listed[0].get("tile").and_then(Json::as_f64), Some(4.0));
        assert_eq!(
            listed[0].get("error").and_then(Json::as_str),
            Some("tile 4 failed: boom")
        );
    }

    #[test]
    fn observe_degraded_is_inert_when_disabled() {
        let _guard = crate::testlock::lock();
        tele::set_enabled(false);
        let _ = crate::sink::drain();
        crate::sink::observe_degraded("f", "s", 0, "boom");
        assert!(crate::sink::drain().degraded.is_empty());
    }
}

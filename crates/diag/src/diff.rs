//! Report comparison for regression gating: compares two `ilt-report`
//! files (v1 or v2) and lists quality/latency regressions of the candidate
//! against the baseline. The `report_diff` bench binary is a thin CLI over
//! [`compare_reports`].

use crate::jsonv::Json;

/// What counts as a regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffThresholds {
    /// A flow's wall seconds may grow by at most this factor.
    pub max_latency_ratio: f64,
    /// A quality number may grow by at most this factor (plus the slack).
    pub max_quality_ratio: f64,
    /// Absolute slack added to every quality bound, so a 0 → 1 violation
    /// jump on a near-clean baseline can be tolerated when loose gating is
    /// wanted.
    pub quality_slack: f64,
    /// Peak RSS (`memory.peak_rss_bytes`) may grow by at most this factor.
    /// Only gates when both reports carry the section, so memory gating
    /// activates the moment a baseline is re-seeded with one.
    pub max_rss_ratio: f64,
    /// Compare latency at all (off for cross-machine comparisons).
    pub check_latency: bool,
    /// Candidate `microbench.iteration_speedup` must be at least this
    /// (absolute, not relative to the baseline). `0.0` disables the gate;
    /// when enabled, a candidate *without* the section fails — the gate
    /// exists precisely to stop the fast path from silently disappearing.
    pub min_iteration_speedup: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            max_latency_ratio: 2.0,
            max_quality_ratio: 1.10,
            quality_slack: 0.5,
            max_rss_ratio: 1.10,
            check_latency: true,
            min_iteration_speedup: 0.0,
        }
    }
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// What regressed, e.g. `latency flow=ours:pgd` or
    /// `quality case=c method=Ours metric=epe_p95`.
    pub what: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: baseline {:.4} -> candidate {:.4}",
            self.what, self.baseline, self.candidate
        )
    }
}

fn schema_of(report: &Json) -> Result<&str, String> {
    let s = report
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if s.starts_with("ilt-report/") {
        Ok(s)
    } else {
        Err(format!("not an ilt-report: schema {s:?}"))
    }
}

/// Flow wall seconds by name.
fn flow_seconds(report: &Json) -> Vec<(String, f64)> {
    report
        .get("flows")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|f| {
            Some((
                f.get("name")?.as_str()?.to_string(),
                f.get("seconds")?.as_f64()?,
            ))
        })
        .collect()
}

/// Quality metric values keyed by metric name.
type MetricRow = Vec<(&'static str, f64)>;

/// Quality summaries by (case, method), from the v2 diagnostics section.
/// Empty for v1 reports.
fn quality_summaries(report: &Json) -> Vec<((String, String), MetricRow)> {
    const METRICS: [&str; 5] = ["epe_p95", "epe_max", "epe_violations", "stitch", "mrc"];
    report
        .path(&["diagnostics", "quality"])
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|q| {
            let key = (
                q.get("case")?.as_str()?.to_string(),
                q.get("method")?.as_str()?.to_string(),
            );
            let summary = q.get("summary")?;
            let metrics = METRICS
                .iter()
                .filter_map(|&m| Some((m, summary.get(m)?.as_f64()?)))
                .collect();
            Some((key, metrics))
        })
        .collect()
}

/// Degraded-tile count from the v2 diagnostics section (0 for v1 reports
/// and pre-degradation v2 reports).
fn tiles_degraded(report: &Json) -> u64 {
    report
        .path(&["diagnostics", "tiles_degraded"])
        .and_then(Json::as_f64)
        .map_or(0, |v| v.max(0.0) as u64)
}

/// Peak RSS from the optional v2 `memory` section (`None` for reports
/// written before the profiling layer, or on platforms without
/// `/proc/self/status`).
fn peak_rss_bytes(report: &Json) -> Option<f64> {
    report
        .path(&["memory", "peak_rss_bytes"])
        .and_then(Json::as_f64)
        .filter(|v| *v > 0.0)
}

/// The candidate's `microbench.iteration_speedup` (`None` for reports from
/// binaries that do not run the iteration A/B).
fn iteration_speedup(report: &Json) -> Option<f64> {
    report
        .path(&["microbench", "iteration_speedup"])
        .and_then(Json::as_f64)
}

/// One `microbench` section field as f64, if present and positive.
fn microbench_us(report: &Json, field: &str) -> Option<f64> {
    report
        .path(&["microbench", field])
        .and_then(Json::as_f64)
        .filter(|v| *v > 0.0)
}

/// The reuse accounting of the optional `incremental` (ECO drill) section.
struct IncrementalNumbers {
    tiles_resolved: f64,
    hit_ratio: f64,
    speedup: f64,
}

/// Reads the optional `incremental` section (`None` for reports written
/// by binaries that do not run the ECO drill).
fn incremental_numbers(report: &Json) -> Option<IncrementalNumbers> {
    let section = report.get("incremental")?;
    Some(IncrementalNumbers {
        tiles_resolved: section.get("tiles_resolved")?.as_f64()?,
        hit_ratio: section.get("hit_ratio")?.as_f64()?,
        speedup: section.get("speedup")?.as_f64()?,
    })
}

/// Compares a candidate report against a baseline.
///
/// Latency gates on per-flow wall seconds (ratio, with a 5 ms floor on the
/// baseline so micro-runs don't trip on noise). Quality gates on the v2
/// `diagnostics.quality` summaries matched by (case, method):
/// `candidate > baseline * max_quality_ratio + quality_slack` is a
/// regression, as is a (case, method) or flow present in the baseline but
/// missing from the candidate. A baseline without diagnostics skips
/// quality gating. Peak RSS gates on the optional `memory.peak_rss_bytes`
/// field when both reports carry it, and the ECO drill's `incremental`
/// section (dirty-set size, store hit ratio, warm/cold speedup) gates the
/// same way.
///
/// # Errors
///
/// Returns a message when either document is not an `ilt-report`.
pub fn compare_reports(
    baseline: &Json,
    candidate: &Json,
    thresholds: &DiffThresholds,
) -> Result<Vec<Regression>, String> {
    schema_of(baseline)?;
    schema_of(candidate)?;
    let mut regressions = Vec::new();

    if thresholds.check_latency {
        let cand_flows = flow_seconds(candidate);
        for (name, base_s) in flow_seconds(baseline) {
            match cand_flows.iter().find(|(n, _)| *n == name) {
                None => regressions.push(Regression {
                    what: format!("missing flow={name}"),
                    baseline: base_s,
                    candidate: 0.0,
                }),
                Some((_, cand_s)) => {
                    let floor = base_s.max(0.005);
                    if *cand_s > floor * thresholds.max_latency_ratio {
                        regressions.push(Regression {
                            what: format!("latency flow={name}"),
                            baseline: base_s,
                            candidate: *cand_s,
                        });
                    }
                }
            }
        }
    }

    // Graceful degradation is a quality surface too: a candidate that
    // degrades more tiles than the baseline regressed, however good its
    // metrics look (degraded tiles keep their coarse-grid mask, so the
    // quality summaries alone can hide a broken fine stage).
    let base_degraded = tiles_degraded(baseline);
    let cand_degraded = tiles_degraded(candidate);
    if cand_degraded > base_degraded {
        regressions.push(Regression {
            what: "tiles_degraded".to_string(),
            baseline: base_degraded as f64,
            candidate: cand_degraded as f64,
        });
    }

    // Memory is gated like latency: a ratio over the baseline peak RSS.
    // Skipped unless both sides carry the section (old baselines, non-Linux
    // candidates) so the rule never fires on schema evolution alone.
    if let (Some(base_rss), Some(cand_rss)) = (peak_rss_bytes(baseline), peak_rss_bytes(candidate))
    {
        if cand_rss > base_rss * thresholds.max_rss_ratio {
            regressions.push(Regression {
                what: "peak_rss_bytes".to_string(),
                baseline: base_rss,
                candidate: cand_rss,
            });
        }
    }

    // The ECO drill gates on its reuse accounting: re-solving more tiles
    // than the baseline means the dirty frontier grew (edit locality
    // eroded), a hit-ratio drop means store reuse broke, and the warm/cold
    // speedup shrinking past the latency ratio means the warm path lost
    // its edge. Skipped unless both reports carry the section, like the
    // other optional sections.
    if let (Some(base), Some(cand)) = (
        incremental_numbers(baseline),
        incremental_numbers(candidate),
    ) {
        if cand.tiles_resolved > base.tiles_resolved {
            regressions.push(Regression {
                what: "incremental tiles_resolved".to_string(),
                baseline: base.tiles_resolved,
                candidate: cand.tiles_resolved,
            });
        }
        if cand.hit_ratio < base.hit_ratio - 1e-9 {
            regressions.push(Regression {
                what: "incremental hit_ratio".to_string(),
                baseline: base.hit_ratio,
                candidate: cand.hit_ratio,
            });
        }
        if thresholds.check_latency && cand.speedup < base.speedup / thresholds.max_latency_ratio {
            regressions.push(Regression {
                what: "incremental speedup".to_string(),
                baseline: base.speedup,
                candidate: cand.speedup,
            });
        }
    }

    // The iteration-speedup gate is absolute (enabled by a CLI flag in CI,
    // not by the baseline). Preferred definition: the candidate's fast-path
    // per-iteration cost against the baseline's recorded *pre-fast-path*
    // reference (`microbench.reference_iteration_us`, seeded from the
    // trajectory history when the baseline is refreshed) — the in-run
    // alloc arm shares every kernel-level improvement with the fast arm,
    // so only a cross-version reference can express "N x faster than the
    // iteration used to be". Baselines without the reference fall back to
    // the candidate's in-run alloc/fast ratio. Either way, a candidate
    // that stopped emitting the section fails rather than passing
    // silently.
    if thresholds.min_iteration_speedup > 0.0 {
        let cand_speedup = match (
            microbench_us(baseline, "reference_iteration_us"),
            microbench_us(candidate, "iteration_fast_us"),
        ) {
            (Some(reference), Some(fast)) => reference / fast,
            _ => iteration_speedup(candidate).unwrap_or(0.0),
        };
        if cand_speedup < thresholds.min_iteration_speedup {
            regressions.push(Regression {
                what: "microbench iteration_speedup".to_string(),
                baseline: thresholds.min_iteration_speedup,
                candidate: cand_speedup,
            });
        }
    }

    let cand_quality = quality_summaries(candidate);
    for ((case, method), base_metrics) in quality_summaries(baseline) {
        let Some((_, cand_metrics)) = cand_quality
            .iter()
            .find(|((c, m), _)| *c == case && *m == method)
        else {
            regressions.push(Regression {
                what: format!("missing quality case={case} method={method}"),
                baseline: 1.0,
                candidate: 0.0,
            });
            continue;
        };
        for (metric, base_v) in base_metrics {
            let Some((_, cand_v)) = cand_metrics.iter().find(|(m, _)| *m == metric) else {
                continue;
            };
            let bound = base_v * thresholds.max_quality_ratio + thresholds.quality_slack;
            if *cand_v > bound {
                regressions.push(Regression {
                    what: format!("quality case={case} method={method} metric={metric}"),
                    baseline: base_v,
                    candidate: *cand_v,
                });
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(flow_seconds: f64, epe_p95: f64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"ilt-report/v2",
                 "flows":[{{"name":"ours:pgd","seconds":{flow_seconds}}}],
                 "diagnostics":{{"quality":[
                   {{"case":"c1","method":"Ours",
                     "summary":{{"epe_p95":{epe_p95},"epe_max":3,"epe_violations":0,"stitch":1.5,"mrc":0}},
                     "tiles":[]}}],
                   "convergence":[],"anomalies":[]}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let r = report(1.0, 2.0);
        assert!(compare_reports(&r, &r, &DiffThresholds::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn worse_quality_is_a_regression() {
        let base = report(1.0, 2.0);
        let cand = report(1.0, 4.0);
        let found = compare_reports(&base, &cand, &DiffThresholds::default()).unwrap();
        assert_eq!(found.len(), 1);
        assert!(found[0].what.contains("epe_p95"), "{}", found[0].what);
    }

    #[test]
    fn worse_latency_is_a_regression_unless_disabled() {
        let base = report(1.0, 2.0);
        let cand = report(10.0, 2.0);
        let found = compare_reports(&base, &cand, &DiffThresholds::default()).unwrap();
        assert_eq!(found.len(), 1);
        assert!(found[0].what.contains("latency"));
        let relaxed = DiffThresholds {
            check_latency: false,
            ..DiffThresholds::default()
        };
        assert!(compare_reports(&base, &cand, &relaxed).unwrap().is_empty());
    }

    #[test]
    fn slack_tolerates_small_absolute_jumps() {
        let base = report(1.0, 0.0);
        let cand = report(1.0, 0.4);
        assert!(compare_reports(&base, &cand, &DiffThresholds::default())
            .unwrap()
            .is_empty());
        let cand = report(1.0, 0.6);
        assert_eq!(
            compare_reports(&base, &cand, &DiffThresholds::default())
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn missing_flow_or_case_is_a_regression() {
        let base = report(1.0, 2.0);
        let cand = Json::parse(r#"{"schema":"ilt-report/v2","flows":[]}"#).unwrap();
        let found = compare_reports(&base, &cand, &DiffThresholds::default()).unwrap();
        assert_eq!(found.len(), 2);
        assert!(found.iter().any(|r| r.what.contains("missing flow")));
        assert!(found.iter().any(|r| r.what.contains("missing quality")));
    }

    #[test]
    fn v1_baseline_skips_quality_gating() {
        let base =
            Json::parse(r#"{"schema":"ilt-report/v1","flows":[{"name":"f","seconds":1.0}]}"#)
                .unwrap();
        let cand = report(1.0, 99.0);
        let found = compare_reports(&base, &cand, &DiffThresholds::default()).unwrap();
        assert!(found.iter().all(|r| !r.what.contains("quality")));
    }

    fn report_with_degraded(count: usize) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"ilt-report/v2","flows":[{{"name":"ours:pgd","seconds":1.0}}],
                 "diagnostics":{{"convergence":[],"quality":[],"anomalies":[],
                   "degraded":[],"tiles_degraded":{count}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn extra_degraded_tiles_are_a_regression() {
        let base = report_with_degraded(1);
        let same = compare_reports(&base, &report_with_degraded(1), &DiffThresholds::default());
        assert!(same.unwrap().is_empty());
        // Fewer degraded tiles than the baseline is an improvement, not a
        // regression.
        let fewer = compare_reports(&base, &report_with_degraded(0), &DiffThresholds::default());
        assert!(fewer.unwrap().is_empty());
        let found =
            compare_reports(&base, &report_with_degraded(3), &DiffThresholds::default()).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].what, "tiles_degraded");
        assert_eq!(found[0].baseline, 1.0);
        assert_eq!(found[0].candidate, 3.0);
    }

    #[test]
    fn reports_without_degraded_counts_gate_as_zero() {
        // Pre-degradation baselines (and v1 reports) have no
        // tiles_degraded field; a clean candidate must still pass.
        let base = report(1.0, 2.0);
        assert!(
            compare_reports(&base, &report_with_degraded(0), &DiffThresholds::default())
                .unwrap()
                .iter()
                .all(|r| r.what != "tiles_degraded")
        );
        let found =
            compare_reports(&base, &report_with_degraded(2), &DiffThresholds::default()).unwrap();
        assert!(found.iter().any(|r| r.what == "tiles_degraded"));
    }

    #[test]
    fn optional_sections_never_gate() {
        // Newer reports carry optional sections (gauges, latency_budget)
        // that older baselines lack — and vice versa after a rollback.
        // Neither direction may produce a regression.
        let plain = report(1.0, 2.0);
        let enriched = Json::parse(
            r#"{"schema":"ilt-report/v2",
                "flows":[{"name":"ours:pgd","seconds":1.0}],
                "gauges":{"serve.queue.depth":3.0},
                "latency_budget":{"queue_wait_s":0.5,"kernel_build_s":1.0,
                  "coarse_tiles_s":0.1,"fine_tiles_s":0.2,"refine_tiles_s":0.0,
                  "other_tiles_s":0.0,"assembly_s":0.05,"unattributed_s":0.0,
                  "flow_total_s":1.0},
                "diagnostics":{"quality":[
                  {"case":"c1","method":"Ours",
                   "summary":{"epe_p95":2.0,"epe_max":3,"epe_violations":0,"stitch":1.5,"mrc":0},
                   "tiles":[]}],
                  "convergence":[],"anomalies":[]}}"#,
        )
        .unwrap();
        assert!(
            compare_reports(&plain, &enriched, &DiffThresholds::default())
                .unwrap()
                .is_empty()
        );
        assert!(
            compare_reports(&enriched, &plain, &DiffThresholds::default())
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn candidate_missing_an_optional_metric_is_skipped() {
        // A candidate whose quality summary lacks a metric the baseline
        // has (e.g. a diagnostics field made optional later) is tolerated;
        // only metrics present on both sides gate.
        let base = report(1.0, 2.0);
        let cand = Json::parse(
            r#"{"schema":"ilt-report/v2",
                "flows":[{"name":"ours:pgd","seconds":1.0}],
                "diagnostics":{"quality":[
                  {"case":"c1","method":"Ours",
                   "summary":{"epe_p95":2.0},
                   "tiles":[]}],
                  "convergence":[],"anomalies":[]}}"#,
        )
        .unwrap();
        assert!(compare_reports(&base, &cand, &DiffThresholds::default())
            .unwrap()
            .is_empty());
    }

    fn report_with_rss(peak_rss_bytes: u64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"ilt-report/v2","flows":[{{"name":"ours:pgd","seconds":1.0}}],
                 "memory":{{"peak_rss_bytes":{peak_rss_bytes},"current_rss_bytes":1000}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn peak_rss_growth_beyond_the_ratio_is_a_regression() {
        let base = report_with_rss(100_000_000);
        // Within the default 10% budget: fine.
        let ok = compare_reports(
            &base,
            &report_with_rss(109_000_000),
            &DiffThresholds::default(),
        );
        assert!(ok.unwrap().is_empty());
        // Shrinking is an improvement, never a regression.
        let smaller = compare_reports(
            &base,
            &report_with_rss(50_000_000),
            &DiffThresholds::default(),
        );
        assert!(smaller.unwrap().is_empty());
        let found = compare_reports(
            &base,
            &report_with_rss(120_000_000),
            &DiffThresholds::default(),
        )
        .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].what, "peak_rss_bytes");
        assert_eq!(found[0].baseline, 100_000_000.0);
        assert_eq!(found[0].candidate, 120_000_000.0);
        // A looser ratio tolerates the same candidate.
        let loose = DiffThresholds {
            max_rss_ratio: 1.5,
            ..DiffThresholds::default()
        };
        assert!(
            compare_reports(&base, &report_with_rss(120_000_000), &loose)
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn missing_memory_section_skips_rss_gating() {
        // Old baseline, new candidate (and vice versa): no regression from
        // the section appearing or disappearing.
        let plain = report(1.0, 2.0);
        let with_rss = report_with_rss(900_000_000_000);
        for (a, b) in [(&plain, &with_rss), (&with_rss, &plain)] {
            assert!(compare_reports(a, b, &DiffThresholds::default())
                .unwrap()
                .iter()
                .all(|r| r.what != "peak_rss_bytes"));
        }
        // A zero peak (platform without /proc/self/status) is treated as
        // absent, not as an infinitely-regressable baseline.
        let zero = report_with_rss(0);
        assert!(
            compare_reports(&zero, &report_with_rss(1), &DiffThresholds::default())
                .unwrap()
                .is_empty()
        );
    }

    fn report_with_incremental(tiles_resolved: u64, hit_ratio: f64, speedup: f64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"ilt-report/v2","flows":[{{"name":"ours:pgd","seconds":1.0}}],
                 "incremental":{{"tiles_reused":5,"tiles_resolved":{tiles_resolved},
                   "hit_ratio":{hit_ratio},"speedup":{speedup}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn growing_the_dirty_set_or_losing_reuse_is_a_regression() {
        let base = report_with_incremental(4, 0.556, 3.5);
        let same = compare_reports(&base, &base, &DiffThresholds::default());
        assert!(same.unwrap().is_empty());
        // Re-solving fewer tiles or reusing more is an improvement.
        let better = report_with_incremental(3, 0.667, 4.0);
        assert!(compare_reports(&base, &better, &DiffThresholds::default())
            .unwrap()
            .is_empty());
        let more_resolved = report_with_incremental(6, 0.556, 3.5);
        let found = compare_reports(&base, &more_resolved, &DiffThresholds::default()).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].what, "incremental tiles_resolved");
        let less_reuse = report_with_incremental(4, 0.333, 3.5);
        let found = compare_reports(&base, &less_reuse, &DiffThresholds::default()).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].what, "incremental hit_ratio");
    }

    #[test]
    fn eco_speedup_collapse_gates_with_latency() {
        let base = report_with_incremental(4, 0.556, 4.0);
        // Within the 2x latency ratio: 4.0 -> 2.5 passes.
        let slower = report_with_incremental(4, 0.556, 2.5);
        assert!(compare_reports(&base, &slower, &DiffThresholds::default())
            .unwrap()
            .is_empty());
        let collapsed = report_with_incremental(4, 0.556, 1.5);
        let found = compare_reports(&base, &collapsed, &DiffThresholds::default()).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].what, "incremental speedup");
        // --ignore-latency also waives the speedup gate (cross-machine runs).
        let relaxed = DiffThresholds {
            check_latency: false,
            ..DiffThresholds::default()
        };
        assert!(compare_reports(&base, &collapsed, &relaxed)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn missing_incremental_section_skips_eco_gating() {
        let plain = report(1.0, 2.0);
        let with_eco = report_with_incremental(4, 0.556, 3.5);
        for (a, b) in [(&plain, &with_eco), (&with_eco, &plain)] {
            assert!(compare_reports(a, b, &DiffThresholds::default())
                .unwrap()
                .iter()
                .all(|r| !r.what.starts_with("incremental")));
        }
    }

    fn report_with_speedup(speedup: f64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"ilt-report/v2","flows":[{{"name":"ours:pgd","seconds":1.0}}],
                 "microbench":{{"iteration_speedup":{speedup}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn iteration_speedup_gate_is_absolute_and_opt_in() {
        let base = Json::parse(
            r#"{"schema":"ilt-report/v2","flows":[{"name":"ours:pgd","seconds":1.0}]}"#,
        )
        .unwrap();
        // Disabled by default: a slow candidate passes.
        assert!(
            compare_reports(&base, &report_with_speedup(1.1), &DiffThresholds::default())
                .unwrap()
                .is_empty()
        );
        let gated = DiffThresholds {
            min_iteration_speedup: 3.0,
            ..DiffThresholds::default()
        };
        assert!(compare_reports(&base, &report_with_speedup(3.2), &gated)
            .unwrap()
            .is_empty());
        let found = compare_reports(&base, &report_with_speedup(2.4), &gated).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].what, "microbench iteration_speedup");
        assert_eq!(found[0].baseline, 3.0);
        assert_eq!(found[0].candidate, 2.4);
        // When enabled, a candidate without the section fails too.
        let found = compare_reports(&base, &base, &gated).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].candidate, 0.0);
    }

    #[test]
    fn iteration_speedup_prefers_the_baseline_reference_cost() {
        // Baseline carries the recorded pre-fast-path reference; the gate
        // then measures the candidate's fast arm against it, ignoring the
        // candidate's in-run ratio (which shares kernel-level wins with
        // the alloc arm and so understates the cumulative speedup).
        let base = Json::parse(
            r#"{"schema":"ilt-report/v2","flows":[{"name":"ours:pgd","seconds":1.0}],
                 "microbench":{"reference_iteration_us":900.0}}"#,
        )
        .unwrap();
        let cand = Json::parse(
            r#"{"schema":"ilt-report/v2","flows":[{"name":"ours:pgd","seconds":1.0}],
                 "microbench":{"iteration_speedup":1.3,"iteration_alloc_us":390.0,
                   "iteration_fast_us":300.0}}"#,
        )
        .unwrap();
        let gated = DiffThresholds {
            min_iteration_speedup: 3.0,
            ..DiffThresholds::default()
        };
        // 900 / 300 = 3.0: passes even though the in-run ratio is 1.3.
        assert!(compare_reports(&base, &cand, &gated).unwrap().is_empty());
        let slow = Json::parse(
            r#"{"schema":"ilt-report/v2","flows":[{"name":"ours:pgd","seconds":1.0}],
                 "microbench":{"iteration_speedup":9.9,"iteration_fast_us":450.0}}"#,
        )
        .unwrap();
        // 900 / 450 = 2.0: fails despite a flattering in-run ratio.
        let found = compare_reports(&base, &slow, &gated).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].what, "microbench iteration_speedup");
        assert_eq!(found[0].candidate, 2.0);
    }

    #[test]
    fn non_reports_are_rejected() {
        let junk = Json::parse(r#"{"schema":"something-else"}"#).unwrap();
        let r = report(1.0, 2.0);
        assert!(compare_reports(&junk, &r, &DiffThresholds::default()).is_err());
        assert!(compare_reports(&r, &junk, &DiffThresholds::default()).is_err());
    }
}

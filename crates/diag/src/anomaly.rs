//! Convergence anomaly detection over per-iteration solver loss traces.
//!
//! Three failure shapes matter in practice for tiled ILT:
//!
//! * **stall** — the loss stops improving long before the iteration budget
//!   runs out (wasted compute, or a tile stuck in a bad basin);
//! * **divergence** — the loss increases over a sustained streak (a step
//!   size or preconditioner problem);
//! * **oscillation** — the loss alternates up/down nearly every iteration
//!   (a step size at the stability boundary).
//!
//! [`detect`] reports at most one anomaly of each kind (the first
//! occurrence) so a 200-iteration stall does not produce 200 events.

use ilt_telemetry as tele;

/// The kind of convergence anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Relative improvement below threshold across a window.
    Stall,
    /// Monotone loss increase across a streak.
    Divergence,
    /// Near-perfect up/down alternation across a window.
    Oscillation,
}

impl AnomalyKind {
    /// The stable string code used in span fields and report JSON.
    pub fn code(self) -> &'static str {
        match self {
            AnomalyKind::Stall => "stall",
            AnomalyKind::Divergence => "divergence",
            AnomalyKind::Oscillation => "oscillation",
        }
    }
}

/// One detected anomaly, anchored to the iteration where it first met the
/// detection criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anomaly {
    /// What went wrong.
    pub kind: AnomalyKind,
    /// 0-based index into the loss trace where detection fired.
    pub iteration: usize,
    /// Kind-specific magnitude: relative improvement for stalls, relative
    /// increase for divergences, flip count for oscillations.
    pub value: f64,
}

/// Detection thresholds. The defaults are deliberately conservative — they
/// flag traces a human would also call anomalous, not marginal ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// Window length (iterations) for stall detection.
    pub stall_window: usize,
    /// A window whose relative improvement is below this is a stall.
    pub stall_rel_eps: f64,
    /// Consecutive loss increases needed to call a divergence.
    pub divergence_streak: usize,
    /// Window length (iterations) for oscillation detection.
    pub oscillation_window: usize,
    /// Sign flips of the loss delta within the window needed to call an
    /// oscillation (the window has `oscillation_window - 2` possible flips).
    pub oscillation_flips: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            stall_window: 5,
            stall_rel_eps: 1e-3,
            divergence_streak: 3,
            oscillation_window: 8,
            oscillation_flips: 6,
        }
    }
}

/// Scans a per-iteration loss trace and returns at most one anomaly per
/// kind — the first iteration where each criterion was met — ordered by
/// iteration.
pub fn detect(losses: &[f64], config: &AnomalyConfig) -> Vec<Anomaly> {
    let mut out = Vec::new();
    if let Some(a) = detect_divergence(losses, config) {
        out.push(a);
    }
    if let Some(a) = detect_stall(losses, config) {
        out.push(a);
    }
    if let Some(a) = detect_oscillation(losses, config) {
        out.push(a);
    }
    out.sort_by_key(|a| a.iteration);
    out
}

fn detect_divergence(losses: &[f64], config: &AnomalyConfig) -> Option<Anomaly> {
    let mut streak = 0usize;
    for i in 1..losses.len() {
        if losses[i] > losses[i - 1] {
            streak += 1;
            if streak >= config.divergence_streak {
                let base = losses[i - streak];
                let rel = if base.abs() > f64::EPSILON {
                    (losses[i] - base) / base.abs()
                } else {
                    losses[i] - base
                };
                return Some(Anomaly {
                    kind: AnomalyKind::Divergence,
                    iteration: i,
                    value: rel,
                });
            }
        } else {
            streak = 0;
        }
    }
    None
}

fn detect_stall(losses: &[f64], config: &AnomalyConfig) -> Option<Anomaly> {
    let w = config.stall_window;
    for i in w..losses.len() {
        let prev = losses[i - w];
        let rel = if prev.abs() > f64::EPSILON {
            (prev - losses[i]) / prev.abs()
        } else {
            prev - losses[i]
        };
        // Tiny movement in either direction is a stall; a large increase is
        // a divergence and is reported as such, not here.
        if rel.abs() < config.stall_rel_eps {
            return Some(Anomaly {
                kind: AnomalyKind::Stall,
                iteration: i,
                value: rel,
            });
        }
    }
    None
}

fn detect_oscillation(losses: &[f64], config: &AnomalyConfig) -> Option<Anomaly> {
    let w = config.oscillation_window;
    if losses.len() < w || w < 3 {
        return None;
    }
    for end in w..=losses.len() {
        let window = &losses[end - w..end];
        let mut flips = 0usize;
        for k in 2..window.len() {
            let d1 = window[k - 1] - window[k - 2];
            let d2 = window[k] - window[k - 1];
            if d1 * d2 < 0.0 {
                flips += 1;
            }
        }
        if flips >= config.oscillation_flips {
            return Some(Anomaly {
                kind: AnomalyKind::Oscillation,
                iteration: end - 1,
                value: flips as f64,
            });
        }
    }
    None
}

/// Telemetry hook for flow code: detects anomalies in one tile solve's loss
/// trace, records the solve into the diagnostics sink, and emits one
/// zero-length [`tele::names::ANOMALY`] span per anomaly (fields `kind`,
/// `flow`, `stage`, `tile`, `iteration`, `value`) plus a `diag.anomalies`
/// counter bump.
///
/// When tracing is disabled this is a no-op behind a single relaxed atomic
/// load and allocates nothing.
pub fn observe_solve(flow: &str, stage: &str, tile: usize, losses: &[f64]) {
    if !tele::enabled() {
        return;
    }
    let anomalies = detect(losses, &AnomalyConfig::default());
    for a in &anomalies {
        let mut span = tele::span(tele::names::ANOMALY);
        span.add_field("kind", a.kind.code());
        span.add_field("flow", flow.to_string());
        span.add_field("stage", stage.to_string());
        span.add_field("tile", tile);
        span.add_field("iteration", a.iteration);
        span.add_field("value", a.value);
        tele::counter_add("diag.anomalies", 1);
    }
    crate::sink::record_solve(crate::sink::StageCell {
        flow: flow.to_string(),
        stage: stage.to_string(),
        tile,
        iterations: losses.len(),
        final_loss: losses.last().copied(),
        anomalies,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(anomalies: &[Anomaly]) -> Vec<AnomalyKind> {
        anomalies.iter().map(|a| a.kind).collect()
    }

    #[test]
    fn clean_decay_has_no_anomalies() {
        let losses: Vec<f64> = (0..40).map(|i| 100.0 * 0.9f64.powi(i)).collect();
        assert!(detect(&losses, &AnomalyConfig::default()).is_empty());
    }

    #[test]
    fn flat_tail_is_a_stall() {
        let mut losses: Vec<f64> = (0..10).map(|i| 100.0 * 0.8f64.powi(i)).collect();
        losses.extend(std::iter::repeat_n(losses[9], 10));
        let found = detect(&losses, &AnomalyConfig::default());
        assert_eq!(kinds(&found), vec![AnomalyKind::Stall]);
        // Fires as soon as the window is flat, not at the trace end.
        assert!(found[0].iteration < losses.len() - 1);
    }

    #[test]
    fn rising_streak_is_a_divergence() {
        let losses = vec![10.0, 9.0, 8.0, 9.0, 10.5, 12.0, 14.0];
        let found = detect(&losses, &AnomalyConfig::default());
        assert!(kinds(&found).contains(&AnomalyKind::Divergence));
        let d = found
            .iter()
            .find(|a| a.kind == AnomalyKind::Divergence)
            .unwrap();
        assert_eq!(d.iteration, 5); // third consecutive increase
        assert!(d.value > 0.0);
    }

    #[test]
    fn alternating_trace_is_an_oscillation() {
        let losses: Vec<f64> = (0..16)
            .map(|i| 50.0 + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let found = detect(&losses, &AnomalyConfig::default());
        assert!(kinds(&found).contains(&AnomalyKind::Oscillation));
    }

    #[test]
    fn at_most_one_anomaly_per_kind() {
        // A long flat trace stalls at many windows; only the first reports.
        let losses = vec![5.0; 50];
        let found = detect(&losses, &AnomalyConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AnomalyKind::Stall);
        assert_eq!(found[0].iteration, AnomalyConfig::default().stall_window);
    }

    #[test]
    fn short_traces_are_never_anomalous() {
        for len in 0..3 {
            let losses = vec![1.0; len];
            assert!(detect(&losses, &AnomalyConfig::default()).is_empty());
        }
    }

    #[test]
    fn observe_solve_is_inert_when_disabled() {
        let _guard = crate::testlock::lock();
        tele::set_enabled(false);
        let _ = crate::sink::drain();
        observe_solve("f", "s", 0, &[5.0; 50]);
        assert!(crate::sink::drain().solves.is_empty());
    }

    #[test]
    fn observe_solve_records_spans_and_cells() {
        let _guard = crate::testlock::lock();
        tele::set_enabled(true);
        let _ = tele::drain();
        let _ = crate::sink::drain();
        observe_solve("test-flow", "stage 0", 3, &[5.0; 50]);
        tele::flush_thread();
        let t = tele::drain();
        tele::set_enabled(false);
        let spans: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.name == tele::names::ANOMALY)
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].field("kind").and_then(|v| v.as_str()),
            Some("stall")
        );
        assert_eq!(spans[0].field("tile").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(t.counters.get("diag.anomalies"), Some(&1));
        let diag = crate::sink::drain();
        assert_eq!(diag.solves.len(), 1);
        assert_eq!(diag.solves[0].flow, "test-flow");
        assert_eq!(diag.solves[0].iterations, 50);
    }
}

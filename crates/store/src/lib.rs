//! # ilt-store — persistent mask store for incremental re-ILT
//!
//! Solved tile masks are expensive; layout edits are local. This crate keeps
//! finished per-tile masks addressable by what they *are* — the tile's target
//! content, the litho-config fingerprint, and the solver method — so that an
//! edited layout can reuse every untouched tile verbatim and warm-start the
//! dirty ones (ROADMAP item 4, the ECO workflow).
//!
//! Three layers:
//!
//! - [`key`]: stable FNV-1a [`Fingerprint`] hashing and the
//!   [`StoreKey`] = (tile geometry hash, config fingerprint, method) triple.
//!   Content-addressing is the load-bearing trick: after an edit, clean tiles
//!   hash to their old keys and hit; dirty tiles miss and are re-solved.
//! - [`store`]: [`MaskStore`], an in-memory LRU bounded by
//!   `ILT_STORE_BUDGET_MB` (default 64), versioned on overwrite, with a
//!   process-wide [`shared_store`] that mirrors occupancy into the telemetry
//!   gauges `store.bytes` / `store.entries`.
//! - [`disk`]: optional spill under `ILT_STORE_DIR` — a hand-rolled binary
//!   format with a checksum; evictions spill, misses fall back to disk, and
//!   anything corrupt is refused.
//!
//! Everything is std-only, in keeping with the workspace's no-dependency
//! policy.

pub mod disk;
pub mod key;
pub mod store;

pub use disk::DiskError;
pub use key::{tile_content_hash, Fingerprint, StoreKey};
pub use store::{shared_store, EntryView, MaskStore, StoreStats};
